"""Table 2 — skew resilience: runtime of SHJ / Dynamic / StaticMid under Z0–Z4."""

from conftest import run_report

from repro.bench.experiments import table2_skew_resilience


def test_table2_skew_resilience(benchmark):
    report = run_report(
        benchmark,
        table2_skew_resilience,
        scale=0.4,
        machines=16,
        seed=1,
        skews=["Z0", "Z2", "Z4"],
        queries=["EQ5", "EQ7"],
    )

    def runtime(row, column):
        return float(str(row[column]).rstrip("*"))

    uniform, _, skewed = report.rows
    # Paper's shape: without skew SHJ is competitive; under heavy skew SHJ
    # degrades severely while Dynamic stays flat.
    assert runtime(skewed, "EQ5/SHJ") > 1.5 * runtime(skewed, "EQ5/Dynamic")
    assert runtime(skewed, "EQ5/Dynamic") < 2.0 * runtime(uniform, "EQ5/Dynamic")
    # StaticMid is consistently worse than Dynamic for these asymmetric joins.
    assert runtime(skewed, "EQ5/StaticMid") > runtime(skewed, "EQ5/Dynamic")
