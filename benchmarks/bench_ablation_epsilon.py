"""Ablation — the ε optimality/communication trade-off of Theorem 4.2."""

from conftest import run_report

from repro.bench.experiments import ablation_epsilon


def test_ablation_epsilon(benchmark):
    report = run_report(
        benchmark, ablation_epsilon, scale=0.4, machines=16, seed=1, epsilons=(0.25, 0.5, 1.0)
    )
    by_epsilon = {row["epsilon"]: row for row in report.rows}
    # Smaller ε adapts at least as often (more or equal migrations).
    assert by_epsilon[0.25]["migrations"] >= by_epsilon[1.0]["migrations"]
    # The theoretical ratio bound tightens as ε shrinks.
    assert by_epsilon[0.25]["ratio_bound"] < by_epsilon[1.0]["ratio_bound"]
