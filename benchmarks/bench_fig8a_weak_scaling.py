"""Fig. 8a — weak scalability: execution time as data and machines double (in-memory)."""

from conftest import run_report

from repro.bench.experiments import fig8ab_weak_scaling


def test_fig8a_weak_scaling_time(benchmark):
    report = run_report(
        benchmark,
        fig8ab_weak_scaling,
        base_scale=0.2,
        base_machines=8,
        steps=3,
        seed=1,
        queries=("EQ5", "EQ7", "BNCI"),
    )
    for query in ("EQ5", "EQ7"):
        times = [row["execution_time"] for row in report.rows if row["query"] == query]
        # Near-ideal weak scaling: execution time grows far slower than the 2x
        # per step that a non-scalable operator would show (ILF replication of
        # the smaller relation prevents perfection, as §5.3 explains).
        assert times[-1] <= 2.0 * times[0]
