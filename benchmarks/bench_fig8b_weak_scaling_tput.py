"""Fig. 8b — weak scalability: throughput as data and machines double."""

from conftest import run_report

from repro.bench.experiments import fig8ab_weak_scaling


def test_fig8b_weak_scaling_throughput(benchmark):
    report = run_report(
        benchmark,
        fig8ab_weak_scaling,
        base_scale=0.2,
        base_machines=8,
        steps=3,
        seed=1,
        queries=("EQ5", "EQ7"),
    )
    for query in ("EQ5", "EQ7"):
        throughputs = [row["throughput"] for row in report.rows if row["query"] == query]
        # Aggregate throughput grows with the cluster (ideally 2x per step;
        # ILF growth makes it slightly less).
        assert throughputs[-1] > 1.5 * throughputs[0]
