"""Fault tolerance — checkpoint cadence vs recovery cost under a joiner crash,
plus the unreliable wire's loss-rate vs retransmit-overhead trade-off."""

from conftest import run_report

from repro.bench.experiments import lossy_wire_sweep, recovery_sweep


def test_recovery_sweep(benchmark):
    report = run_report(
        benchmark,
        recovery_sweep,
        scale=0.4,
        machines=16,
        seed=1,
        intervals=(None, 25, 100, 400),
    )
    rows = {row["checkpoint_interval"]: row for row in report.rows}
    baseline = rows["fault-free"]
    # Every crashed row recovered: one fault, positive recovery time, and the
    # fault-free output count (the driver itself asserts count equality).
    for key, row in rows.items():
        if key == "fault-free":
            continue
        assert row["faults"] == 1
        assert row["recovery_time"] > 0.0
        assert row["output_count"] == baseline["output_count"]
        assert row["checkpoint_kb"] > 0.0
    # Snapshotting bounds the journal: the most frequent cadence must not
    # replay more than the journal-only configuration.
    assert rows[25]["tuples_replayed"] <= rows["journal-only"]["tuples_replayed"]


def test_lossy_wire_sweep(benchmark):
    report = run_report(
        benchmark,
        lossy_wire_sweep,
        scale=0.3,
        machines=8,
        seed=1,
        drop_rates=(0.0, 0.01, 0.05),
    )
    rows = {row["drop_rate"]: row for row in report.rows}
    clean = rows["clean"]
    assert clean["dropped"] == 0 and clean["retransmitted"] == 0
    for key in ("1%", "5%"):
        # Every lossy row is fully masked: drops happened, each was covered
        # by at least one retransmission, and the output count is unchanged.
        assert rows[key]["dropped"] > 0
        assert rows[key]["retransmitted"] >= rows[key]["dropped"]
        assert rows[key]["output_count"] == clean["output_count"]
    assert rows["5%"]["dropped"] > rows["1%"]["dropped"]
