"""Fault tolerance — checkpoint cadence vs recovery cost under a joiner crash."""

from conftest import run_report

from repro.bench.experiments import recovery_sweep


def test_recovery_sweep(benchmark):
    report = run_report(
        benchmark,
        recovery_sweep,
        scale=0.4,
        machines=16,
        seed=1,
        intervals=(None, 25, 100, 400),
    )
    rows = {row["checkpoint_interval"]: row for row in report.rows}
    baseline = rows["fault-free"]
    # Every crashed row recovered: one fault, positive recovery time, and the
    # fault-free output count (the driver itself asserts count equality).
    for key, row in rows.items():
        if key == "fault-free":
            continue
        assert row["faults"] == 1
        assert row["recovery_time"] > 0.0
        assert row["output_count"] == baseline["output_count"]
        assert row["checkpoint_kb"] > 0.0
    # Snapshotting bounds the journal: the most frequent cadence must not
    # replay more than the journal-only configuration.
    assert rows[25]["tuples_replayed"] <= rows["journal-only"]["tuples_replayed"]
