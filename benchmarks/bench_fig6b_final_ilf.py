"""Fig. 6b — final ILF per machine and total cluster storage for all queries."""

from conftest import run_report

from repro.bench.experiments import fig6b_final_ilf


def test_fig6b_final_ilf(benchmark):
    report = run_report(benchmark, fig6b_final_ilf, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row for row in report.rows}
    for query in ("EQ5", "EQ7", "BNCI", "BCI"):
        static_mid = by_key[(query, "StaticMid")]
        dynamic = by_key[(query, "Dynamic")]
        static_opt = by_key[(query, "StaticOpt")]
        # StaticMid's ILF is a multiple of Dynamic's (paper: 3-7x); Dynamic is
        # close to the omniscient StaticOpt.
        assert static_mid["max_ilf"] > dynamic["max_ilf"]
        assert dynamic["max_ilf"] <= 2.5 * static_opt["max_ilf"]
        assert static_mid["total_cluster_storage"] > dynamic["total_cluster_storage"]
