"""Ablation — non-blocking epoch protocol (Alg. 3) vs stall-the-world actuation."""

from conftest import run_report

from repro.bench.experiments import ablation_blocking


def test_ablation_blocking(benchmark):
    report = run_report(benchmark, ablation_blocking, scale=0.4, machines=16, seed=1)
    by_mode = {row["actuation"]: row for row in report.rows}
    # The non-blocking protocol never loses to the blocking one on completion
    # time (modest tolerance for simulation noise).
    assert (
        by_mode["non-blocking"]["execution_time"]
        <= 1.1 * by_mode["blocking"]["execution_time"]
    )
