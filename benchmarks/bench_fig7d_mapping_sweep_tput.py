"""Fig. 7d — throughput as the optimal mapping approaches (√J, √J)."""

from conftest import run_report

from repro.bench.experiments import fig7cd_mapping_sweep


def test_fig7d_mapping_sweep_throughput(benchmark):
    report = run_report(benchmark, fig7cd_mapping_sweep, scale=0.4, machines=16, seed=2)
    by_key = {(row["optimal_mapping"], row["operator"]): row for row in report.rows}
    # Throughput gap between Dynamic and StaticMid shrinks as the optimal
    # mapping approaches the square scheme.
    far_gap = (
        by_key[("(1,16)", "Dynamic")]["throughput"]
        / by_key[("(1,16)", "StaticMid")]["throughput"]
    )
    near_gap = (
        by_key[("(4,4)", "Dynamic")]["throughput"]
        / by_key[("(4,4)", "StaticMid")]["throughput"]
    )
    assert far_gap > near_gap
    # At the square point Dynamic performs like StaticMid (slight adaptivity cost allowed).
    assert near_gap > 0.7
