"""Ablation — locality-aware (dyadic) vs naive (row-major) state relocation."""

from conftest import run_report

from repro.bench.experiments import ablation_migration_strategy


def test_ablation_migration_strategy(benchmark):
    report = run_report(benchmark, ablation_migration_strategy, scale=0.4, machines=16, seed=1)
    by_layout = {row["layout"]: row for row in report.rows}
    if by_layout["dyadic"]["migrations"] and by_layout["row_major"]["migrations"]:
        assert (
            by_layout["dyadic"]["migration_volume"]
            <= by_layout["row_major"]["migration_volume"]
        )
