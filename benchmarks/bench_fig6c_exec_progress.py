"""Fig. 6c — EQ5 execution-time progress per operator."""

from conftest import run_report

from repro.bench.experiments import fig6c_execution_progress


def test_fig6c_execution_progress(benchmark):
    report = run_report(
        benchmark, fig6c_execution_progress, scale=0.4, machines=16, seed=1, skew="Z4"
    )
    total = {row["operator"]: row["total_execution_time"] for row in report.rows}
    assert total["StaticOpt"] <= total["Dynamic"] <= total["StaticMid"]
    # Execution time grows roughly linearly with the fraction processed.
    series = report.series["Dynamic"]
    half_index = len(series) // 2
    if half_index:
        assert series[half_index][1] <= series[-1][1]
