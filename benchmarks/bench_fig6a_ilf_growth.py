"""Fig. 6a — EQ5 input-load factor growth per operator."""

from conftest import run_report

from repro.bench.experiments import fig6a_ilf_growth


def test_fig6a_ilf_growth(benchmark):
    report = run_report(benchmark, fig6a_ilf_growth, scale=0.4, machines=16, seed=1, skew="Z4")
    ilf = {row["operator"]: row["final_max_ilf"] for row in report.rows}
    # Paper's shape: SHJ and StaticMid grow much faster than Dynamic, which
    # tracks StaticOpt.
    assert ilf["StaticMid"] > 1.5 * ilf["Dynamic"]
    assert ilf["SHJ"] > ilf["Dynamic"]
    assert ilf["Dynamic"] < 2.5 * ilf["StaticOpt"]
