"""Fig. 7a — average operator throughput for every query and operator."""

import random
import time

import pytest
from conftest import run_report

from repro.api import JoinSession, RunConfig
from repro.bench.experiments import fig7a_throughput
from repro.bench.harness import ExperimentConfig, build_query, run_single
from repro.data.queries import JoinQuery
from repro.engine.columns import HAS_NUMPY
from repro.engine.stream import interleave_streams, make_tuples
from repro.joins.predicates import EquiPredicate
from repro.testing import assert_run_equivalent


def test_fig7a_throughput(benchmark):
    report = run_report(benchmark, fig7a_throughput, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["throughput"] for row in report.rows}
    for query in ("EQ5", "EQ7"):
        # Dynamic and StaticOpt are close; both clearly beat StaticMid and SHJ
        # (which suffers under the Z4 skew used for the equi-joins).
        assert by_key[(query, "Dynamic")] > by_key[(query, "StaticMid")]
        assert by_key[(query, "Dynamic")] > by_key[(query, "SHJ")]
        assert by_key[(query, "Dynamic")] >= 0.4 * by_key[(query, "StaticOpt")]
    assert by_key[("BNCI", "Dynamic")] > by_key[("BNCI", "StaticMid")]


def test_fig7a_batched_dataplane_efficiency():
    """The operator-default batched data plane runs the fig7a workload with
    >=5x fewer simulator events than the per-tuple plane, at identical output
    counts per operator."""
    totals = {}
    outputs = {}
    for batch_size in (1, None):  # None = operator default (batched)
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=batch_size
        )
        query = build_query("EQ5", config)
        events = 0
        outs = {}
        for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
            result = run_single(kind, query, config)
            events += result.events_processed
            outs[kind] = result.output_count
        totals[batch_size] = events
        outputs[batch_size] = outs
    assert outputs[1] == outputs[None]
    assert totals[1] >= 5 * totals[None], (
        f"expected >=5x fewer events, got {totals[1]} vs {totals[None]}"
    )


def _fig7a_wall_clock(batch_size, probe_engine, repetitions=3, batching="fixed"):
    """Best-of-N wall-clock of the four fig7a operators on EQ5/Z4."""
    best = None
    for _ in range(repetitions):
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=batch_size,
            batching=batching, operator_kwargs={"probe_engine": probe_engine},
        )
        query = build_query("EQ5", config)
        start = time.perf_counter()
        outs = {}
        for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
            outs[kind] = run_single(kind, query, config).output_count
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, outs


def test_fig7a_vectorized_probe_wall_clock():
    """The batched (batch_size=64) fig7a workload with the vectorized probe
    engine runs >=1.5x faster wall-clock than the PR 1 baseline plane.

    The per-tuple plane with per-member scalar probes is the in-tree stand-in
    for the PR 1 reference; the batched scalar run isolates the probe-engine
    contribution on top of transport batching.  (On the development machine
    the batched+vectorized run also measured ~1.7x the recorded PR 1 *batched*
    wall-clock; the CI breadcrumb tracks the absolute numbers across PRs.)

    Note this end-to-end gate would pass on transport batching alone; the
    probe-engine-specific >=1.5x gate is bench_probe_engine.py's equi
    micro-bench, which CI runs in the same step — simulator bookkeeping
    dominates the end-to-end wall, so the engine ratio is only robustly
    assertable where probe work dominates.
    """
    per_tuple_wall, per_tuple_outs = _fig7a_wall_clock(1, "scalar")
    batched_scalar_wall, batched_scalar_outs = _fig7a_wall_clock(64, "scalar")
    batched_vector_wall, batched_vector_outs = _fig7a_wall_clock(64, "vectorized")
    # Identical results on every plane/engine combination.
    assert per_tuple_outs == batched_scalar_outs == batched_vector_outs
    assert per_tuple_wall >= 1.5 * batched_vector_wall, (
        f"expected >=1.5x wall-clock win, got per-tuple {per_tuple_wall:.3f}s "
        f"vs batched+vectorized {batched_vector_wall:.3f}s"
    )
    # The vectorized engine must not substantially regress the batched plane
    # (generous margin: this runs as a CI gate on noisy shared runners; the
    # breadcrumb tracks the actual ratio).
    assert batched_vector_wall <= 1.3 * batched_scalar_wall, (
        f"vectorized probes slower than per-member probes: "
        f"{batched_vector_wall:.3f}s vs {batched_scalar_wall:.3f}s"
    )


def test_fig7a_adaptive_dataplane_wall_clock():
    """The adaptive plane runs the fig7a workload >=1.5x faster wall-clock
    than the pinned per-tuple reference — at *reference semantics*: unlike
    the fixed batched plane, the results are not merely equal output counts
    but bit-identical simulations (virtual times, migrations, latencies;
    pinned cell by cell in tests/test_adaptive_conformance.py).

    With wire-level delivery merging (this plane's default) the adaptive
    plane must additionally reach *parity with the fixed plane* — the
    sender-side batcher that trades virtual-time exactness for speed — within
    a noise band: the fixed plane's remaining edge is bounded, so "fastest
    plane" and "reference semantics" are no longer a trade-off.  (On the
    development machine the suite measures per-tuple 0.24s / adaptive 0.15s /
    fixed 0.14s — adaptive ~1.6x the reference and within ~10% of fixed, vs
    the ~1.5x/~1.7x split recorded by the previous release: the merged
    adaptive plane is ~1.7x the wall of its unmerged predecessor.  The CI
    breadcrumb tracks the absolute walls across releases.)

    The planes are measured interleaved (best-of-N each, after one untimed
    warm-up pass) so slow drift on shared runners biases none of them.
    """
    _fig7a_wall_clock(1, "vectorized", repetitions=1)  # warm caches/imports
    _fig7a_wall_clock(None, "vectorized", repetitions=1, batching="adaptive")
    _fig7a_wall_clock(64, "vectorized", repetitions=1)
    per_tuple_wall = adaptive_wall = fixed_wall = None
    for _ in range(5):
        wall, per_tuple_outs = _fig7a_wall_clock(1, "vectorized", repetitions=1)
        per_tuple_wall = wall if per_tuple_wall is None else min(per_tuple_wall, wall)
        wall, adaptive_outs = _fig7a_wall_clock(
            None, "vectorized", repetitions=1, batching="adaptive"
        )
        adaptive_wall = wall if adaptive_wall is None else min(adaptive_wall, wall)
        wall, fixed_outs = _fig7a_wall_clock(64, "vectorized", repetitions=1)
        fixed_wall = wall if fixed_wall is None else min(fixed_wall, wall)
    assert per_tuple_outs == adaptive_outs == fixed_outs
    assert per_tuple_wall >= 1.5 * adaptive_wall, (
        f"expected >=1.5x wall-clock win at reference semantics, got per-tuple "
        f"{per_tuple_wall:.3f}s vs adaptive {adaptive_wall:.3f}s"
    )
    assert adaptive_wall <= 1.25 * fixed_wall, (
        f"adaptive plane lost parity with the fixed plane: adaptive "
        f"{adaptive_wall:.3f}s vs fixed {fixed_wall:.3f}s"
    )


def test_fig7a_delivery_merging_heap_events():
    """Wire-level delivery merging cuts the adaptive plane's heap events
    >=2x (vs the same plane with merging disabled — the previous release's
    wire) while staying a bit-identical simulation.

    Heap events are deterministic counters, so this gate is noise-free.
    """
    results = {}
    for label, merging in (("merged", None), ("unmerged", False)):
        kwargs = {} if merging is None else {"operator_kwargs": {"delivery_merging": merging}}
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=None,
            batching="adaptive", **kwargs,
        )
        # Rebuilding the query per run re-draws identical datasets (same
        # seed); outputs are compared by count + timing here — id-level
        # output equality runs on shared arrival orders in
        # tests/test_adaptive_conformance.py.
        query = build_query("EQ5", config)
        results[label] = run_single("Dynamic", query, config)
    merged, unmerged = results["merged"], results["unmerged"]
    assert_run_equivalent(merged, unmerged, label="fig7a merged-vs-unmerged")
    assert merged.heap_events * 2 <= unmerged.heap_events, (
        f"expected >=2x fewer heap events, got merged {merged.heap_events} "
        f"vs unmerged {unmerged.heap_events}"
    )
    # Handler invocations are untouched by wire merging (receiver draining
    # owns that axis) — a drop would mean lost work.
    assert merged.events_processed == unmerged.events_processed
    assert merged.wire_histogram, "merged run must report per-link run lengths"


SEED_DENSE = 5


def _dense_equi_wall(probe_engine, repetitions=3, tuples=3000, keys=12):
    """Best-of-N wall-clock of a match-dense equi join on the adaptive plane.

    The fig7a suite is output-sparse (wall-clock is dominated by routing,
    migration protocol and simulator bookkeeping), so it cannot separate
    probe *engines* — that is why the vectorized gate above measures plane
    vs plane.  This workload is the opposite regime: ``tuples`` x ``tuples``
    records over ``keys`` distinct keys means every probe walks a huge bucket
    and emits hundreds of matches, putting candidate handling and match
    emission — the axes the columnar engine vectorises — in charge of the
    wall.  StaticMid keeps the run migration-free so the measured ratio is
    the engine's, not the protocol's.
    """
    best = None
    result = None
    for _ in range(repetitions):
        # Rebuild records and arrival order per run (identical draws from the
        # fixed seeds) so no engine ever sees tuples another run touched.
        rng = random.Random(11)
        left = [{"k": rng.randrange(keys), "v": i} for i in range(tuples)]
        right = [{"k": rng.randrange(keys), "v": i} for i in range(tuples)]
        query = JoinQuery(
            name="DENSE_EQ",
            left_relation="R",
            right_relation="S",
            left_records=left,
            right_records=right,
            predicate=EquiPredicate("k", "k"),
            description="match-dense equi join (dense buckets, huge output)",
        )
        order_rng = random.Random(SEED_DENSE)
        order = interleave_streams(
            make_tuples("R", left, order_rng, query.left_tuple_size),
            make_tuples("S", right, order_rng, query.right_tuple_size),
            order_rng,
        )
        session = JoinSession(
            query,
            operator="StaticMid",
            config=RunConfig(
                machines=16, seed=SEED_DENSE, batching="adaptive",
                probe_engine=probe_engine,
            ),
        )
        start = time.perf_counter()
        result = session.run(arrival_order=order)
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, result


@pytest.mark.skipif(not HAS_NUMPY, reason="the columnar engine requires NumPy")
def test_columnar_dense_equi_wall_clock():
    """The columnar engine runs the match-dense equi workload >=3x faster
    wall-clock than the vectorized engine, end to end on the adaptive plane —
    while remaining a bit-identical simulation (the full observable pin,
    event plumbing included, runs per cell in
    tests/test_adaptive_conformance.py; here the deterministic counters
    guard the measurement itself)."""
    _dense_equi_wall("columnar", repetitions=1)  # warm caches/imports
    vector_wall, vector_result = _dense_equi_wall("vectorized")
    columnar_wall, columnar_result = _dense_equi_wall("columnar")
    # Same simulation: deterministic counters must agree exactly.
    assert columnar_result.output_count == vector_result.output_count
    assert columnar_result.probe_work == vector_result.probe_work
    assert columnar_result.execution_time == vector_result.execution_time
    assert columnar_result.output_count > 500_000, (
        "workload lost its match density; the gate would be measuring noise"
    )
    assert vector_wall >= 3.0 * columnar_wall, (
        f"expected >=3x wall-clock win on the dense workload, got vectorized "
        f"{vector_wall:.3f}s vs columnar {columnar_wall:.3f}s"
    )


def test_fig7a_adaptive_reproduces_reference_figure():
    """fig7a on the adaptive plane is the *same figure* as the per-tuple
    reference — every reported number matches exactly, which is what finally
    lets the paper-figure drivers run batched."""
    reference = fig7a_throughput(scale=0.2, machines=8, seed=1)
    adaptive = fig7a_throughput(scale=0.2, machines=8, seed=1, batching="adaptive")
    assert adaptive.rows == reference.rows
