"""Fig. 7a — average operator throughput for every query and operator."""

from conftest import run_report

from repro.bench.experiments import fig7a_throughput


def test_fig7a_throughput(benchmark):
    report = run_report(benchmark, fig7a_throughput, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["throughput"] for row in report.rows}
    for query in ("EQ5", "EQ7"):
        # Dynamic and StaticOpt are close; both clearly beat StaticMid and SHJ
        # (which suffers under the Z4 skew used for the equi-joins).
        assert by_key[(query, "Dynamic")] > by_key[(query, "StaticMid")]
        assert by_key[(query, "Dynamic")] > by_key[(query, "SHJ")]
        assert by_key[(query, "Dynamic")] >= 0.4 * by_key[(query, "StaticOpt")]
    assert by_key[("BNCI", "Dynamic")] > by_key[("BNCI", "StaticMid")]
