"""Fig. 7a — average operator throughput for every query and operator."""

from conftest import run_report

from repro.bench.experiments import fig7a_throughput
from repro.bench.harness import ExperimentConfig, build_query, run_single


def test_fig7a_throughput(benchmark):
    report = run_report(benchmark, fig7a_throughput, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["throughput"] for row in report.rows}
    for query in ("EQ5", "EQ7"):
        # Dynamic and StaticOpt are close; both clearly beat StaticMid and SHJ
        # (which suffers under the Z4 skew used for the equi-joins).
        assert by_key[(query, "Dynamic")] > by_key[(query, "StaticMid")]
        assert by_key[(query, "Dynamic")] > by_key[(query, "SHJ")]
        assert by_key[(query, "Dynamic")] >= 0.4 * by_key[(query, "StaticOpt")]
    assert by_key[("BNCI", "Dynamic")] > by_key[("BNCI", "StaticMid")]


def test_fig7a_batched_dataplane_efficiency():
    """The operator-default batched data plane runs the fig7a workload with
    >=5x fewer simulator events than the per-tuple plane, at identical output
    counts per operator."""
    totals = {}
    outputs = {}
    for batch_size in (1, None):  # None = operator default (batched)
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=batch_size
        )
        query = build_query("EQ5", config)
        events = 0
        outs = {}
        for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
            result = run_single(kind, query, config)
            events += result.events_processed
            outs[kind] = result.output_count
        totals[batch_size] = events
        outputs[batch_size] = outs
    assert outputs[1] == outputs[None]
    assert totals[1] >= 5 * totals[None], (
        f"expected >=5x fewer events, got {totals[1]} vs {totals[None]}"
    )
