"""Fig. 7a — average operator throughput for every query and operator."""

import time

from conftest import run_report

from repro.bench.experiments import fig7a_throughput
from repro.bench.harness import ExperimentConfig, build_query, run_single


def test_fig7a_throughput(benchmark):
    report = run_report(benchmark, fig7a_throughput, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["throughput"] for row in report.rows}
    for query in ("EQ5", "EQ7"):
        # Dynamic and StaticOpt are close; both clearly beat StaticMid and SHJ
        # (which suffers under the Z4 skew used for the equi-joins).
        assert by_key[(query, "Dynamic")] > by_key[(query, "StaticMid")]
        assert by_key[(query, "Dynamic")] > by_key[(query, "SHJ")]
        assert by_key[(query, "Dynamic")] >= 0.4 * by_key[(query, "StaticOpt")]
    assert by_key[("BNCI", "Dynamic")] > by_key[("BNCI", "StaticMid")]


def test_fig7a_batched_dataplane_efficiency():
    """The operator-default batched data plane runs the fig7a workload with
    >=5x fewer simulator events than the per-tuple plane, at identical output
    counts per operator."""
    totals = {}
    outputs = {}
    for batch_size in (1, None):  # None = operator default (batched)
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=batch_size
        )
        query = build_query("EQ5", config)
        events = 0
        outs = {}
        for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
            result = run_single(kind, query, config)
            events += result.events_processed
            outs[kind] = result.output_count
        totals[batch_size] = events
        outputs[batch_size] = outs
    assert outputs[1] == outputs[None]
    assert totals[1] >= 5 * totals[None], (
        f"expected >=5x fewer events, got {totals[1]} vs {totals[None]}"
    )


def _fig7a_wall_clock(batch_size, probe_engine, repetitions=3):
    """Best-of-N wall-clock of the four fig7a operators on EQ5/Z4."""
    best = None
    for _ in range(repetitions):
        config = ExperimentConfig(
            machines=16, scale=0.4, skew="Z4", seed=1, batch_size=batch_size,
            operator_kwargs={"probe_engine": probe_engine},
        )
        query = build_query("EQ5", config)
        start = time.perf_counter()
        outs = {}
        for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
            outs[kind] = run_single(kind, query, config).output_count
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, outs


def test_fig7a_vectorized_probe_wall_clock():
    """The batched (batch_size=64) fig7a workload with the vectorized probe
    engine runs >=1.5x faster wall-clock than the PR 1 baseline plane.

    The per-tuple plane with per-member scalar probes is the in-tree stand-in
    for the PR 1 reference; the batched scalar run isolates the probe-engine
    contribution on top of transport batching.  (On the development machine
    the batched+vectorized run also measured ~1.7x the recorded PR 1 *batched*
    wall-clock; the CI breadcrumb tracks the absolute numbers across PRs.)

    Note this end-to-end gate would pass on transport batching alone; the
    probe-engine-specific >=1.5x gate is bench_probe_engine.py's equi
    micro-bench, which CI runs in the same step — simulator bookkeeping
    dominates the end-to-end wall, so the engine ratio is only robustly
    assertable where probe work dominates.
    """
    per_tuple_wall, per_tuple_outs = _fig7a_wall_clock(1, "scalar")
    batched_scalar_wall, batched_scalar_outs = _fig7a_wall_clock(64, "scalar")
    batched_vector_wall, batched_vector_outs = _fig7a_wall_clock(64, "vectorized")
    # Identical results on every plane/engine combination.
    assert per_tuple_outs == batched_scalar_outs == batched_vector_outs
    assert per_tuple_wall >= 1.5 * batched_vector_wall, (
        f"expected >=1.5x wall-clock win, got per-tuple {per_tuple_wall:.3f}s "
        f"vs batched+vectorized {batched_vector_wall:.3f}s"
    )
    # The vectorized engine must not substantially regress the batched plane
    # (generous margin: this runs as a CI gate on noisy shared runners; the
    # breadcrumb tracks the actual ratio).
    assert batched_vector_wall <= 1.3 * batched_scalar_wall, (
        f"vectorized probes slower than per-member probes: "
        f"{batched_vector_wall:.3f}s vs {batched_scalar_wall:.3f}s"
    )
