"""Fig. 6d — total execution time for every query and operator."""

from conftest import run_report

from repro.bench.experiments import fig6d_total_execution_time


def test_fig6d_total_execution_time(benchmark):
    report = run_report(benchmark, fig6d_total_execution_time, scale=0.4, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["execution_time"] for row in report.rows}
    for query in ("EQ5", "EQ7", "BNCI"):
        assert by_key[(query, "Dynamic")] <= by_key[(query, "StaticMid")]
        assert by_key[(query, "Dynamic")] <= 2.0 * by_key[(query, "StaticOpt")]
    # BCI is computation-intensive: the gap between operators narrows (paper:
    # "this performance gap is not large when the join is computationally
    # intensive").
    bci_gap = by_key[("BCI", "StaticMid")] / by_key[("BCI", "Dynamic")]
    eq5_gap = by_key[("EQ5", "StaticMid")] / by_key[("EQ5", "Dynamic")]
    assert bci_gap <= eq5_gap
