"""Fig. 8c — ILF/ILF* competitive ratio under fluctuating arrival ratios."""

from conftest import run_report

from repro.bench.experiments import fig8cd_fluctuations


def test_fig8c_competitive_ratio(benchmark):
    report = run_report(
        benchmark,
        fig8cd_fluctuations,
        scale=0.4,
        machines=16,
        seed=1,
        fluctuation_factors=(2, 4, 8),
    )
    for row in report.rows:
        # The observed ILF/ILF* stays close to the proven 1.25 bound even under
        # severe fluctuations (small slack for the sampled statistics and the
        # propagation window during migrations).
        assert row["max_ILF_over_ILF*"] <= 2.0 * row["theoretical_bound"]
    # Larger fluctuation factors force the operator to adapt (migrations occur).
    by_k = {row["fluctuation_k"]: row for row in report.rows}
    assert by_k[8]["migrations"] >= by_k[2]["migrations"]
    assert by_k[4]["migrations"] >= 1
