"""Fig. 8a (bottom) — weak scalability with out-of-core (spilling) computation."""

from conftest import run_report

from repro.bench.experiments import fig8ab_weak_scaling


def test_fig8a_weak_scaling_out_of_core(benchmark):
    in_memory = fig8ab_weak_scaling(
        base_scale=0.2, base_machines=8, steps=2, seed=1, queries=("EQ5",), out_of_core=False
    )
    report = run_report(
        benchmark,
        fig8ab_weak_scaling,
        base_scale=0.2,
        base_machines=8,
        steps=2,
        seed=1,
        queries=("EQ5",),
        out_of_core=True,
    )
    # Out-of-core runs spill and are substantially slower than in-memory runs
    # of the same configuration (paper: "performance drops by an order of
    # magnitude"), while still scaling.
    assert all(row["spilled"] for row in report.rows)
    for memory_row, spill_row in zip(in_memory.rows, report.rows):
        assert spill_row["execution_time"] > 1.5 * memory_row["execution_time"]
