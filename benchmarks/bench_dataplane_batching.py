"""Data-plane batching sweep — events/sec and tuples/sec per batch size."""

from conftest import run_report

from repro.bench.experiments import dataplane_batching


def test_dataplane_batching(benchmark):
    report = run_report(
        benchmark, dataplane_batching, scale=0.4, machines=16, seed=1
    )
    by_batch = {row["batch_size"]: row for row in report.rows}
    # Identical output regardless of batch size (also enforced by the driver).
    outputs = {row["output_count"] for row in report.rows}
    assert len(outputs) == 1
    # The default batched plane must amortise >=5x the simulator events of the
    # per-tuple path.
    assert by_batch[1]["events_processed"] >= 5 * by_batch[64]["events_processed"]
