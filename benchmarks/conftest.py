"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper's evaluation by
calling the corresponding driver in :mod:`repro.bench.experiments` exactly
once (``benchmark.pedantic(rounds=1)``) — the interesting output is the
experiment report, not the wall-clock time of the driver itself.  The rows of
each report are attached to ``benchmark.extra_info`` and printed, so
``pytest benchmarks/ --benchmark-only -s`` shows the regenerated tables.
"""

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_report(benchmark, driver, **kwargs):
    """Run ``driver`` once under pytest-benchmark and surface its report."""
    report = benchmark.pedantic(lambda: driver(**kwargs), rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = report.name
    benchmark.extra_info["rows"] = report.rows
    print()
    print(report.text)
    return report
