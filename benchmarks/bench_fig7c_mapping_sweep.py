"""Fig. 7c — final ILF and storage as the optimal mapping approaches (√J, √J)."""

from conftest import run_report

from repro.bench.experiments import fig7cd_mapping_sweep


def test_fig7c_mapping_sweep_ilf(benchmark):
    report = run_report(benchmark, fig7cd_mapping_sweep, scale=0.4, machines=16, seed=1)
    by_key = {(row["optimal_mapping"], row["operator"]): row for row in report.rows}
    # When the optimal mapping is far from square, StaticMid pays a large ILF
    # premium; when it is the square mapping, the gap (nearly) disappears.
    far = by_key[("(1,16)", "StaticMid")]["max_ilf"] / by_key[("(1,16)", "Dynamic")]["max_ilf"]
    near = by_key[("(4,4)", "StaticMid")]["max_ilf"] / by_key[("(4,4)", "Dynamic")]["max_ilf"]
    assert far > near
    assert near <= 1.3
