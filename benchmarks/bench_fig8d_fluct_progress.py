"""Fig. 8d — execution-time progress under fluctuating arrival ratios."""

from conftest import run_report

from repro.bench.experiments import fig8cd_fluctuations


def test_fig8d_fluctuation_progress(benchmark):
    report = run_report(
        benchmark,
        fig8cd_fluctuations,
        scale=0.4,
        machines=16,
        seed=3,
        fluctuation_factors=(2, 4, 6, 8),
    )
    times = [row["execution_time"] for row in report.rows]
    # Despite undergoing many migrations, progress stays roughly linear and the
    # total execution time is insensitive to the fluctuation factor (amortised
    # migration cost, Lemma 4.5): no run is more than ~2x another.
    assert max(times) <= 2.0 * min(times)
    progress_keys = [key for key in report.series if key.startswith("k=")]
    assert len(progress_keys) >= 4
