"""Probe-engine micro-benchmarks: local join probe throughput by flavour.

Measures :meth:`LocalJoiner.probe_batch` throughput (tuples probed+inserted
per second) for the equi, band and composite-equi flavours, comparing the
``vectorized`` engine against the ``scalar`` per-member reference path (the
pre-vectorization probe semantics), plus — when NumPy is available — the
``columnar`` engine.  The numbers feed the CI perf breadcrumb so probe-work
trends are visible across PRs.

A caveat on reading the columnar rows: this harness measures the *probe call
alone* and discards the matches, which is exactly the slice where the
columnar engine pays its array overhead without collecting its payoff (bulk
match emission into the metrics plane and the cumsum cost commit).  Its rows
are here for trend visibility and cross-engine agreement; the honest
wall-clock gate is the end-to-end dense-equi run in
``bench_fig7a_throughput.py::test_columnar_dense_equi_wall_clock``.

Run standalone for the table:

    PYTHONPATH=src python benchmarks/bench_probe_engine.py

or via pytest for the regression assertions (no fixtures required).
"""

import random
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - direct-invocation convenience
    sys.path.insert(0, str(SRC))

from repro.engine.columns import HAS_NUMPY  # noqa: E402
from repro.engine.stream import StreamTuple  # noqa: E402
from repro.joins.local import make_local_joiner  # noqa: E402
from repro.joins.predicates import (  # noqa: E402
    BandPredicate,
    CompositePredicate,
    EquiPredicate,
)

FLAVOURS = ("equi", "band", "band_exact", "composite")


def _predicate(flavour):
    if flavour == "equi":
        return EquiPredicate("k", "k")
    if flavour == "band":
        return BandPredicate("v", "v", width=40)
    if flavour == "band_exact":
        # The workload's band keys are integers, so the predicate may
        # truthfully advertise range completeness: the ordered-index window
        # [key-width, key+width] exactly decides the condition and the
        # vectorized engine skips per-candidate re-validation.
        return BandPredicate("v", "v", width=40, range_complete=True)
    return CompositePredicate(
        EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
    )


def _workload(stored, probes, keys, seed):
    rng = random.Random(seed)
    stored_items = [
        StreamTuple(relation="S", record={"k": rng.randrange(keys), "v": i})
        for i in range(stored)
    ]
    probe_items = [
        StreamTuple(relation="R", record={"k": rng.randrange(keys), "v": i})
        for i in range(probes)
    ]
    return stored_items, probe_items


def _measure(engine, flavour, stored_items, probe_items, batch, repetitions):
    best = None
    totals = None
    for _ in range(repetitions):
        joiner = make_local_joiner(_predicate(flavour), "R", "S", engine=engine)
        for item in stored_items:
            joiner.insert(item)
        work = 0.0
        matches = 0
        start = time.perf_counter()
        for position in range(0, len(probe_items), batch):
            for member_matches, member_work in joiner.probe_batch(
                probe_items[position:position + batch]
            ):
                work += member_work
                matches += len(member_matches)
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
        totals = (work, matches)
    return best, totals


def probe_microbench(
    stored=3000, probes=3000, keys=200, batch=64, repetitions=3, seed=7
):
    """Run the probe micro-benchmark; returns one row per flavour.

    Each row reports scalar/vectorized probe throughput, their ratio, and the
    (engine-invariant) total work units and matches — the work/match totals
    double as a correctness check between engines.
    """
    rows = []
    for flavour in FLAVOURS:
        stored_items, probe_items = _workload(stored, probes, keys, seed)
        scalar_wall, scalar_totals = _measure(
            "scalar", flavour, stored_items, probe_items, batch, repetitions
        )
        vector_wall, vector_totals = _measure(
            "vectorized", flavour, stored_items, probe_items, batch, repetitions
        )
        assert scalar_totals == vector_totals, (
            f"{flavour}: engines disagree on work/matches: "
            f"{scalar_totals} vs {vector_totals}"
        )
        work, matches = vector_totals
        row = {
            "flavour": flavour,
            "scalar_tuples_per_sec": round(probes / scalar_wall),
            "vectorized_tuples_per_sec": round(probes / vector_wall),
            "speedup": round(scalar_wall / vector_wall, 2),
            "probe_work": work,
            "matches": matches,
        }
        if HAS_NUMPY:
            columnar_wall, columnar_totals = _measure(
                "columnar", flavour, stored_items, probe_items, batch, repetitions
            )
            assert scalar_totals == columnar_totals, (
                f"{flavour}: columnar disagrees with the scalar oracle: "
                f"{scalar_totals} vs {columnar_totals}"
            )
            row["columnar_tuples_per_sec"] = round(probes / columnar_wall)
            row["columnar_speedup"] = round(scalar_wall / columnar_wall, 2)
        rows.append(row)
    return rows


def test_probe_engine_microbench():
    """Engines agree on work/matches; the vectorized exact-key path is
    >=1.5x faster than per-member probes on the equi flavour."""
    rows = probe_microbench()
    by_flavour = {row["flavour"]: row for row in rows}
    for row in rows:
        print(row)
    # The exact-key fast path (skip per-candidate equality re-validation,
    # zero-copy buckets, pre-extracted keys) is the headline win.
    assert by_flavour["equi"]["speedup"] >= 1.5, by_flavour["equi"]
    # Composite residuals still run, but only the residuals.
    assert by_flavour["composite"]["speedup"] >= 1.0, by_flavour["composite"]
    # Default band probes validate every candidate (float band edges are not
    # exact-key decidable); the batch path must at least not regress.
    assert by_flavour["band"]["speedup"] >= 0.7, by_flavour["band"]
    # A range-complete band predicate (integer keys, integer width) skips
    # per-candidate re-validation like the equi fast path — the window IS the
    # match set, so the win scales with candidate counts.
    assert by_flavour["band_exact"]["speedup"] >= 1.5, by_flavour["band_exact"]
    # Fast path or not, the matches and charged work must be identical.
    assert by_flavour["band_exact"]["matches"] == by_flavour["band"]["matches"]
    assert by_flavour["band_exact"]["probe_work"] == by_flavour["band"]["probe_work"]
    # Columnar rows (when NumPy is present) are correctness-pinned inside
    # probe_microbench (work/match totals vs the scalar oracle); no speedup
    # floor here — probe-call-only timing structurally undersells the engine
    # (see the module docstring), and its >=3x end-to-end gate lives in
    # bench_fig7a_throughput.py::test_columnar_dense_equi_wall_clock.
    if HAS_NUMPY:
        assert all("columnar_speedup" in row for row in rows)


if __name__ == "__main__":
    for bench_row in probe_microbench():
        print(bench_row)
