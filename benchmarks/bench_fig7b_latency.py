"""Fig. 7b — average tuple latency for every query and operator."""

from conftest import run_report

from repro.bench.experiments import fig7b_latency


def test_fig7b_latency(benchmark):
    report = run_report(benchmark, fig7b_latency, scale=0.3, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["avg_latency"] for row in report.rows}
    for query in ("EQ5", "EQ7", "BNCI"):
        dynamic = by_key[(query, "Dynamic")]
        static_mid = by_key[(query, "StaticMid")]
        # Adaptivity does not blow up latency: Dynamic stays within the same
        # order of magnitude as the static operators (paper: +5..20 ms).
        assert dynamic <= 3.0 * max(static_mid, 1e-9) + 5.0
