"""Fig. 7b — average tuple latency for every query and operator."""

from conftest import run_report

from repro.bench.experiments import fig7b_latency


def test_fig7b_latency(benchmark):
    report = run_report(benchmark, fig7b_latency, scale=0.3, machines=16, seed=1)
    by_key = {(row["query"], row["operator"]): row["avg_latency"] for row in report.rows}
    for query in ("EQ5", "EQ7", "BNCI"):
        dynamic = by_key[(query, "Dynamic")]
        static_mid = by_key[(query, "StaticMid")]
        # Adaptivity does not blow up latency: Dynamic stays within the same
        # order of magnitude as the static operators (paper: +5..20 ms).
        assert dynamic <= 3.0 * max(static_mid, 1e-9) + 5.0
    # Every row reports the batch-size trace next to the latency so
    # batching-induced latency artefacts are visible in review; the fixed
    # reference plane has no drained runs.
    assert all(row["batch_trace"] == "-" for row in report.rows)


def test_fig7b_adaptive_latency_and_trace():
    """The adaptive plane reports *identical* latencies (bit-identical
    simulations) and its batch-size trace shows the paced collapse: under
    the figure's paced arrivals the controller must process the overwhelming
    majority of runs per-tuple, not queue tuples into deep batches."""
    reference = fig7b_latency(scale=0.2, machines=8, seed=1)
    adaptive = fig7b_latency(scale=0.2, machines=8, seed=1, batching="adaptive")
    ref_latency = {(r["query"], r["operator"]): r["avg_latency"] for r in reference.rows}
    ada_latency = {(r["query"], r["operator"]): r["avg_latency"] for r in adaptive.rows}
    assert ada_latency == ref_latency
    for row in adaptive.rows:
        trace = row["batch_trace"]
        assert trace != "-", "adaptive rows must report their trace"
        histogram = {
            int(entry.split("*")[0]): int(entry.split("*")[1])
            for entry in trace.split()
        }
        runs = sum(histogram.values())
        shallow = sum(count for size, count in histogram.items() if size <= 8)
        # Paced arrivals keep backlogs shallow: the controller must process
        # the overwhelming majority of runs at (near-)per-tuple depth, and
        # per-tuple runs must be the single most common size.
        assert shallow >= 0.8 * runs, (
            f"paced workload should keep runs shallow, got {trace} "
            f"for {row['query']}/{row['operator']}"
        )
        assert histogram.get(1, 0) == max(histogram.values()), (
            f"per-tuple runs should dominate a paced trace, got {trace}"
        )
