"""Tests for stream tuples, salts, interleavings and fluctuating orders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stream import (
    ArrivalSchedule,
    StreamTuple,
    assign_salts,
    fluctuating_order,
    interleave_streams,
    make_tuples,
)


def _tuples(relation, count, rng):
    return make_tuples(relation, [{"k": i} for i in range(count)], rng)


class TestStreamTuple:
    def test_partition_respects_bounds(self):
        item = StreamTuple(relation="R", record={}, salt=0.999999)
        assert 0 <= item.partition(8) < 8

    def test_partition_is_dyadically_consistent(self):
        """floor(salt * n) must refine as n doubles and coarsen as n halves."""
        item = StreamTuple(relation="R", record={}, salt=0.63)
        for n in (1, 2, 4, 8, 16, 32):
            coarse = item.partition(n)
            fine = item.partition(2 * n)
            assert fine // 2 == coarse

    @given(st.floats(min_value=0.0, max_value=0.9999999), st.integers(min_value=1, max_value=10))
    @settings(max_examples=200)
    def test_partition_dyadic_property(self, salt, levels):
        item = StreamTuple(relation="R", record={}, salt=salt)
        parts = [item.partition(2 ** level) for level in range(levels + 1)]
        for coarse, fine in zip(parts, parts[1:]):
            assert fine // 2 == coarse

    def test_with_epoch_preserves_identity(self):
        item = StreamTuple(relation="R", record={"a": 1}, salt=0.5)
        tagged = item.with_epoch(3)
        assert tagged.tuple_id == item.tuple_id
        assert tagged.epoch == 3
        assert tagged.record is item.record

    def test_tuple_ids_are_unique(self):
        items = [StreamTuple(relation="R", record={}) for _ in range(100)]
        assert len({item.tuple_id for item in items}) == 100


class TestInterleaving:
    def test_uniform_contains_everything_exactly_once(self, rng):
        left = _tuples("R", 20, rng)
        right = _tuples("S", 30, rng)
        order = interleave_streams(left, right, rng, pattern="uniform")
        assert sorted(t.tuple_id for t in order) == sorted(
            t.tuple_id for t in left + right
        )

    def test_r_first_and_s_first(self, rng):
        left = _tuples("R", 5, rng)
        right = _tuples("S", 5, rng)
        assert [t.relation for t in interleave_streams(left, right, pattern="r_first")] == (
            ["R"] * 5 + ["S"] * 5
        )
        assert [t.relation for t in interleave_streams(left, right, pattern="s_first")] == (
            ["S"] * 5 + ["R"] * 5
        )

    def test_alternate_handles_uneven_lengths(self, rng):
        left = _tuples("R", 2, rng)
        right = _tuples("S", 5, rng)
        order = interleave_streams(left, right, pattern="alternate")
        assert len(order) == 7

    def test_uniform_requires_rng(self, rng):
        left = _tuples("R", 2, rng)
        right = _tuples("S", 2, rng)
        with pytest.raises(ValueError):
            interleave_streams(left, right, None, pattern="uniform")

    def test_unknown_pattern_rejected(self, rng):
        with pytest.raises(ValueError):
            interleave_streams([], [], rng, pattern="zigzag")


class TestArrivalSchedule:
    def test_arrival_times_are_spaced(self, rng):
        items = _tuples("R", 4, rng)
        schedule = ArrivalSchedule(items=items, inter_arrival=2.0)
        times = [time for time, _ in schedule.arrivals()]
        assert times == [0.0, 2.0, 4.0, 6.0]
        assert len(schedule) == 4


class TestSalts:
    def test_assign_salts_in_unit_interval(self, rng):
        items = [StreamTuple(relation="R", record={}) for _ in range(50)]
        assign_salts(items, rng)
        assert all(0.0 <= item.salt < 1.0 for item in items)

    def test_salts_deterministic_for_seed(self):
        a = make_tuples("R", [{"k": i} for i in range(10)], random.Random(3))
        b = make_tuples("R", [{"k": i} for i in range(10)], random.Random(3))
        assert [t.salt for t in a] == [t.salt for t in b]


class TestFluctuatingOrder:
    def test_contains_every_tuple_exactly_once(self, rng):
        left = _tuples("R", 40, rng)
        right = _tuples("S", 40, rng)
        order = fluctuating_order(left, right, fluctuation_factor=2, warmup=10)
        assert sorted(t.tuple_id for t in order) == sorted(t.tuple_id for t in left + right)

    def test_ratio_actually_fluctuates(self, rng):
        left = _tuples("R", 200, rng)
        right = _tuples("S", 200, rng)
        order = fluctuating_order(left, right, fluctuation_factor=4, warmup=20)
        sent_r = sent_s = 0
        ratios = []
        for item in order:
            if item.relation == "R":
                sent_r += 1
            else:
                sent_s += 1
            if sent_r and sent_s:
                ratios.append(sent_r / sent_s)
        assert max(ratios) > 2.0
        assert min(ratios) < 0.51

    def test_factor_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            fluctuating_order(_tuples("R", 2, rng), _tuples("S", 2, rng), fluctuation_factor=1)
