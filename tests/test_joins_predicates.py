"""Tests for join predicates and the reference cross-join evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.predicates import (
    BandPredicate,
    CompositePredicate,
    EquiPredicate,
    NotEqualPredicate,
    ThetaPredicate,
    cross_join_reference,
)


class TestEquiPredicate:
    def test_matches(self):
        predicate = EquiPredicate("a", "b")
        assert predicate.matches({"a": 3}, {"b": 3})
        assert not predicate.matches({"a": 3}, {"b": 4})
        assert predicate.kind == "equi"

    def test_keys(self):
        predicate = EquiPredicate("a", "b")
        assert predicate.left_key({"a": 9}) == 9
        assert predicate.right_key({"b": 8}) == 8

    def test_describe(self):
        assert "a = b" == EquiPredicate("a", "b").describe()


class TestBandPredicate:
    def test_matches_within_width(self):
        predicate = BandPredicate("x", "y", width=2)
        assert predicate.matches({"x": 5}, {"y": 7})
        assert predicate.matches({"x": 5}, {"y": 3})
        assert not predicate.matches({"x": 5}, {"y": 8})
        assert predicate.kind == "band"

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(0, 10))
    @settings(max_examples=100)
    def test_symmetry(self, x, y, width):
        predicate = BandPredicate("x", "y", width=width)
        flipped = BandPredicate("x", "y", width=width)
        assert predicate.matches({"x": x}, {"y": y}) == flipped.matches({"x": y}, {"y": x})


class TestThetaAndComposite:
    def test_theta_callable(self):
        predicate = ThetaPredicate(lambda l, r: l["a"] < r["b"], name="a < b")
        assert predicate.matches({"a": 1}, {"b": 2})
        assert not predicate.matches({"a": 2}, {"b": 2})
        assert predicate.describe() == "a < b"
        assert predicate.kind == "theta"

    def test_not_equal(self):
        predicate = NotEqualPredicate("a", "a")
        assert predicate.matches({"a": 1}, {"a": 2})
        assert not predicate.matches({"a": 1}, {"a": 1})

    def test_composite_inherits_kind_and_filters(self):
        predicate = CompositePredicate(
            primary=EquiPredicate("k", "k"),
            residuals=[lambda l, r: l["v"] > 10],
        )
        assert predicate.kind == "equi"
        assert predicate.matches({"k": 1, "v": 11}, {"k": 1})
        assert not predicate.matches({"k": 1, "v": 5}, {"k": 1})
        assert not predicate.matches({"k": 1, "v": 11}, {"k": 2})
        assert predicate.left_key({"k": 4, "v": 0}) == 4

    def test_composite_describe(self):
        predicate = CompositePredicate(EquiPredicate("k", "k"), [lambda l, r: True])
        assert "residual" in predicate.describe()
        named = CompositePredicate(EquiPredicate("k", "k"), name="custom")
        assert named.describe() == "custom"


class TestExactKeyContract:
    def test_equi_is_exact_key_with_no_residual(self):
        predicate = EquiPredicate("a", "b")
        assert predicate.exact_key
        assert not predicate.has_residual
        assert predicate.residual_check() is None
        assert predicate.residual_matches({"a": 1}, {"b": 99})

    def test_band_and_theta_are_not_exact_key(self):
        assert not BandPredicate("x", "y", width=1).exact_key
        assert not ThetaPredicate(lambda l, r: True).exact_key
        assert not NotEqualPredicate("a", "a").exact_key

    def test_composite_exact_key_runs_residuals_only(self):
        predicate = CompositePredicate(
            EquiPredicate("k", "k"), residuals=[lambda l, r: l["v"] > 10]
        )
        assert predicate.exact_key
        assert predicate.has_residual
        check = predicate.residual_check()
        # The residual check skips the (index-guaranteed) key equality.
        assert check({"k": 1, "v": 11}, {"k": 999})
        assert not check({"k": 1, "v": 5}, {"k": 1})

    def test_composite_without_residuals_is_exact_hit(self):
        predicate = CompositePredicate(EquiPredicate("k", "k"))
        assert predicate.exact_key
        assert not predicate.has_residual
        assert predicate.residual_check() is None

    def test_composite_multiple_residuals_combined(self):
        predicate = CompositePredicate(
            EquiPredicate("k", "k"),
            residuals=[lambda l, r: l["v"] > 0, lambda l, r: r["w"] < 5],
        )
        check = predicate.residual_check()
        assert check({"k": 1, "v": 1}, {"k": 1, "w": 0})
        assert not check({"k": 1, "v": 0}, {"k": 1, "w": 0})
        assert not check({"k": 1, "v": 1}, {"k": 1, "w": 9})


class TestCrossJoinReference:
    def test_counts_matching_pairs(self):
        left = [{"k": 1}, {"k": 2}]
        right = [{"k": 2}, {"k": 2}, {"k": 3}]
        matches = cross_join_reference(left, right, EquiPredicate("k", "k"))
        assert matches == [(1, 0), (1, 1)]

    def test_cross_product_upper_bound(self):
        left = [{"k": i} for i in range(4)]
        right = [{"k": i} for i in range(5)]
        always = ThetaPredicate(lambda l, r: True)
        assert len(cross_join_reference(left, right, always)) == 20
