"""Tests for the Zipf sampler, the TPC-H-like generator and the query builders."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import schema
from repro.data.queries import available_queries, make_query
from repro.data.skew import SKEW_LEVELS, ZipfSampler, skew_parameter, zipf_choice
from repro.data.tpch import generate_dataset


class TestZipfSampler:
    def test_uniform_when_z_zero(self):
        sampler = ZipfSampler(4, 0.0, random.Random(0))
        counts = Counter(sampler.sample() for _ in range(8000))
        for value in range(1, 5):
            assert 0.2 < counts[value] / 8000 < 0.3

    def test_skewed_distribution_prefers_small_values(self):
        sampler = ZipfSampler(100, 1.0, random.Random(0))
        counts = Counter(sampler.sample() for _ in range(5000))
        assert counts[1] > counts.get(50, 0)
        assert counts[1] > 0.1 * 5000  # value 1 takes a large share under z=1

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, 0.75)
        total = sum(sampler.probability(value) for value in range(1, 21))
        assert total == pytest.approx(1.0)
        assert sampler.probability(0) == 0.0
        assert sampler.probability(21) == 0.0

    @given(st.integers(1, 200), st.floats(0.0, 1.5))
    @settings(max_examples=80)
    def test_samples_always_in_range(self, n, z):
        sampler = ZipfSampler(n, z, random.Random(1))
        for _ in range(20):
            assert 1 <= sampler.sample() <= n

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.5)
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.1)

    def test_zipf_choice_and_labels(self):
        rng = random.Random(0)
        values = ["a", "b", "c"]
        assert zipf_choice(values, 1.0, rng) in values
        assert skew_parameter("Z3") == 0.75
        assert skew_parameter(0.3) == 0.3
        with pytest.raises(ValueError):
            skew_parameter("Z9")
        assert set(SKEW_LEVELS) == {"Z0", "Z1", "Z2", "Z3", "Z4"}


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_dataset(scale=0.2, skew="Z2", seed=5)
        b = generate_dataset(scale=0.2, skew="Z2", seed=5)
        assert a.table("LINEITEM") == b.table("LINEITEM")
        c = generate_dataset(scale=0.2, skew="Z2", seed=6)
        assert a.table("LINEITEM") != c.table("LINEITEM")

    def test_cardinalities_scale(self):
        small = generate_dataset(scale=0.5, seed=1)
        large = generate_dataset(scale=1.0, seed=1)
        assert large.cardinality("LINEITEM") == pytest.approx(
            2 * small.cardinality("LINEITEM"), rel=0.05
        )
        assert small.cardinality("REGION") == 5
        assert small.cardinality("NATION") == 25

    def test_relative_table_sizes(self):
        dataset = generate_dataset(scale=1.0, seed=1)
        assert dataset.cardinality("LINEITEM") == 4 * dataset.cardinality("ORDERS")
        assert dataset.cardinality("ORDERS") > dataset.cardinality("SUPPLIER")

    def test_schema_columns_present(self):
        dataset = generate_dataset(scale=0.2, seed=1)
        lineitem = dataset.table("LINEITEM")[0]
        assert set(schema.LINEITEM_COLUMNS) <= set(lineitem)
        supplier = dataset.table("SUPPLIER")[0]
        assert set(schema.SUPPLIER_COLUMNS) <= set(supplier)

    def test_foreign_keys_within_range(self):
        dataset = generate_dataset(scale=0.2, seed=1)
        supplier_count = dataset.cardinality("SUPPLIER")
        orders_count = dataset.cardinality("ORDERS")
        for item in dataset.table("LINEITEM"):
            assert 1 <= item["suppkey"] <= supplier_count
            assert 1 <= item["orderkey"] <= orders_count

    def test_skew_concentrates_foreign_keys(self):
        uniform = generate_dataset(scale=1.0, skew="Z0", seed=2)
        skewed = generate_dataset(scale=1.0, skew="Z4", seed=2)

        def top_share(dataset):
            counts = Counter(item["suppkey"] for item in dataset.table("LINEITEM"))
            return counts.most_common(1)[0][1] / dataset.cardinality("LINEITEM")

        assert top_share(skewed) > 3 * top_share(uniform)


class TestQueries:
    def test_available_queries(self):
        names = available_queries()
        for expected in ("EQ5", "EQ7", "BCI", "BNCI", "FLUCT", "FLUCT_SYM", "THETA_NEQ"):
            assert expected in names

    def test_unknown_query_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            make_query("EQ99", small_dataset)

    def test_eq5_shape(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        left, right = query.cardinalities
        assert right == small_dataset.cardinality("LINEITEM")
        assert 0 < left < small_dataset.cardinality("SUPPLIER") + 1
        assert query.predicate.kind == "equi"
        assert "EQ5" in query.summary()

    def test_eq7_filters_two_nations(self, small_dataset):
        query = make_query("EQ7", small_dataset)
        assert query.left_records, "EQ7 supplier side must not be empty"
        nations = {record["nation_name"] for record in query.left_records}
        # The preferred Q7 pair (FRANCE, GERMANY) is used when populated;
        # otherwise the builder falls back to the two largest nations.
        assert len(nations) <= 2

    def test_band_queries_have_single_side_filters_applied(self, small_dataset):
        bci = make_query("BCI", small_dataset)
        assert all(r["shipmode"] == "TRUCK" and r["quantity"] > 45 for r in bci.left_records)
        assert all(r["shipmode"] != "TRUCK" for r in bci.right_records)
        assert bci.predicate.kind == "band"
        bnci = make_query("BNCI", small_dataset)
        assert all(r["shipinstruct"] == "NONE" for r in bnci.right_records)

    def test_bci_is_more_selective_than_bnci_in_output_rate(self, small_dataset):
        """BCI (shipdate band) produces far more output per input pair than BNCI."""
        from repro.joins.predicates import cross_join_reference

        bci = make_query("BCI", small_dataset)
        bnci = make_query("BNCI", small_dataset)
        bci_matches = len(
            cross_join_reference(bci.left_records, bci.right_records, bci.predicate)
        )
        bnci_matches = len(
            cross_join_reference(bnci.left_records, bnci.right_records, bnci.predicate)
        )
        bci_rate = bci_matches / max(1, len(bci.left_records) * len(bci.right_records))
        bnci_rate = bnci_matches / max(1, len(bnci.left_records) * len(bnci.right_records))
        assert bci_rate > bnci_rate

    def test_fluct_queries(self, small_dataset):
        fluct = make_query("FLUCT", small_dataset)
        assert all(
            record["shippriority"] not in ("5-LOW", "1-URGENT") for record in fluct.left_records
        )
        sym = make_query("FLUCT_SYM", small_dataset)
        left, right = sym.cardinalities
        assert abs(left - right) <= max(left, right)  # comparable halves

    def test_theta_query_kind(self, small_dataset):
        query = make_query("THETA_NEQ", small_dataset)
        assert query.predicate.kind == "theta"
