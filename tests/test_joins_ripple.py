"""Tests for the block ripple join and its running estimates."""

import random

import pytest

from repro.engine.stream import StreamTuple
from repro.joins.predicates import EquiPredicate
from repro.joins.ripple import RippleJoiner


def _feed(joiner, left, right, rng):
    order = left + right
    rng.shuffle(order)
    matched = 0
    for item in order:
        matches, _ = joiner.probe(item)
        matched += len(matches)
        joiner.insert(item)
    return matched


class TestRippleJoiner:
    def test_joins_like_any_local_algorithm(self):
        rng = random.Random(0)
        predicate = EquiPredicate("k", "k")
        left = [StreamTuple(relation="R", record={"k": i % 4}) for i in range(20)]
        right = [StreamTuple(relation="S", record={"k": i % 4}) for i in range(20)]
        joiner = RippleJoiner(predicate, "R", "S")
        matched = _feed(joiner, left, right, rng)
        expected = sum(
            1 for l in left for r in right if l.record["k"] == r.record["k"]
        )
        assert matched == expected

    def test_running_estimate_brackets_truth_for_uniform_keys(self):
        rng = random.Random(1)
        predicate = EquiPredicate("k", "k")
        distinct = 10
        left = [StreamTuple(relation="R", record={"k": rng.randrange(distinct)}) for _ in range(300)]
        right = [StreamTuple(relation="S", record={"k": rng.randrange(distinct)}) for _ in range(300)]
        joiner = RippleJoiner(predicate, "R", "S")
        # Feed only half of each stream as the "sample".
        _feed(joiner, left[:150], right[:150], rng)
        estimate = joiner.running_estimate(total_left=len(left), total_right=len(right))
        truth = sum(1 for l in left for r in right if l.record["k"] == r.record["k"])
        assert estimate.low <= truth <= estimate.high or (
            abs(estimate.estimate - truth) / truth < 0.5
        )
        assert estimate.sampled_left == 150
        assert estimate.sampled_right == 150

    def test_estimate_with_no_samples(self):
        joiner = RippleJoiner(EquiPredicate("k", "k"), "R", "S")
        estimate = joiner.running_estimate(100, 100)
        assert estimate.estimate == 0.0
        assert estimate.low == 0.0
