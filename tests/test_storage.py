"""Tests for the memory and spill tuple stores."""

import pytest

from repro.engine.stream import StreamTuple
from repro.storage import MemoryStore, SpillStore


def _tuples(relation, count, size=1.0):
    return [StreamTuple(relation=relation, record={"i": i}, size=size) for i in range(count)]


class TestMemoryStore:
    def test_add_remove_and_size(self):
        store = MemoryStore()
        items = _tuples("R", 3, size=2.0)
        for item in items:
            store.add(item)
        assert len(store) == 3
        assert store.size == pytest.approx(6.0)
        assert store.remove(items[0])
        assert not store.remove(items[0])
        assert store.size == pytest.approx(4.0)

    def test_add_is_idempotent_per_tuple(self):
        store = MemoryStore()
        item = _tuples("R", 1)[0]
        store.add(item)
        store.add(item)
        assert len(store) == 1

    def test_iteration_by_relation(self):
        store = MemoryStore()
        for item in _tuples("R", 2) + _tuples("S", 3):
            store.add(item)
        assert store.count("R") == 2
        assert store.count("S") == 3
        assert len(list(store.tuples("S"))) == 3
        assert len(list(store.tuples())) == 5

    def test_contains_and_clear(self):
        store = MemoryStore()
        item = _tuples("R", 1)[0]
        store.add(item)
        assert store.contains(item)
        store.clear()
        assert not store.contains(item)
        assert store.size == 0.0


class TestSpillStore:
    def test_spills_beyond_capacity(self):
        store = SpillStore(capacity=2.0, penalty=7.0)
        items = _tuples("R", 3)
        assert store.add(items[0]) == 1.0
        assert store.add(items[1]) == 1.0
        assert store.add(items[2]) == 7.0       # over budget
        assert store.is_spilled
        assert store.spilled_size == pytest.approx(1.0)
        assert store.access_factor() == 7.0
        assert store.spill_events == 1

    def test_unbounded_never_spills(self):
        store = SpillStore(capacity=None)
        for item in _tuples("R", 100):
            assert store.add(item) == 1.0
        assert not store.is_spilled
        assert store.spilled_size == 0.0

    def test_removal_can_unspill(self):
        store = SpillStore(capacity=1.0)
        items = _tuples("R", 2)
        store.add(items[0])
        store.add(items[1])
        assert store.is_spilled
        store.remove(items[1])
        assert not store.is_spilled

    def test_spilled_size_never_drifts_under_interleaving(self):
        """Incremental spilled accounting equals the closed-form recompute
        after every operation in an interleaved add/remove/drop sequence."""
        store = SpillStore(capacity=5.0)
        items = _tuples("R", 12, size=1.5)

        def check():
            expected = max(0.0, store.size - store.capacity)
            assert store.spilled_size == pytest.approx(expected)

        for i, item in enumerate(items):
            store.add(item, tag="mu" if i % 3 == 0 else "keep")
            check()
        for item in items[1:6]:  # individual removals (migrate-away)
            store.remove(item)
            check()
        store.drop_partition("mu")  # wholesale drop (finalize)
        check()
        store.drop_partition("keep")
        check()
        assert store.spilled_size == 0.0

    def test_drop_partition_settles_against_tuples_actually_removed(self):
        """A tuple removed individually after being tagged frees nothing when
        its partition is later dropped — the counter must not double-credit."""
        store = SpillStore(capacity=2.0)
        items = _tuples("R", 6)
        for item in items[:4]:
            store.add(item, tag="drop")
        for item in items[4:]:
            store.add(item, tag="keep")
        assert store.spilled_size == pytest.approx(4.0)
        # Migrate two tagged tuples away individually, then finalize the drop.
        store.remove(items[0])
        store.remove(items[1])
        assert store.spilled_size == pytest.approx(2.0)
        assert store.drop_partition("drop") == pytest.approx(2.0)
        assert store.size == pytest.approx(2.0)
        assert store.spilled_size == 0.0
        assert not store.is_spilled

    def test_partition_size_tracks_live_members(self):
        store = SpillStore(capacity=None)
        items = _tuples("R", 3, size=2.0)
        for item in items:
            store.add(item, tag="delta")
        assert store.partition_size("delta") == pytest.approx(6.0)
        store.remove(items[0])
        assert store.partition_size("delta") == pytest.approx(4.0)
        assert store.partition_size("missing") == 0.0
        store.drop_partition("delta")
        assert store.partition_size("delta") == 0.0
        assert len(store) == 0
