"""Tests for the memory and spill tuple stores."""

import pytest

from repro.engine.stream import StreamTuple
from repro.storage import MemoryStore, SpillStore


def _tuples(relation, count, size=1.0):
    return [StreamTuple(relation=relation, record={"i": i}, size=size) for i in range(count)]


class TestMemoryStore:
    def test_add_remove_and_size(self):
        store = MemoryStore()
        items = _tuples("R", 3, size=2.0)
        for item in items:
            store.add(item)
        assert len(store) == 3
        assert store.size == pytest.approx(6.0)
        assert store.remove(items[0])
        assert not store.remove(items[0])
        assert store.size == pytest.approx(4.0)

    def test_add_is_idempotent_per_tuple(self):
        store = MemoryStore()
        item = _tuples("R", 1)[0]
        store.add(item)
        store.add(item)
        assert len(store) == 1

    def test_iteration_by_relation(self):
        store = MemoryStore()
        for item in _tuples("R", 2) + _tuples("S", 3):
            store.add(item)
        assert store.count("R") == 2
        assert store.count("S") == 3
        assert len(list(store.tuples("S"))) == 3
        assert len(list(store.tuples())) == 5

    def test_contains_and_clear(self):
        store = MemoryStore()
        item = _tuples("R", 1)[0]
        store.add(item)
        assert store.contains(item)
        store.clear()
        assert not store.contains(item)
        assert store.size == 0.0


class TestSpillStore:
    def test_spills_beyond_capacity(self):
        store = SpillStore(capacity=2.0, penalty=7.0)
        items = _tuples("R", 3)
        assert store.add(items[0]) == 1.0
        assert store.add(items[1]) == 1.0
        assert store.add(items[2]) == 7.0       # over budget
        assert store.is_spilled
        assert store.spilled_size == pytest.approx(1.0)
        assert store.access_factor() == 7.0
        assert store.spill_events == 1

    def test_unbounded_never_spills(self):
        store = SpillStore(capacity=None)
        for item in _tuples("R", 100):
            assert store.add(item) == 1.0
        assert not store.is_spilled
        assert store.spilled_size == 0.0

    def test_removal_can_unspill(self):
        store = SpillStore(capacity=1.0)
        items = _tuples("R", 2)
        store.add(items[0])
        store.add(items[1])
        assert store.is_spilled
        store.remove(items[1])
        assert not store.is_spilled
