"""Tests for the discrete-event simulator: ordering, queueing, accounting."""

import pytest

from repro.engine.machine import CostModel
from repro.engine.network import TrafficCategory
from repro.engine.simulator import Simulator
from repro.engine.stream import ArrivalSchedule, StreamTuple, TupleBatch
from repro.engine.task import Context, Message, MessageKind, Task


class Recorder(Task):
    """Task that records (logical time, payload) for every message."""

    def __init__(self, name, machine_id=-1, cost=0.0):
        super().__init__(name, machine_id)
        self.cost = cost
        self.log = []

    def handle(self, message: Message, ctx: Context) -> None:
        self.log.append((ctx.now, message.payload))
        ctx.charge(self.cost)


class Forwarder(Task):
    """Task that forwards every payload to a destination."""

    def __init__(self, name, destination, machine_id=-1, cost=0.0):
        super().__init__(name, machine_id)
        self.destination = destination
        self.cost = cost

    def handle(self, message: Message, ctx: Context) -> None:
        ctx.charge(self.cost)
        ctx.send(
            self.destination,
            Message(
                kind=message.kind, sender=self.name, payload=message.payload, size=message.size
            ),
        )


def _data(payload, kind=MessageKind.DATA, size=1.0):
    return Message(kind=kind, sender="test", payload=payload, size=size)


class TestScheduling:
    def test_events_processed_in_time_order(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=-1))
        sim.schedule(5.0, "r", _data("late"))
        sim.schedule(1.0, "r", _data("early"))
        sim.run()
        assert [p for _, p in task.log] == ["early", "late"]

    def test_unknown_destination_rejected(self):
        sim = Simulator(num_machines=1)
        with pytest.raises(KeyError):
            sim.schedule(0.0, "nobody", _data("x"))

    def test_duplicate_task_names_rejected(self):
        sim = Simulator(num_machines=1)
        sim.register(Recorder("a"))
        with pytest.raises(ValueError):
            sim.register(Recorder("a"))

    def test_task_on_unknown_machine_rejected(self):
        sim = Simulator(num_machines=1)
        with pytest.raises(ValueError):
            sim.register(Recorder("a", machine_id=5))


class TestMachineQueueing:
    def test_busy_machine_defers_processing(self):
        """Two messages to the same machine are handled back-to-back."""
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0, cost=10.0))
        sim.schedule(0.0, "r", _data("a"))
        sim.schedule(1.0, "r", _data("b"))
        finish = sim.run()
        times = [t for t, _ in task.log]
        assert times[0] == pytest.approx(0.0)
        assert times[1] == pytest.approx(10.0)  # waits for the machine
        assert finish == pytest.approx(20.0)

    def test_fifo_order_preserved_under_load(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0, cost=1.0))
        for index in range(20):
            sim.schedule(0.0, "r", _data(index))
        sim.run()
        assert [p for _, p in task.log] == list(range(20))

    def test_independent_machines_run_in_parallel(self):
        sim = Simulator(num_machines=2)
        fast = sim.register(Recorder("m0", machine_id=0, cost=5.0))
        slow = sim.register(Recorder("m1", machine_id=1, cost=5.0))
        sim.schedule(0.0, "m0", _data("x"))
        sim.schedule(0.0, "m1", _data("y"))
        finish = sim.run()
        assert finish == pytest.approx(5.0)
        assert sim.machines[0].busy_time == pytest.approx(5.0)
        assert sim.machines[1].busy_time == pytest.approx(5.0)

    def test_priority_control_messages_bypass_backlog(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0, cost=10.0))
        for index in range(5):
            sim.schedule(0.0, "r", _data(index))
        sim.schedule(1.0, "r", _data("control", kind=MessageKind.MAPPING_CHANGE, size=0.0))
        sim.run()
        payloads = [p for _, p in task.log]
        # The control message is handled at its delivery time, long before the
        # data backlog drains.
        assert payloads.index("control") == 1

    def test_max_events_guard(self):
        sim = Simulator(num_machines=1)
        sim.register(Forwarder("a", "b", machine_id=0))
        sim.register(Forwarder("b", "a", machine_id=0))
        sim.schedule(0.0, "a", _data("loop"))
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPipelines:
    def test_forwarding_pipeline_and_execution_time(self):
        cost_model = CostModel(network_latency=1.0, per_tuple_network_cost=0.0)
        sim = Simulator(num_machines=2, cost_model=cost_model)
        sink = sim.register(Recorder("sink", machine_id=1, cost=2.0))
        sim.register(Forwarder("hop", "sink", machine_id=0, cost=1.0))
        sim.schedule(0.0, "hop", _data("t1"))
        finish = sim.run()
        # hop: work [0,1); network +1; sink starts at 2, works 2 units.
        assert sink.log[0][0] == pytest.approx(2.0)
        assert finish == pytest.approx(4.0)

    def test_feed_schedule_sets_arrival_times(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0))
        items = [StreamTuple(relation="R", record={"i": i}) for i in range(3)]
        schedule = ArrivalSchedule(items=items, inter_arrival=2.0)
        sim.feed_schedule(schedule, destination_picker=lambda item: "r")
        sim.run()
        assert [item.arrival_time for item in items] == [0.0, 2.0, 4.0]
        assert len(task.log) == 3

    def test_storage_summaries(self):
        sim = Simulator(num_machines=2)
        sim.machines[0].add_stored(5.0)
        sim.machines[1].add_stored(9.0)
        assert sim.max_machine_storage() == 9.0
        assert sim.total_storage() == 14.0
        assert not sim.any_spilled()


class TestPriorityStart:
    def test_control_message_waits_for_running_handler(self):
        """A priority message bypasses the inbox but not the busy CPU: it
        starts at max(delivery time, machine.busy_until)."""
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0, cost=10.0))
        sim.schedule(0.0, "r", _data("data"))
        sim.schedule(1.0, "r", _data("control", kind=MessageKind.MAPPING_CHANGE, size=0.0))
        sim.run()
        times = {payload: time for time, payload in task.log}
        assert times["data"] == pytest.approx(0.0)
        # Delivered at t=1 while the data handler occupies [0, 10); starts at 10.
        assert times["control"] == pytest.approx(10.0)

    def test_control_message_on_idle_machine_starts_at_delivery(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0, cost=1.0))
        sim.schedule(3.0, "r", _data("control", kind=MessageKind.MAPPING_CHANGE, size=0.0))
        sim.run()
        assert task.log[0][0] == pytest.approx(3.0)


class TestBatchedFeed:
    def _items(self, count):
        return [StreamTuple(relation="R", record={"i": i}, size=2.0) for i in range(count)]

    def test_batched_feed_coalesces_per_destination(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0))
        items = self._items(10)
        schedule = ArrivalSchedule(items=items, inter_arrival=1.0)
        sim.feed_schedule(schedule, destination_picker=lambda item: "r", batch_size=4)
        sim.run()
        # 10 arrivals -> batches of 4, 4 and a flushed partial of 2.
        sizes = [len(payload) for _, payload in task.log]
        assert sizes == [4, 4, 2]
        for _, payload in task.log:
            assert isinstance(payload, TupleBatch)
        # Per-member arrival stamps survive coalescing.
        assert [item.arrival_time for item in items] == [float(i) for i in range(10)]

    def test_batch_emitted_at_newest_member_arrival(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0))
        schedule = ArrivalSchedule(items=self._items(4), inter_arrival=2.0)
        sim.feed_schedule(schedule, destination_picker=lambda item: "r", batch_size=4)
        sim.run()
        assert task.log[0][0] == pytest.approx(6.0)

    def test_batch_size_one_is_per_tuple(self):
        sim = Simulator(num_machines=1)
        task = sim.register(Recorder("r", machine_id=0))
        schedule = ArrivalSchedule(items=self._items(3))
        sim.feed_schedule(schedule, destination_picker=lambda item: "r", batch_size=1)
        sim.run()
        assert len(task.log) == 3
        assert all(isinstance(payload, StreamTuple) for _, payload in task.log)

    def test_batch_network_accounting_is_exact(self):
        """A batch transfer counts one message, len(batch) tuples and the
        summed member size as volume."""
        sim = Simulator(num_machines=2)
        sim.register(Recorder("sink", machine_id=1))
        forwarder = sim.register(Forwarder("hop", "sink", machine_id=0))
        batch = TupleBatch(items=self._items(5))
        message = Message(
            kind=MessageKind.BATCH,
            sender="test",
            payload=batch,
            size=batch.size,
            meta={"inner": MessageKind.DATA},
        )
        sim.schedule(0.0, "hop", message)
        sim.run()
        assert sim.network.messages[TrafficCategory.ROUTING] == 1
        assert sim.network.tuples[TrafficCategory.ROUTING] == 5
        assert sim.network.volume[TrafficCategory.ROUTING] == pytest.approx(10.0)
