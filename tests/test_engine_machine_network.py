"""Tests for the machine cost model, storage accounting and the network."""

import pytest

from repro.engine.machine import CostModel, Machine
from repro.engine.network import Network, TrafficCategory


class TestCostModel:
    def test_with_memory_overrides_only_capacity(self):
        base = CostModel()
        limited = base.with_memory(100.0)
        assert limited.memory_capacity == 100.0
        assert limited.receive_cost == base.receive_cost
        assert base.memory_capacity is None

    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.receive_cost > 0
        assert model.spill_penalty > 1


class TestMachine:
    def test_occupy_serialises_work(self):
        machine = Machine(machine_id=0, cost_model=CostModel())
        end1 = machine.occupy(0.0, 5.0)
        end2 = machine.occupy(1.0, 2.0)   # starts only after the first finishes
        assert end1 == 5.0
        assert end2 == 7.0
        assert machine.busy_time == 7.0

    def test_storage_accounting_and_peak(self):
        machine = Machine(machine_id=0, cost_model=CostModel())
        machine.add_stored(10.0)
        machine.add_stored(5.0)
        machine.remove_stored(8.0)
        assert machine.stored_size == pytest.approx(7.0)
        assert machine.peak_stored_size == pytest.approx(15.0)
        assert machine.received_size == pytest.approx(15.0)

    def test_remove_never_goes_negative(self):
        machine = Machine(machine_id=0, cost_model=CostModel())
        machine.add_stored(1.0)
        machine.remove_stored(100.0)
        assert machine.stored_size == 0.0

    def test_spill_factor_applies_over_capacity(self):
        machine = Machine(machine_id=0, cost_model=CostModel(memory_capacity=10.0))
        machine.add_stored(5.0)
        assert machine.storage_factor() == 1.0
        assert not machine.spilled
        machine.add_stored(20.0)
        assert machine.storage_factor() == machine.cost_model.spill_penalty
        assert machine.spilled

    def test_unbounded_memory_never_spills(self):
        machine = Machine(machine_id=0, cost_model=CostModel(memory_capacity=None))
        machine.add_stored(1e9)
        assert machine.storage_factor() == 1.0

    def test_reset_clock(self):
        machine = Machine(machine_id=0, cost_model=CostModel())
        machine.occupy(0.0, 3.0)
        machine.reset_clock()
        assert machine.busy_until == 0.0
        assert machine.busy_time == 0.0


class TestNetwork:
    def test_counts_volume_per_category(self):
        network = Network(cost_model=CostModel())
        network.transfer(0, 1, 10.0, TrafficCategory.ROUTING, now=0.0)
        network.transfer(0, 2, 5.0, TrafficCategory.MIGRATION, now=0.0)
        assert network.routing_volume() == 10.0
        assert network.migration_volume() == 5.0
        assert network.data_volume() == 15.0
        assert network.total_volume() == 15.0

    def test_local_delivery_not_counted(self):
        network = Network(cost_model=CostModel())
        network.transfer(3, 3, 10.0, TrafficCategory.ROUTING, now=0.0)
        assert network.total_volume() == 0.0

    def test_delivery_time_includes_latency_and_size(self):
        model = CostModel(network_latency=1.0, per_tuple_network_cost=0.1)
        network = Network(cost_model=model)
        delivery = network.transfer(0, 1, 10.0, TrafficCategory.ROUTING, now=5.0)
        assert delivery == pytest.approx(5.0 + 1.0 + 1.0)

    def test_links_are_fifo(self):
        """A later, smaller message must not overtake an earlier, larger one."""
        model = CostModel(network_latency=1.0, per_tuple_network_cost=1.0)
        network = Network(cost_model=model)
        first = network.transfer(0, 1, 100.0, TrafficCategory.ROUTING, now=0.0)
        second = network.transfer(0, 1, 0.0, TrafficCategory.CONTROL, now=0.5)
        assert second >= first

    def test_fifo_is_per_link(self):
        model = CostModel(network_latency=1.0, per_tuple_network_cost=1.0)
        network = Network(cost_model=model)
        network.transfer(0, 1, 100.0, TrafficCategory.ROUTING, now=0.0)
        other_link = network.transfer(0, 2, 0.0, TrafficCategory.CONTROL, now=0.5)
        assert other_link == pytest.approx(1.5)

    def test_snapshot_keys(self):
        network = Network(cost_model=CostModel())
        snapshot = network.snapshot()
        assert set(snapshot) == {category.value for category in TrafficCategory}
