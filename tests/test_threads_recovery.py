"""Fault injection and recovery on the threaded executor.

PR'd together with the overlapping dispatch frontier: the recovery plane
(crash scheduling, durable checkpoints, journal replay) previously rejected
``executor="threads"`` outright.  This suite pins the ported combination:

* **Config acceptance** — ``executor="threads"`` composes with
  ``fault_schedule`` and ``checkpoint_interval`` (the old hard rejection is
  gone).
* **Crashed-run conformance** — a threaded run under a crash schedule is
  bit-identical (``events=True``) to the simulated oracle under the same
  schedule: fault events are full barriers on the dispatch frontier, so the
  crash, the outage window and the replayed recovery land on the exact same
  virtual-time instants.
* **Twin recovery** — the recovered threaded run produces the *same join
  output multiset* as its fault-free twin over the same arrival order.
* **Fault-free journaling** — checkpointing from worker threads (the store
  hands every thread its own SQLite connection) charges zero virtual time:
  the run stays bit-identical to both the un-checkpointed reference and the
  checkpointed oracle.

Twin runs share ONE materialised arrival order (``StreamTuple`` ids come
from a global counter, so independently materialised streams get different
ids).
"""

from __future__ import annotations

import random

import pytest

from repro.api import RunConfig, crash, crash_after_events
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import make_query
from repro.engine.stream import interleave_streams, make_tuples
from repro.testing import assert_run_equivalent

MACHINES = 8
SEED = 5

#: Per-plane overrides; the event anchors are the smoke-verified midpoints
#: used by tests/test_fault_recovery.py for the same workload.
PLANES = {
    "per_tuple": {"batch_size": 1, "_crash_events": 500},
    "adaptive": {"batching": "adaptive", "_crash_events": 200},
}


@pytest.fixture(scope="module")
def scenario(small_dataset):
    query = make_query("EQ5", small_dataset)
    rng = random.Random(SEED)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return query, interleave_streams(left, right, rng)


def _run(query, order, **overrides):
    overrides.pop("_crash_events", None)
    config = RunConfig(machines=MACHINES, seed=SEED, warmup_tuples=16, **overrides)
    operator = AdaptiveJoinOperator(query, config=config)
    return operator.run(arrival_order=order, collect_outputs=True)


def _output_multiset(result):
    return sorted(result.outputs)


class TestConfigAcceptance:
    def test_threads_with_fault_schedule_accepted(self):
        config = RunConfig(
            machines=4, executor="threads", fault_schedule=[crash(1, 10.0)]
        )
        assert config.fault_schedule[0].machine == 1

    def test_threads_with_checkpoint_interval_accepted(self):
        config = RunConfig(machines=4, executor="threads", checkpoint_interval=8)
        assert config.checkpoint_interval == 8


class TestThreadedCrashConformance:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_crashed_run_matches_oracle_and_recovers_twin(self, scenario, plane):
        query, order = scenario
        overrides = dict(PLANES[plane])
        overrides.pop("_crash_events")
        twin = _run(query, order, **overrides)
        schedule = [crash(3, twin.execution_time * 0.4)]
        oracle = _run(
            query, order, fault_schedule=schedule, checkpoint_interval=8, **overrides
        )
        threaded = _run(
            query, order, fault_schedule=schedule, checkpoint_interval=8,
            executor="threads", **overrides,
        )
        assert_run_equivalent(
            oracle, threaded, events=True, label=f"threads-crash/{plane}"
        )
        assert threaded.faults_injected == 1
        assert threaded.recovery_time > 0.0
        assert _output_multiset(threaded) == _output_multiset(twin), (
            f"{plane}: recovered outputs differ from the fault-free twin"
        )

    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_event_anchored_crash_matches_oracle(self, scenario, plane):
        """crash_after_events pins events_processed at every pop, which
        degrades the frontier to lock-step while the trigger is armed — the
        counts (and everything after recovery) must still be exact."""
        query, order = scenario
        overrides = dict(PLANES[plane])
        events = overrides.pop("_crash_events")
        twin = _run(query, order, **overrides)
        schedule = [crash_after_events(3, events)]
        oracle = _run(
            query, order, fault_schedule=schedule, checkpoint_interval=8, **overrides
        )
        threaded = _run(
            query, order, fault_schedule=schedule, checkpoint_interval=8,
            executor="threads", **overrides,
        )
        assert_run_equivalent(
            oracle, threaded, events=True, label=f"threads-event-crash/{plane}"
        )
        assert _output_multiset(threaded) == _output_multiset(twin)

    def test_crash_without_checkpointing_matches_oracle(self, scenario):
        """No durable journal: recovery replays from the retained stream —
        still bit-identical across backends."""
        query, order = scenario
        twin = _run(query, order, batch_size=1)
        schedule = [crash_after_events(3, 500)]
        oracle = _run(query, order, batch_size=1, fault_schedule=schedule)
        threaded = _run(
            query, order, batch_size=1, fault_schedule=schedule, executor="threads"
        )
        assert_run_equivalent(oracle, threaded, events=True, label="no-checkpoint")
        assert _output_multiset(threaded) == _output_multiset(twin)


class TestThreadedJournaling:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_fault_free_checkpointing_is_bit_identical(self, scenario, plane):
        """Worker-thread journaling charges zero virtual time: the threaded
        checkpointed run matches both the plain reference and the
        checkpointed oracle, down to heap events."""
        query, order = scenario
        overrides = dict(PLANES[plane])
        overrides.pop("_crash_events")
        reference = _run(query, order, **overrides)
        oracle = _run(query, order, checkpoint_interval=8, **overrides)
        threaded = _run(
            query, order, checkpoint_interval=8, executor="threads", **overrides
        )
        assert_run_equivalent(
            reference, threaded, events=True, label=f"journal-free/{plane}"
        )
        assert_run_equivalent(
            oracle, threaded, events=True, label=f"journal-oracle/{plane}"
        )
        assert threaded.checkpoint_overhead > 0.0
        assert threaded.checkpoint_overhead == oracle.checkpoint_overhead

    def test_overlap_survives_checkpointing(self, scenario):
        """The journaled per-tuple cell still dispatches concurrently — the
        checkpoint store no longer serialises the frontier."""
        query, order = scenario
        threaded = _run(
            query, order, batch_size=1, checkpoint_interval=8, executor="threads"
        )
        assert threaded.peak_inflight > 1
        assert threaded.overlap_dispatches >= 1
