"""Differential conformance suite for the adaptive data plane.

The adaptive plane (``batching="adaptive"``) keeps the wire per-tuple and
coalesces backlog at the receiving machines, so its contract is much stronger
than the fixed plane's: every run must be **bit-identical** to the
``batch_size=1`` reference plane — join output, migration sequence with its
decision/completion times, final mapping, per-machine busy chains, execution
time, average latency, charged probe work and network volumes — while
processing the workload in fewer, larger simulator events.

The suite sweeps the scenario matrix: predicate kind (equi / band /
composite-residual) x arrival pacing (bursty / paced / fluctuating) x
with/without migrations (Dynamic vs StaticMid) x ingestion mode
(materialised / streaming in arbitrary chunkings), asserting exact
equivalence on every cell via :func:`repro.testing.assert_run_equivalent`, plus
Hypothesis property tests for the :class:`AdaptiveBatchController` invariants
and the drain-eligibility (epoch-edge flush) rules.

Streaming note: chunked ingestion runs the simulation to quiescence between
pushes, which legitimately yields different virtual times than the
materialised schedule (this predates the adaptive plane).  The conformance
contract is therefore *plane vs plane at identical ingestion*: streaming
adaptive must be bit-identical to streaming per-tuple under the same
chunking, for every chunking.
"""

from __future__ import annotations

import random

import pytest
from repro.testing import assert_run_equivalent
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JoinSession, RunConfig
from repro.core.baselines import StaticMidOperator
from repro.core.epochs import JoinerPhase
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import JoinQuery, make_query
from repro.engine.batching import AdaptiveBatchController
from repro.engine.columns import HAS_NUMPY
from repro.engine.simulator import Simulator
from repro.engine.stream import (
    StreamTuple,
    fluctuating_order,
    interleave_streams,
    make_tuples,
)
from repro.engine.task import DataEnvelope, Message, MessageKind, Task
from repro.joins.predicates import BandPredicate, CompositePredicate, EquiPredicate

MACHINES = 8
SEED = 5

OPERATORS = {
    "migrating": AdaptiveJoinOperator,   # warmup 16 -> migrates mid-stream
    "static": StaticMidOperator,         # never migrates
}

PACINGS = {
    "bursty": 0.0,    # all arrivals at t=0: full backlog, deep drains
    "paced": 0.15,    # spaced arrivals: the controller collapses to 1
}


def _composite_query(rng: random.Random) -> JoinQuery:
    """A composite predicate (equi hash path + residual re-validation)."""
    # Imbalanced cardinalities so the Dynamic operator migrates away from the
    # square start mapping mid-stream.
    left = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(40)]
    right = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(360)]
    return JoinQuery(
        name="COMPOSITE",
        left_relation="R",
        right_relation="S",
        left_records=left,
        right_records=right,
        predicate=CompositePredicate(
            EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
        ),
        description="equi join with a parity residual (conformance scenarios)",
    )


@pytest.fixture(scope="module")
def queries(small_dataset):
    return {
        "equi": make_query("EQ5", small_dataset),
        "band": make_query("BNCI", small_dataset),
        "composite": _composite_query(random.Random(17)),
    }


def _arrival_order(query, seed=SEED, fluctuating=False):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    if fluctuating:
        return fluctuating_order(left, right, fluctuation_factor=3.0, warmup=40)
    return interleave_streams(left, right, rng)


def _config(**overrides):
    return RunConfig(machines=MACHINES, seed=SEED, warmup_tuples=16, **overrides)


def _run(operator_class, query, order, **overrides):
    operator = operator_class(query, config=_config(**overrides))
    return operator.run(arrival_order=order, collect_outputs=True)


def _run_pair(operator_class, query, order, **shared):
    reference = _run(operator_class, query, order, batch_size=1, **shared)
    adaptive = _run(operator_class, query, order, batching="adaptive", **shared)
    return reference, adaptive


# ---------------------------------------------------------------------------
# Materialised scenario matrix
# ---------------------------------------------------------------------------


class TestMaterialisedConformance:
    @pytest.mark.parametrize("predicate", ["equi", "band", "composite"])
    @pytest.mark.parametrize("pacing", sorted(PACINGS))
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_bit_identical_to_per_tuple_plane(self, queries, predicate, pacing, operator):
        query = queries[predicate]
        order = _arrival_order(query)
        reference, adaptive = _run_pair(
            OPERATORS[operator], query, order, inter_arrival=PACINGS[pacing]
        )
        label = f"{predicate}/{pacing}/{operator}"
        assert_run_equivalent(reference, adaptive, label=label)
        if operator == "migrating":
            assert reference.migrations >= 1, f"{label}: scenario must migrate"
        # The plane must actually coalesce, not pass trivially by never
        # draining: under backlog the event count collapses and multi-tuple
        # runs dominate the histogram.
        assert adaptive.batch_histogram, label
        if pacing == "bursty":
            assert adaptive.events_processed * 2 < reference.events_processed, label
            assert max(adaptive.batch_histogram) > 8, label

    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_fluctuating_arrivals(self, queries, operator):
        """The §5.4 fluctuation pattern (cardinality-ratio swings) conforms."""
        query = queries["equi"]
        order = _arrival_order(query, fluctuating=True)
        reference, adaptive = _run_pair(OPERATORS[operator], query, order)
        assert_run_equivalent(reference, adaptive, label=f"fluct/{operator}")

    def test_spilling_run_conforms(self, queries):
        """A finite memory budget (spill factors in every charge) conforms."""
        query = queries["equi"]
        order = _arrival_order(query)
        reference, adaptive = _run_pair(
            AdaptiveJoinOperator, query, order, memory_capacity=30.0
        )
        assert reference.spilled, "scenario must exercise the spill path"
        assert_run_equivalent(reference, adaptive, label="spill")

    def test_scalar_engine_adaptive_plane(self, queries):
        """The differential oracle engine rides the adaptive plane unchanged."""
        query = queries["equi"]
        order = _arrival_order(query)
        reference, adaptive = _run_pair(
            AdaptiveJoinOperator, query, order, probe_engine="scalar"
        )
        assert_run_equivalent(reference, adaptive, label="scalar-engine")

    def test_batch_max_caps_runs(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        reference = _run(StaticMidOperator, query, order, batch_size=1)
        adaptive = _run(StaticMidOperator, query, order, batching="adaptive", batch_max=7)
        assert_run_equivalent(reference, adaptive, label="batch_max=7")
        assert max(adaptive.batch_histogram) <= 7

    def test_result_records_plane_metadata(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        reference, adaptive = _run_pair(StaticMidOperator, query, order)
        assert reference.batching == "fixed"
        assert reference.batch_histogram is None
        assert adaptive.batching == "adaptive"
        assert adaptive.batch_size == 1  # per-tuple wire
        drained = sum(size * count for size, count in adaptive.batch_histogram.items())
        assert drained > 0


# ---------------------------------------------------------------------------
# Streaming ingestion: plane vs plane under identical chunkings
# ---------------------------------------------------------------------------


def _stream_run(query, order, chunks, operator="Dynamic", **overrides):
    session = JoinSession(query, operator=operator, config=_config(**overrides))
    session.open_stream(collect_outputs=True)
    position = 0
    for chunk in chunks:
        if position >= len(order):
            break
        items = [item.with_epoch(item.epoch) for item in order[position:position + chunk]]
        session.push(items=items)
        position += chunk
    if position < len(order):
        session.push(items=[item.with_epoch(item.epoch) for item in order[position:]])
    return session.finish()


def _chunking(seed, total):
    rng = random.Random(seed)
    chunks = []
    remaining = total
    while remaining > 0:
        chunk = rng.randrange(1, 120)
        chunks.append(chunk)
        remaining -= chunk
    return chunks


class TestStreamingConformance:
    @pytest.mark.parametrize("predicate", ["equi", "band"])
    @pytest.mark.parametrize("chunk_seed", [3, 99])
    def test_streaming_plane_bit_identical(self, queries, predicate, chunk_seed):
        query = queries[predicate]
        order = _arrival_order(query)
        chunks = _chunking(chunk_seed, len(order))
        reference = _stream_run(query, order, chunks, batch_size=1)
        adaptive = _stream_run(query, order, chunks, batching="adaptive")
        label = f"stream/{predicate}/chunking-{chunk_seed}"
        assert_run_equivalent(reference, adaptive, label=label)
        assert adaptive.events_processed < reference.events_processed, label

    def test_streaming_matches_materialised_results(self, queries):
        """Chunked adaptive ingestion produces the same final join as the
        materialised adaptive run (virtual times differ by design: chunked
        ingestion drains the cluster between pushes)."""
        query = queries["equi"]
        order = _arrival_order(query)
        materialised = _run(AdaptiveJoinOperator, query, order, batching="adaptive")
        streamed = _stream_run(query, order, _chunking(7, len(order)), batching="adaptive")
        assert sorted(streamed.outputs) == sorted(materialised.outputs)
        assert streamed.final_mapping == materialised.final_mapping
        assert streamed.migrations == materialised.migrations

    @given(chunks=st.lists(st.integers(1, 60), min_size=1, max_size=30))
    @settings(max_examples=12, deadline=None)
    def test_any_chunking_reproduces_per_tuple_plane(self, small_conformance, chunks):
        """Cross-push property: for ANY chunking, streaming adaptive is
        bit-identical to streaming per-tuple under the same chunking."""
        query, order = small_conformance
        reference = _stream_run(query, order, chunks, batch_size=1)
        adaptive = _stream_run(query, order, chunks, batching="adaptive")
        assert_run_equivalent(reference, adaptive, label=f"chunks={chunks[:6]}...")


@pytest.fixture(scope="module")
def small_conformance(small_dataset):
    """A reduced workload for the Hypothesis chunking property (speed)."""
    query = make_query("EQ5", small_dataset)
    order = _arrival_order(query)[:160]
    return query, order


# ---------------------------------------------------------------------------
# BatchController invariants (Hypothesis)
# ---------------------------------------------------------------------------


class TestAdaptiveControllerProperties:
    @given(
        backlogs=st.lists(st.integers(0, 500), min_size=1, max_size=200),
        batch_max=st.integers(1, 128),
    )
    @settings(max_examples=100, deadline=None)
    def test_sizes_always_within_bounds(self, backlogs, batch_max):
        controller = AdaptiveBatchController(batch_max=batch_max)
        for backlog in backlogs:
            size = controller.next_batch_size(backlog)
            assert 1 <= size <= batch_max
            assert size <= max(backlog, 1)

    @given(backlogs=st.lists(st.integers(0, 500), min_size=0, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_paced_collapse_to_per_tuple(self, backlogs):
        """Whatever happened before, an (almost) empty inbox means size 1."""
        controller = AdaptiveBatchController()
        for backlog in backlogs:
            controller.next_batch_size(backlog)
        assert controller.next_batch_size(0) == 1
        assert controller.next_batch_size(1) == 1

    @given(
        batch_max=st.integers(1, 128),
        rounds=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_growth_under_sustained_backlog(self, batch_max, rounds):
        controller = AdaptiveBatchController(batch_max=batch_max)
        sizes = [controller.next_batch_size(10 * batch_max) for _ in range(rounds)]
        assert sizes == sorted(sizes), "sizes must be non-decreasing under backlog"
        if rounds >= 8:  # the doubling ramp reaches any cap <= 128 in 8 rounds
            assert sizes[-1] == batch_max

    def test_invalid_batch_max_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBatchController(batch_max=0)


# ---------------------------------------------------------------------------
# Drain-eligibility rules: force-flush at the epoch edge
# ---------------------------------------------------------------------------


def _data_message(epoch: int) -> Message:
    item = StreamTuple(relation="R", record={"k": 1, "v": 2}, epoch=epoch)
    return Message(kind=MessageKind.DATA, sender="r", payload=item, epoch=epoch)


class TestDrainEligibility:
    @given(epochs=st.lists(st.integers(0, 3), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_normal_phase_flushes_at_epoch_edge(self, normal_joiner, epochs):
        """In the NORMAL phase only current-epoch DATA is drainable, so a run
        can never span an epoch edge: any tuple tagged with a different epoch
        yields a different (non-)key and force-flushes the run."""
        joiner = normal_joiner
        current = joiner.state.current_epoch
        keys = [joiner.drain_key(_data_message(epoch)) for epoch in epochs]
        for epoch, key in zip(epochs, keys):
            if epoch == current:
                assert key == current
            else:
                assert key is None

    def test_protocol_kinds_never_drain(self, normal_joiner):
        """Kinds whose handling sends messages or gates protocol transitions
        stay per-tuple; µ (MIGRATION) relocations are pure probe-and-store
        and drain under their dedicated key (never mixing with DATA runs)."""
        for kind in (
            MessageKind.EPOCH_SIGNAL,
            MessageKind.MIGRATION_END,
            MessageKind.BATCH,
        ):
            message = Message(kind=kind, sender="x", payload=_data_message(0).payload)
            assert normal_joiner.drain_key(message) is None
        mu = Message(
            kind=MessageKind.MIGRATION, sender="x", payload=_data_message(0).payload
        )
        mu_key = normal_joiner.drain_key(mu)
        assert mu_key is not None
        assert mu_key != normal_joiner.drain_key(_data_message(0))

    def test_mid_migration_only_pending_epoch_drains(self, normal_joiner):
        """Mid-migration, Δ (old-epoch, relocating) tuples stay per-tuple;
        Δ' (pending-epoch, pure probe-and-store) tuples drain."""
        joiner = normal_joiner
        state = joiner.state
        state.phase = JoinerPhase.MIGRATING
        state.pending_epoch = 1
        try:
            assert joiner.drain_key(_data_message(0)) is None  # Δ: relocates
            assert joiner.drain_key(_data_message(1)) == 1     # Δ': pure
            state.phase = JoinerPhase.DRAINED
            assert joiner.drain_key(_data_message(1)) == 1
        finally:
            state.phase = JoinerPhase.NORMAL
            state.pending_epoch = None

    def test_adaptive_reshufflers_drain_under_horizon(self, queries):
        from repro.core.operator import AdaptiveJoinOperator as Dynamic

        operator = Dynamic(queries["equi"], config=_config(batching="adaptive"))
        simulator, topology = operator.build_execution()
        reshuffler = simulator.tasks[topology.reshuffler_names[1]]
        source = Message(
            kind=MessageKind.SOURCE, sender="__source__", payload=_data_message(0).payload
        )
        assert reshuffler.drain_key(source) is not None
        assert reshuffler.drain_key(_data_message(0)) is None  # non-SOURCE


@pytest.fixture(scope="module")
def normal_joiner(queries):
    from repro.core.operator import GridJoinOperator

    operator = GridJoinOperator(queries["equi"], config=_config(batching="adaptive"))
    simulator, topology = operator.build_execution()
    return simulator.tasks[topology.joiner_names[0]]


# ---------------------------------------------------------------------------
# Wire-level delivery merging: exactness of the merged wire
# ---------------------------------------------------------------------------


class TestDeliveryMergingConformance:
    """The merged wire must be invisible in every observable quantity."""

    @pytest.mark.parametrize("predicate", ["equi", "band", "composite"])
    def test_merged_equals_unmerged_adaptive(self, queries, predicate):
        query = queries[predicate]
        order = _arrival_order(query)
        merged = _run(AdaptiveJoinOperator, query, order, batching="adaptive")
        unmerged = _run(
            AdaptiveJoinOperator, query, order,
            batching="adaptive", delivery_merging=False,
        )
        assert_run_equivalent(merged, unmerged, label=f"merge/{predicate}")
        # The merged wire must actually collapse heap traffic, not pass
        # trivially: under the bursty backlog the channel runs absorb the
        # per-tuple deliveries (the tentpole's >=2x gate runs at benchmark
        # scale in bench_fig7a_throughput.py).
        assert merged.heap_events * 2 < unmerged.heap_events, (
            merged.heap_events, unmerged.heap_events,
        )
        assert merged.delivery_merging and not unmerged.delivery_merging
        assert merged.wire_histogram and unmerged.wire_histogram is None
        assert max(merged.wire_histogram) > 8  # multi-member runs exist

    def test_merging_on_the_per_tuple_fixed_plane(self, queries):
        """The merge layer is plane-agnostic: enabled on the per-tuple fixed
        plane (no drain controllers at all) it must still be bit-identical."""
        query = queries["equi"]
        order = _arrival_order(query)
        reference = _run(StaticMidOperator, query, order, batch_size=1)
        merged = _run(
            StaticMidOperator, query, order, batch_size=1, delivery_merging=True
        )
        assert_run_equivalent(reference, merged, label="fixed-plane merge")
        assert merged.heap_events < reference.heap_events

    def test_delivery_merging_validation(self):
        with pytest.raises(ValueError, match="delivery_merging"):
            RunConfig(delivery_merging="yes")
        assert RunConfig(delivery_merging=True).delivery_merging is True
        assert RunConfig(batching="adaptive").delivery_merging is None

    def test_default_resolution_per_plane(self, queries):
        query = queries["equi"]
        adaptive = AdaptiveJoinOperator(query, config=_config(batching="adaptive"))
        fixed = AdaptiveJoinOperator(query, config=_config(batch_size=1))
        assert adaptive.delivery_merging is True  # draining planes default on
        assert fixed.delivery_merging is False  # reference wire stays unmerged

    @given(chunks=st.lists(st.integers(1, 60), min_size=1, max_size=30))
    @settings(max_examples=10, deadline=None)
    def test_any_chunking_merged_equals_unmerged(self, small_conformance, chunks):
        """Streaming property: for ANY chunking, the merged and unmerged
        adaptive planes produce identical run fingerprints."""
        query, order = small_conformance
        merged = _stream_run(query, order, chunks, batching="adaptive")
        unmerged = _stream_run(
            query, order, chunks, batching="adaptive", delivery_merging=False
        )
        assert_run_equivalent(merged, unmerged, label=f"merge-chunks={chunks[:6]}...")


# ---------------------------------------------------------------------------
# Wire-level delivery merging: control/data interleavings on a toy topology
# ---------------------------------------------------------------------------


class _RecorderTask(Task):
    """Logs every handled message with its virtual start time."""

    def __init__(self, name: str, machine_id: int, log: list, cost: float) -> None:
        super().__init__(name, machine_id)
        self.log = log
        self.cost = cost

    def handle(self, message: Message, ctx) -> None:
        ctx.charge(self.cost)
        payload = message.payload
        tag = payload.record["i"] if isinstance(payload, StreamTuple) else payload
        self.log.append((self.name, message.kind.value, tag, ctx.now))


class _BursterTask(Task):
    """Sends one DATA burst to a recorder when kicked (one handler, one link)."""

    def __init__(self, name: str, machine_id: int, burst: list) -> None:
        super().__init__(name, machine_id)
        self.burst = burst  # (destination, tag, per-send charge) triples

    def handle(self, message: Message, ctx) -> None:
        for destination, tag, charge in self.burst:
            ctx.charge(charge)
            ctx.send(
                destination,
                DataEnvelope(
                    MessageKind.DATA,
                    self.name,
                    StreamTuple(relation="R", record={"i": tag}),
                    0,
                    1.0,
                ),
            )


def _toy_trace(merging: bool, bursts, control_times):
    """Drive competing DATA bursts + priority control messages; return the
    consumer-side handling trace and final machine busy states."""
    simulator = Simulator(num_machines=4, seed=0)
    if merging:
        simulator.enable_delivery_merging()
    log: list = []
    consumer = _RecorderTask("consumer", machine_id=1, log=log, cost=0.3)
    simulator.register(consumer)
    for index, (kick_time, burst) in enumerate(bursts):
        burster = _BursterTask(
            f"burster-{index}",
            machine_id=(0, 2, 3)[index % 3],
            burst=[("consumer", tag, charge) for tag, charge in burst],
        )
        simulator.register(burster)
        simulator.schedule(
            kick_time,
            burster.name,
            Message(kind=MessageKind.FLUSH, sender="__test__"),
        )
    for position, control_time in enumerate(control_times):
        simulator.schedule(
            control_time,
            "consumer",
            Message(
                kind=MessageKind.MAPPING_CHANGE,
                sender="__test__",
                payload=f"ctl-{position}",
            ),
        )
    simulator.run()
    busy = [(m.busy_until, m.busy_time) for m in simulator.machines]
    return log, busy, simulator.heap_events


class TestDeliveryMergingInterleavings:
    @given(
        bursts=st.lists(
            st.tuples(
                st.integers(0, 12),
                st.lists(
                    st.tuples(st.integers(0, 99), st.sampled_from([0.05, 0.2, 0.7])),
                    min_size=0,
                    max_size=15,
                ),
            ),
            min_size=1,
            max_size=4,
        ),
        control_times=st.lists(st.integers(0, 40), min_size=0, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_control_never_crosses_the_merge_horizon(self, bursts, control_times):
        """Arbitrary interleavings of competing DATA bursts and priority
        control messages: the merged wire must hand every message to the
        receiver at exactly the unmerged virtual time and in exactly the
        unmerged order — a control message can never observe (or be observed
        by) a data member on the wrong side of a run boundary."""
        bursts = [(kick / 4.0, burst) for kick, burst in bursts]
        control_times = [t / 4.0 for t in control_times]
        merged_log, merged_busy, merged_events = _toy_trace(
            True, bursts, control_times
        )
        plain_log, plain_busy, plain_events = _toy_trace(False, bursts, control_times)
        assert merged_log == plain_log
        assert merged_busy == plain_busy
        assert merged_events <= plain_events

    def test_off_cluster_senders_bypass_merging(self):
        """Sends from off-cluster tasks (machine_id -1) skip the link-FIFO
        clamp, so they must not join open channel runs (whose key arrays must
        stay sorted) — and must in particular never collide with the feed
        channel bucket.  The trace must still be exactly per-tuple."""
        def run(merging):
            simulator = Simulator(num_machines=2, seed=0)
            if merging:
                simulator.enable_delivery_merging()
            log: list = []
            consumer = _RecorderTask("consumer", machine_id=0, log=log, cost=0.2)
            off_cluster = _BursterTask(
                "feeder",
                machine_id=-1,
                burst=[("consumer", tag, 0.0) for tag in range(6)],
            )
            simulator.register(consumer)
            simulator.register(off_cluster)
            simulator.schedule(
                0.0, "feeder", Message(kind=MessageKind.FLUSH, sender="__test__")
            )
            simulator.run()
            return log
        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Columnar probe engine: differential conformance vs the scalar oracle
# ---------------------------------------------------------------------------


needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="the columnar probe engine requires NumPy"
)

#: Data-plane configurations the scalar-vs-columnar cells run on.  Both sides
#: of a cell share the plane, so the comparison may pin the event plumbing too.
ENGINE_PLANES = {
    "fixed": {"batch_size": 4},
    "adaptive": {"batching": "adaptive"},
}


@needs_numpy
class TestColumnarEngineConformance:
    """The columnar engine against the scalar differential oracle.

    These are *same-plane* pairs (unlike the plane-vs-plane suites above), so
    ``events=True`` additionally pins the global heap-event count and the
    wire-merge histogram: the columnar kernels must change how member work is
    computed, never what flows over the wire.
    """

    @pytest.mark.parametrize("predicate", ["equi", "band", "composite"])
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    @pytest.mark.parametrize("plane", sorted(ENGINE_PLANES))
    def test_materialised_matches_scalar_oracle(
        self, queries, predicate, operator, plane
    ):
        query = queries[predicate]
        order = _arrival_order(query)
        shared = ENGINE_PLANES[plane]
        scalar = _run(
            OPERATORS[operator], query, order, probe_engine="scalar", **shared
        )
        columnar = _run(
            OPERATORS[operator], query, order, probe_engine="columnar", **shared
        )
        label = f"columnar/{predicate}/{operator}/{plane}"
        assert_run_equivalent(scalar, columnar, events=True, label=label)
        if operator == "migrating":
            assert scalar.migrations >= 1, f"{label}: scenario must migrate"

    @pytest.mark.parametrize("predicate", ["equi", "band", "composite"])
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_streaming_matches_scalar_oracle(self, queries, predicate, operator):
        query = queries[predicate]
        order = _arrival_order(query)
        chunks = _chunking(23, len(order))
        kind = {"migrating": "Dynamic", "static": "StaticMid"}[operator]
        scalar = _stream_run(
            query, order, chunks,
            operator=kind, batching="adaptive", probe_engine="scalar",
        )
        columnar = _stream_run(
            query, order, chunks,
            operator=kind, batching="adaptive", probe_engine="columnar",
        )
        label = f"columnar-stream/{predicate}/{operator}"
        assert_run_equivalent(scalar, columnar, events=True, label=label)


_HYP_PREDICATES = {
    "equi": lambda: EquiPredicate("k", "k"),
    "band": lambda: BandPredicate("k", "k", width=2.0),
    "band_exact": lambda: BandPredicate("k", "k", width=2.0, range_complete=True),
    "composite": lambda: CompositePredicate(
        EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
    ),
}

_INT_RECORDS = st.fixed_dictionaries(
    {"k": st.integers(0, 9), "v": st.integers(0, 29)}
)
# Quarter-steps are exactly representable, so band windows stay exact while
# the keys exercise the columnar float-key (vectorised band-mask) path.
_FLOAT_RECORDS = st.fixed_dictionaries(
    {"k": st.integers(0, 40).map(lambda n: n / 4.0), "v": st.integers(0, 29)}
)


@st.composite
def _random_workloads(draw):
    kind = draw(st.sampled_from(sorted(_HYP_PREDICATES)))
    records = _FLOAT_RECORDS if kind == "band" else _INT_RECORDS
    left = draw(st.lists(records, min_size=4, max_size=36))
    right = draw(st.lists(records, min_size=4, max_size=48))
    seed = draw(st.integers(0, 1023))
    return kind, left, right, seed


@needs_numpy
class TestColumnarDifferentialProperties:
    @given(workload=_random_workloads())
    @settings(max_examples=16, deadline=None)
    def test_random_workloads_match_scalar_oracle(self, workload):
        """For ANY workload (predicate kind, records, arrival interleaving)
        the columnar engine reproduces the scalar oracle bit-for-bit, event
        plumbing included."""
        kind, left, right, seed = workload
        query = JoinQuery(
            name=f"HYP-{kind}",
            left_relation="R",
            right_relation="S",
            left_records=left,
            right_records=right,
            predicate=_HYP_PREDICATES[kind](),
            description="randomised columnar-vs-scalar differential workload",
        )
        order = _arrival_order(query, seed=seed)
        scalar = _run(
            AdaptiveJoinOperator, query, order,
            batching="adaptive", probe_engine="scalar",
        )
        columnar = _run(
            AdaptiveJoinOperator, query, order,
            batching="adaptive", probe_engine="columnar",
        )
        assert_run_equivalent(
            scalar, columnar, events=True, label=f"hyp/{kind}/seed={seed}"
        )
