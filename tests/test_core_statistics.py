"""Tests for the decentralised statistics of Algorithm 1."""

import random

import pytest

from repro.core.statistics import CardinalityEstimator


class TestScaledEstimates:
    def test_scaled_counts(self):
        estimator = CardinalityEstimator(scale=16)
        for _ in range(10):
            estimator.observe(is_left=True)
        for _ in range(40):
            estimator.observe(is_left=False, size=2.0)
        assert estimator.r_estimate == 160
        assert estimator.s_estimate == 640
        assert estimator.s_weighted_estimate == pytest.approx(1280.0)
        assert estimator.ratio() == pytest.approx(0.25)

    def test_exact_mode(self):
        estimator = CardinalityEstimator(scale=1)
        estimator.observe(True)
        assert estimator.r_estimate == 1

    def test_ratio_edge_cases(self):
        estimator = CardinalityEstimator(scale=4)
        assert estimator.ratio() == 1.0
        estimator.observe(True)
        assert estimator.ratio() == float("inf")

    def test_reset(self):
        estimator = CardinalityEstimator(scale=4)
        estimator.observe(True)
        estimator.reset()
        assert estimator.r_estimate == 0


class TestSamplingAccuracy:
    def test_scaled_estimate_is_close_for_random_routing(self):
        """A reshuffler seeing a 1/J random sample, scaled by J, estimates the
        global cardinality to within a few percent for large streams."""
        rng = random.Random(0)
        machines = 16
        estimators = [CardinalityEstimator(scale=machines) for _ in range(machines)]
        total_r, total_s = 8000, 24000
        for _ in range(total_r):
            estimators[rng.randrange(machines)].observe(True)
        for _ in range(total_s):
            estimators[rng.randrange(machines)].observe(False)
        controller = estimators[0]
        assert controller.r_estimate == pytest.approx(total_r, rel=0.15)
        assert controller.s_estimate == pytest.approx(total_s, rel=0.15)

    def test_confidence_interval_brackets_truth_usually(self):
        rng = random.Random(1)
        machines = 8
        hits = 0
        trials = 30
        for trial in range(trials):
            estimator = CardinalityEstimator(scale=machines)
            total = 4000
            for _ in range(total):
                if rng.randrange(machines) == 0:
                    estimator.observe(True)
            interval = estimator.confidence(is_left=True)
            if interval.low <= total <= interval.high:
                hits += 1
        assert hits >= trials * 0.8

    def test_confidence_degenerate_cases(self):
        estimator = CardinalityEstimator(scale=1)
        estimator.observe(True)
        interval = estimator.confidence(True)
        assert interval.half_width == 0.0
        empty = CardinalityEstimator(scale=8).confidence(False)
        assert empty.estimate == 0.0


class TestMerge:
    def test_merge_for_failover(self):
        a = CardinalityEstimator(scale=4)
        b = CardinalityEstimator(scale=4)
        a.observe(True)
        b.observe(False, size=3.0)
        merged = a.merge(b)
        assert merged.local_r == 1
        assert merged.local_s == 1
        assert merged.weighted_s == 3.0
