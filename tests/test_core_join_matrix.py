"""Tests for the join-matrix geometry (§3) and the Okcan square-scheme baseline."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join_matrix import (
    GRID_SEMI_PERIMETER_BOUND,
    JoinMatrix,
    OkcanSquareScheme,
    mapping_spectrum,
)
from repro.core.mapping import Mapping
from repro.joins.predicates import NotEqualPredicate


class TestJoinMatrix:
    def test_area_and_region_area(self):
        matrix = JoinMatrix(r_count=100, s_count=200)
        assert matrix.area() == 20_000
        assert matrix.region_area(Mapping(4, 4)) == pytest.approx(1250)
        assert matrix.area_lower_bound(16) == pytest.approx(1250)

    def test_semi_perimeter_is_the_ilf(self):
        matrix = JoinMatrix(r_count=100, s_count=800, r_size=2.0)
        mapping = Mapping(2, 8)
        assert matrix.region_semi_perimeter(mapping) == pytest.approx(
            mapping.ilf(100, 800, 2.0, 1.0)
        )

    def test_optimal_grid_mapping_and_ratio(self):
        matrix = JoinMatrix(r_count=64, s_count=4096)
        best = matrix.optimal_grid_mapping(64)
        assert best == Mapping(1, 64)
        assert matrix.grid_competitive_ratio(64) <= GRID_SEMI_PERIMETER_BOUND + 1e-9

    @given(st.integers(1, 3000), st.integers(1, 3000),
           st.sampled_from([4, 16, 64]))
    @settings(max_examples=150)
    def test_theorem_3_2_semi_perimeter_bound(self, r_count, s_count, machines):
        matrix = JoinMatrix(r_count=r_count, s_count=s_count)
        ratio = r_count / s_count
        observed = matrix.grid_competitive_ratio(machines)
        if 1.0 / machines <= ratio <= machines:
            assert observed <= GRID_SEMI_PERIMETER_BOUND + 1e-9
        else:
            # Beyond a factor-J ratio the (1, J) mapping is exactly optimal in
            # the discrete sense but the continuous bound may be loose.
            assert observed >= 1.0

    def test_area_is_exactly_optimal_for_grid(self):
        """Theorem 3.2: grid-layout region area attains the lower bound."""
        matrix = JoinMatrix(r_count=123, s_count=456)
        for machines in (4, 16, 64):
            best = matrix.optimal_grid_mapping(machines)
            assert matrix.region_area(best) == pytest.approx(matrix.area_lower_bound(machines))

    def test_count_true_cells_matches_predicate(self):
        matrix = JoinMatrix(r_count=3, s_count=3)
        records = [{"v": i} for i in range(3)]
        count = matrix.count_true_cells(records, records, NotEqualPredicate("v", "v"))
        assert count == 6  # all off-diagonal cells


class TestOkcanScheme:
    def test_respects_theorem_3_1_bounds(self):
        matrix = JoinMatrix(r_count=1000, s_count=1000)
        scheme = OkcanSquareScheme(matrix=matrix, machines=16)
        assert scheme.regions_used() <= 16
        assert scheme.satisfies_theorem_3_1()

    def test_grid_never_worse_than_okcan_semi_perimeter(self):
        """Theorem 3.2 vs 3.1: the grid scheme's semi-perimeter is at most the
        square scheme's (up to rounding) for skewed matrix shapes."""
        matrix = JoinMatrix(r_count=100, s_count=6400)
        grid = matrix.region_semi_perimeter(matrix.optimal_grid_mapping(64))
        okcan = OkcanSquareScheme(matrix=matrix, machines=64).region_semi_perimeter()
        assert grid <= okcan * 1.05

    @given(st.integers(10, 5000), st.integers(10, 5000))
    @settings(max_examples=80)
    def test_okcan_uses_at_most_j_regions(self, r_count, s_count):
        matrix = JoinMatrix(r_count=r_count, s_count=s_count)
        scheme = OkcanSquareScheme(matrix=matrix, machines=32)
        assert scheme.regions_used() <= 32


class TestMappingSpectrum:
    def test_sorted_by_ilf(self):
        matrix = JoinMatrix(r_count=100, s_count=6400)
        spectrum = mapping_spectrum(matrix, 64)
        ilfs = [ilf for _, ilf in spectrum]
        assert ilfs == sorted(ilfs)
        assert spectrum[0][0] == Mapping(1, 64)
        assert len(spectrum) == 7
