"""The public session API: RunConfig, registries, JoinSession, migration shim.

Pins the contracts of ``repro.api``:

* ``RunConfig`` round-trips exactly through ``to_dict``/``from_dict`` (and
  JSON), validates eagerly (unknown fields, bad values, unregistered
  probe engines/layouts) and is immutable.
* Override precedence is ``session default < config < call-site``.
* Registries reject duplicate registrations and list choices on unknown
  names; registered third-party components flow through the session.
* The legacy loose-kwargs constructor shim is gone: constructing an operator
  from loose keyword arguments without a config raises ``TypeError`` pointing
  at ``RunConfig``; ``make_operator`` routes through the validated config
  path and stays bit-identical to the session path.
* The streaming ``push()`` ingestion yields identical final join results to
  the materialised path on EQ5 at ``batch_size ∈ {1, 64}``.
"""

import random

import pytest

from repro.api import (
    FaultSpec,
    JoinSession,
    RunConfig,
    crash,
    crash_after_events,
    build_operator,
    operators,
    predicate_kinds,
    probe_engines,
    register_operator,
    register_probe_engine,
)
from repro.core.baselines import make_operator
from repro.core.operator import AdaptiveJoinOperator, GridJoinOperator
from repro.data.queries import make_query
from repro.engine.stream import interleave_streams, make_tuples


def _arrival_order(query, seed):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return interleave_streams(left, right, rng)


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------

class TestRunConfig:
    def test_dict_round_trip(self):
        config = RunConfig(
            machines=8,
            seed=3,
            epsilon=0.5,
            warmup_tuples=32.0,
            layout="row_major",
            blocking=True,
            memory_capacity=123.0,
            sample_every=50,
            batch_size=16,
            probe_engine="scalar",
            arrival_pattern="s_first",
            inter_arrival=0.25,
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = RunConfig(machines=4, batch_size=None, memory_capacity=None)
        assert RunConfig.from_json(config.to_json()) == config

    def test_defaults_round_trip(self):
        config = RunConfig()
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_with_overrides_returns_new_validated_config(self):
        config = RunConfig(machines=8)
        updated = config.with_overrides(seed=9, batch_size=2)
        assert (updated.machines, updated.seed, updated.batch_size) == (8, 9, 2)
        assert config.seed == 0  # original untouched (frozen)
        assert config.with_overrides() is config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig field.*warmup_tuple\\b"):
            RunConfig().with_overrides(warmup_tuple=3)
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig.from_dict({"machine_count": 8})

    @pytest.mark.parametrize(
        "overrides",
        [
            {"machines": 0},
            {"machines": "sixteen"},
            {"epsilon": 0.0},
            {"batch_size": 0},
            {"sample_every": 0},
            {"inter_arrival": -1.0},
            {"memory_capacity": -5.0},
            {"arrival_pattern": "sorted"},
            {"blocking": "yes"},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            RunConfig(**overrides)

    def test_unregistered_probe_engine_lists_choices(self):
        with pytest.raises(ValueError, match="scalar.*vectorized|vectorized.*scalar"):
            RunConfig(probe_engine="simd")

    def test_unknown_layout_lists_choices(self):
        with pytest.raises(ValueError, match="dyadic"):
            RunConfig(layout="column_major")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunConfig().machines = 4


class TestBatchingKnobs:
    """Error paths and serialisation of the batching-plane configuration."""

    def test_unknown_batching_lists_registered_choices(self):
        with pytest.raises(ValueError, match="adaptive.*fixed|fixed.*adaptive"):
            RunConfig(batching="turbo")

    def test_batch_max_rejected_on_fixed_plane(self):
        with pytest.raises(ValueError, match="batch_max.*adaptive|adaptive.*batch_max"):
            RunConfig(batching="fixed", batch_max=32)
        with pytest.raises(ValueError):
            RunConfig(batch_max=32)  # batching defaults to "fixed"

    def test_batch_size_rejected_on_adaptive_plane(self):
        with pytest.raises(ValueError, match="batch_size.*fixed plane"):
            RunConfig(batching="adaptive", batch_size=64)

    def test_blocking_rejected_on_adaptive_plane(self):
        with pytest.raises(ValueError, match="non-blocking"):
            RunConfig(batching="adaptive", blocking=True)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"batching": 7},
            {"batching": "adaptive", "batch_max": 0},
            {"batching": "adaptive", "batch_max": -3},
            {"batch_max": 1.5, "batching": "adaptive"},
        ],
    )
    def test_invalid_batching_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            RunConfig(**overrides)

    def test_adaptive_knobs_json_round_trip(self):
        config = RunConfig(machines=8, batching="adaptive", batch_max=32)
        assert RunConfig.from_json(config.to_json()) == config
        as_dict = config.to_dict()
        assert as_dict["batching"] == "adaptive"
        assert as_dict["batch_max"] == 32
        assert RunConfig.from_dict(as_dict) == config

    def test_adaptive_eagerly_validated_at_operator_construction(self, eq5_query):
        from repro.core.operator import GridJoinOperator

        with pytest.raises(ValueError, match="registered choices"):
            GridJoinOperator(eq5_query, config=RunConfig(), batching="turbo")

    def test_adaptive_flows_through_session(self, eq5_query):
        session = JoinSession(
            eq5_query, config=RunConfig(machines=8, seed=3, batching="adaptive")
        )
        result = session.run()
        assert result.batching == "adaptive"
        assert result.batch_histogram
        assert result.output_count > 0


class TestRecoveryKnobs:
    """Error paths and serialisation of the fault-tolerance configuration."""

    def test_fault_schedule_json_round_trip(self):
        config = RunConfig(
            machines=8,
            fault_schedule=[
                crash(3, 12.5),
                crash_after_events(1, 400, restart_after=2.0),
            ],
            checkpoint_interval=50,
            ack_timeout=2.5,
            max_retries=3,
        )
        assert RunConfig.from_json(config.to_json()) == config
        as_dict = config.to_dict()
        assert as_dict["checkpoint_interval"] == 50
        assert as_dict["fault_schedule"][0]["machine"] == 3
        assert RunConfig.from_dict(as_dict) == config

    def test_schedule_normalised_to_fault_specs(self):
        config = RunConfig(
            machines=8, fault_schedule=[{"machine": 2, "after_events": 100}]
        )
        assert isinstance(config.fault_schedule, tuple)
        assert all(isinstance(f, FaultSpec) for f in config.fault_schedule)

    def test_fault_machine_out_of_range_lists_choices(self):
        with pytest.raises(ValueError, match="choices: 0..7"):
            RunConfig(machines=8, fault_schedule=[crash(8, 1.0)])

    def test_faults_rejected_on_blocking_protocol(self):
        with pytest.raises(ValueError, match="non-blocking"):
            RunConfig(machines=8, blocking=True, fault_schedule=[crash(0, 1.0)])

    @pytest.mark.parametrize(
        "overrides",
        [
            {"fault_schedule": [{"machine": -1, "at_time": 1.0}]},
            {"fault_schedule": [{"machine": 0}]},  # no anchor
            {"fault_schedule": [{"machine": 0, "at_time": 1.0, "after_events": 5}]},
            {"fault_schedule": [{"machine": 0, "at_time": -1.0}]},
            {"fault_schedule": [{"machine": 0, "after_events": 0}]},
            {"fault_schedule": [{"machine": 0, "at_time": 1.0, "restart_after": 0}]},
            {"fault_schedule": 7},
            {"checkpoint_interval": 0},
            {"checkpoint_interval": -5},
            {"checkpoint_interval": 2.5},
            {"ack_timeout": 0.0},
            {"ack_timeout": -1.0},
            {"max_retries": -1},
            {"max_retries": 1.5},
        ],
    )
    def test_invalid_recovery_values_rejected(self, overrides):
        with pytest.raises((ValueError, TypeError)):
            RunConfig(machines=8, **overrides)

    def test_checkpointing_without_faults_is_valid(self):
        config = RunConfig(machines=8, checkpoint_interval=25)
        assert config.fault_schedule == ()
        assert RunConfig.from_dict(config.to_dict()) == config


class TestExecutorKnobs:
    """Eager validation and serialisation of the executor configuration."""

    def test_executor_json_round_trip(self):
        config = RunConfig(machines=8, executor="threads", num_workers=3)
        assert RunConfig.from_json(config.to_json()) == config
        as_dict = config.to_dict()
        assert as_dict["executor"] == "threads"
        assert as_dict["num_workers"] == 3
        assert RunConfig.from_dict(as_dict) == config

    def test_default_executor_round_trips(self):
        config = RunConfig(machines=8)
        assert config.executor == "simulated"
        assert config.num_workers is None
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_unknown_executor_lists_registered_choices(self):
        with pytest.raises(ValueError, match="simulated, threads"):
            RunConfig(machines=8, executor="gpu")

    def test_num_workers_rejected_on_simulated_backend(self):
        with pytest.raises(ValueError, match="parallel-executor knob"):
            RunConfig(machines=8, num_workers=4)

    def test_faults_and_checkpointing_accepted_on_threaded_backend(self):
        """Recovery is ported to the threaded frontier (the old eager
        rejections are gone; conformance lives in
        tests/test_threads_recovery.py)."""
        config = RunConfig(
            machines=8, executor="threads",
            fault_schedule=[crash(0, 1.0)], checkpoint_interval=25,
        )
        assert config.fault_schedule[0].machine == 0
        assert config.checkpoint_interval == 25

    @pytest.mark.parametrize(
        "overrides",
        [
            {"executor": 7},
            {"executor": None},
            {"executor": "threads", "num_workers": 0},
            {"executor": "threads", "num_workers": -2},
            {"executor": "threads", "num_workers": 2.5},
        ],
    )
    def test_invalid_executor_values_rejected(self, overrides):
        with pytest.raises((ValueError, TypeError)):
            RunConfig(machines=8, **overrides)

    def test_threaded_executor_flows_through_session(self, eq5_query):
        result = JoinSession(
            eq5_query, config=RunConfig(machines=4, seed=3, executor="threads")
        ).run()
        assert result.executor == "threads"
        assert len(result.worker_events) == 4


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

class TestRegistries:
    def test_builtins_registered(self):
        assert set(operators.names()) >= {"Dynamic", "Grid", "SHJ", "StaticMid", "StaticOpt"}
        assert set(probe_engines.names()) >= {"scalar", "vectorized"}
        assert set(predicate_kinds.names()) >= {"band", "equi", "theta"}

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_operator("Dynamic", AdaptiveJoinOperator)
        with pytest.raises(ValueError, match="already registered"):
            register_probe_engine("vectorized", object())

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown operator 'Turbo'.*Dynamic"):
            operators.get("Turbo")
        with pytest.raises(ValueError, match="unknown probe engine"):
            probe_engines.get("gpu")
        with pytest.raises(ValueError, match="unknown predicate kind"):
            predicate_kinds.get("similarity")

    def test_registered_operator_flows_through_session(self, eq5_query):
        class QuietDynamic(AdaptiveJoinOperator):
            operator_name = "QuietDynamic"

        register_operator("QuietDynamic", QuietDynamic)
        try:
            result = JoinSession(eq5_query, machines=8).run(operator="QuietDynamic")
            assert result.operator == "QuietDynamic"
        finally:
            operators.unregister("QuietDynamic")

    def test_unknown_operator_kind_through_session(self, eq5_query):
        with pytest.raises(ValueError, match="unknown operator"):
            JoinSession(eq5_query, machines=8).run(operator="Turbo")


# ---------------------------------------------------------------------------
# Eager validation at operator construction (was: deep inside LocalJoiner)
# ---------------------------------------------------------------------------

class TestEagerValidation:
    def test_invalid_probe_engine_fails_at_construction(self, eq5_query):
        with pytest.raises(ValueError, match="probe engine.*simd|simd.*probe engine"):
            GridJoinOperator(eq5_query, config=RunConfig(machines=8, probe_engine="simd"))

    def test_invalid_layout_fails_at_construction(self, eq5_query):
        with pytest.raises(ValueError, match="dyadic"):
            GridJoinOperator(eq5_query, config=RunConfig(machines=8), layout="diagonal")

    def test_unknown_knob_fails_at_construction(self, eq5_query):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            GridJoinOperator(eq5_query, config=RunConfig(machines=8), warmup_tuple=3)

    def test_non_power_of_two_machines_rejected(self, eq5_query):
        with pytest.raises(ValueError, match="power-of-two"):
            GridJoinOperator(eq5_query, config=RunConfig(machines=6))


# ---------------------------------------------------------------------------
# Override precedence: session default < config < call-site
# ---------------------------------------------------------------------------

class TestOverridePrecedence:
    def test_constructor_kwargs_beat_config(self, eq5_query):
        session = JoinSession(eq5_query, config=RunConfig(machines=8, seed=1), seed=2)
        assert session.config.machines == 8
        assert session.config.seed == 2

    def test_call_site_beats_session_default(self, eq5_query):
        session = JoinSession(eq5_query, config=RunConfig(machines=8, seed=1))
        operator = session.operator(seed=7, batch_size=4)
        assert operator.seed == 7
        assert operator.batch_size == 4
        assert operator.machines == 8  # untouched session default

    def test_per_run_config_replaces_session_default(self, eq5_query):
        session = JoinSession(eq5_query, config=RunConfig(machines=8, seed=1))
        operator = session.operator(config=RunConfig(machines=4, seed=3), seed=9)
        # per-run config replaces the session's; call-site seed wins over both
        assert operator.machines == 4
        assert operator.seed == 9

    def test_operator_specific_kwargs_pass_through(self, eq5_query):
        session = JoinSession(eq5_query, machines=8)
        operator = session.operator(kind="Grid", adaptive=True)
        assert operator.adaptive is True


# ---------------------------------------------------------------------------
# Legacy loose-kwargs constructor shim: removed after its deprecation release
# ---------------------------------------------------------------------------

class TestLegacyRemoval:
    def _compare(self, legacy, modern):
        assert legacy.outputs is not None and modern.outputs is not None
        assert sorted(legacy.outputs) == sorted(modern.outputs)
        assert legacy.output_count == modern.output_count
        assert legacy.execution_time == modern.execution_time
        assert legacy.probe_work == modern.probe_work
        assert legacy.migrations == modern.migrations
        assert legacy.final_mapping == modern.final_mapping
        assert legacy.max_ilf == modern.max_ilf
        assert legacy.total_network_volume == modern.total_network_volume

    def test_loose_kwargs_construction_raises(self, eq5_query):
        with pytest.raises(TypeError, match="RunConfig"):
            AdaptiveJoinOperator(eq5_query, 8, seed=5, warmup_tuples=16)
        with pytest.raises(TypeError, match="RunConfig"):
            GridJoinOperator(eq5_query, seed=5)
        with pytest.raises(TypeError, match="RunConfig"):
            GridJoinOperator(eq5_query, 8)

    def test_config_with_overrides_still_supported(self, eq5_query):
        # Call-site overrides on top of an explicit config remain the
        # documented API (call-site beats config) — only the config-less
        # loose path was removed.
        operator = AdaptiveJoinOperator(
            eq5_query, config=RunConfig(machines=8, seed=1), seed=7, batch_size=4
        )
        assert operator.seed == 7
        assert operator.batch_size == 4

    def test_make_operator_routes_through_config_path(self, eq5_query):
        # make_operator survives as a registry front door over RunConfig; it
        # must stay bit-identical to the session path and validate eagerly.
        order = _arrival_order(eq5_query, seed=5)
        legacy = make_operator("StaticMid", eq5_query, 8, seed=5).run(
            arrival_order=order, collect_outputs=True
        )
        modern = JoinSession(eq5_query, machines=8, seed=5).run(
            operator="StaticMid", arrival_order=order, collect_outputs=True
        )
        self._compare(legacy, modern)
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            make_operator("StaticMid", eq5_query, 8, warmup_tuple=3)

    def test_config_path_does_not_warn(self, eq5_query, recwarn):
        build_operator("StaticMid", eq5_query, RunConfig(machines=8, seed=5))
        deprecations = [w for w in recwarn.list if w.category is DeprecationWarning]
        assert not deprecations


# ---------------------------------------------------------------------------
# Streaming ingestion: push()/finish() vs the materialised path
# ---------------------------------------------------------------------------

class TestStreamingIngestion:
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_eq5_streaming_matches_materialised(self, small_dataset, batch_size):
        """Acceptance pin: identical final join results on EQ5 at batch 1/64.

        The streaming batcher keeps partial per-destination buffers alive
        across pushes, so batch boundaries match the materialised schedule
        exactly; chunked simulation drains do shift virtual-time micro-timing
        (the same class of effect as batching itself), so wall/virtual times
        are not compared — results, migrations and the final mapping are.
        """
        query = make_query("EQ5", small_dataset)
        order = _arrival_order(query, seed=5)
        config = RunConfig(machines=8, seed=5, warmup_tuples=16.0, batch_size=batch_size)

        materialised = JoinSession(query, config=config).run(
            arrival_order=order, collect_outputs=True
        )

        session = JoinSession(query, config=config)
        session.open_stream(collect_outputs=True)
        chunk = 97  # deliberately not a divisor of the batch size
        for start in range(0, len(order), chunk):
            session.push(items=order[start:start + chunk])
        streamed = session.finish()

        assert streamed.outputs is not None and materialised.outputs is not None
        assert sorted(streamed.outputs) == sorted(materialised.outputs)
        assert streamed.output_count == materialised.output_count
        assert streamed.migrations == materialised.migrations
        assert streamed.final_mapping == materialised.final_mapping

    def test_push_raw_records_and_snapshots(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        session = JoinSession(query, machines=8, seed=3, batch_size=4)
        half_left = len(query.left_records) // 2
        half_right = len(query.right_records) // 2

        snap1 = session.push(
            left=query.left_records[:half_left], right=query.right_records[:half_right]
        )
        assert snap1.tuples_pushed == half_left + half_right
        snap2 = session.push(
            left=query.left_records[half_left:], right=query.right_records[half_right:]
        )
        assert snap2.tuples_pushed == len(query.left_records) + len(query.right_records)
        assert snap2.output_count >= snap1.output_count
        assert session.snapshot().tuples_pushed == snap2.tuples_pushed

        result = session.finish()
        assert result.output_count >= snap2.output_count
        assert result.output_count > 0
        # A full materialised run of the same workload produces the same
        # number of joins regardless of ingestion mode and interleaving.
        reference = JoinSession(query, machines=8, seed=3).run()
        assert result.output_count == reference.output_count

    def test_streaming_lifecycle_errors(self, eq5_query):
        session = JoinSession(eq5_query, machines=8, seed=3, batch_size=4)
        with pytest.raises(RuntimeError, match="no streaming run"):
            session.finish()
        with pytest.raises(RuntimeError, match="no streaming run"):
            session.snapshot()
        session.push(right=eq5_query.right_records[:5])
        with pytest.raises(RuntimeError, match="already open"):
            session.open_stream()
        session.finish()
        # a stray push after finish() must not silently start a fresh run
        with pytest.raises(RuntimeError, match="open_stream"):
            session.push(right=eq5_query.right_records[:5])
        # the session is reusable, but only through an explicit open_stream()
        session.open_stream()
        snap = session.push(right=eq5_query.right_records[:5])
        assert snap.tuples_pushed == 5
        session.finish()

    def test_push_rejects_wrong_relation(self, eq5_query, bnci_query):
        session = JoinSession(eq5_query, machines=8, batch_size=4)
        order = _arrival_order(eq5_query, seed=5)
        right_tuple = next(t for t in order if t.relation == eq5_query.right_relation)
        with pytest.raises(ValueError, match="relation"):
            session.push(left=[right_tuple])
        # items= must reject foreign relations too (they would otherwise be
        # silently routed as right-side input).
        foreign = _arrival_order(bnci_query, seed=5)[0]
        with pytest.raises(ValueError, match="relation"):
            session.push(items=[foreign])
        session.finish()

    def test_session_requires_a_query(self):
        with pytest.raises(ValueError, match="no query"):
            JoinSession(machines=8).run()
