"""Tests for the metrics collector."""

import pytest

from repro.engine.metrics import MetricsCollector
from repro.engine.stream import StreamTuple


def _pair(arrival_left, arrival_right):
    left = StreamTuple(relation="R", record={}, arrival_time=arrival_left)
    right = StreamTuple(relation="S", record={}, arrival_time=arrival_right)
    return left, right


class TestOutputsAndLatency:
    def test_latency_uses_newer_input(self):
        metrics = MetricsCollector()
        left, right = _pair(1.0, 5.0)
        metrics.record_output(left, right, output_time=7.0, machine_id=0)
        assert metrics.output_count == 1
        assert metrics.latencies[0].latency == pytest.approx(2.0)

    def test_latency_never_negative(self):
        metrics = MetricsCollector()
        left, right = _pair(10.0, 10.0)
        metrics.record_output(left, right, output_time=9.0, machine_id=0)
        assert metrics.latencies[0].latency == 0.0

    def test_outputs_collected_only_when_requested(self):
        silent = MetricsCollector(collect_outputs=False)
        verbose = MetricsCollector(collect_outputs=True)
        left, right = _pair(0.0, 0.0)
        silent.record_output(left, right, 1.0, 0)
        verbose.record_output(left, right, 1.0, 0)
        assert silent.outputs == []
        assert verbose.outputs == [(left.tuple_id, right.tuple_id)]

    def test_average_latency_empty(self):
        assert MetricsCollector().average_latency() == 0.0


class TestThroughputAndSeries:
    def test_throughput(self):
        metrics = MetricsCollector()
        for index in range(10):
            metrics.record_input_processed(float(index))
        metrics.finish_time = 5.0
        assert metrics.throughput() == pytest.approx(2.0)
        assert metrics.output_throughput() == 0.0

    def test_throughput_zero_before_finish(self):
        metrics = MetricsCollector()
        metrics.record_input_processed(0.0)
        assert metrics.throughput() == 0.0

    def test_series_recording(self):
        metrics = MetricsCollector()
        metrics.record_ilf(10.0, 100.0)
        metrics.record_competitive_ratio(10, 1.2)
        metrics.record_cardinality_ratio(10, 0.5)
        assert metrics.ilf_series == [(10.0, 100.0)]
        assert metrics.max_competitive_ratio() == pytest.approx(1.2)
        assert metrics.competitive_series == [(10, 0.5)]

    def test_max_ratio_defaults_to_one(self):
        assert MetricsCollector().max_competitive_ratio() == 1.0


class TestMigrationEvents:
    def test_start_and_complete(self):
        metrics = MetricsCollector()
        metrics.start_migration(1, 5.0, (4, 4), (2, 8))
        metrics.complete_migration(1, 9.0)
        assert metrics.migration_count() == 1
        event = metrics.migrations[0]
        assert event.completed_at == 9.0
        assert event.old_mapping == (4, 4)
        assert event.new_mapping == (2, 8)

    def test_complete_unknown_epoch_is_noop(self):
        metrics = MetricsCollector()
        metrics.start_migration(1, 5.0, (4, 4), (2, 8))
        metrics.complete_migration(99, 9.0)
        assert metrics.migrations[0].completed_at is None
