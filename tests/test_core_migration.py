"""Tests for interval arithmetic and the locality-aware migration planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import GridPlacement, Mapping, power_of_two_mappings
from repro.core.migration import (
    assignments_for,
    interval_difference,
    interval_intersection,
    interval_length,
    plan_migration,
    plan_naive_migration,
    point_in,
    subtract_many,
)


class TestIntervalArithmetic:
    def test_intersection(self):
        assert interval_intersection((0.0, 0.5), (0.25, 1.0)) == (0.25, 0.5)
        assert interval_intersection((0.0, 0.5), (0.5, 1.0)) is None

    def test_difference(self):
        assert interval_difference((0.0, 1.0), (0.25, 0.5)) == [(0.0, 0.25), (0.5, 1.0)]
        assert interval_difference((0.0, 1.0), (0.0, 1.0)) == []
        assert interval_difference((0.0, 0.5), (0.5, 1.0)) == [(0.0, 0.5)]

    def test_subtract_many_and_length(self):
        remaining = subtract_many((0.0, 1.0), [(0.0, 0.25), (0.5, 0.75)])
        assert remaining == [(0.25, 0.5), (0.75, 1.0)]
        assert interval_length(remaining) == pytest.approx(0.5)

    def test_point_in(self):
        assert point_in(0.0, (0.0, 0.5))
        assert not point_in(0.5, (0.0, 0.5))


def _coverage_is_exact(plan):
    """Every receiver's needed state is covered exactly once by keep + transfers."""
    for machine_id, new_assignment in plan.new_assignments.items():
        old_assignment = plan.old_assignments.get(machine_id)
        for side in ("R", "S"):
            needed = new_assignment.interval(side)
            pieces = []
            if old_assignment is not None:
                overlap = interval_intersection(old_assignment.interval(side), needed)
                if overlap:
                    pieces.append(overlap)
            pieces.extend(
                t.interval for t in plan.transfers if t.receiver == machine_id and t.side == side
            )
            total = interval_length(pieces)
            if abs(total - interval_length([needed])) > 1e-9:
                return False
            # no overlaps among pieces
            pieces.sort()
            for (a_low, a_high), (b_low, b_high) in zip(pieces, pieces[1:]):
                if b_low < a_high - 1e-12:
                    return False
    return True


class TestLocalityAwarePlan:
    def test_one_step_migration_matches_lemma_4_4(self):
        """(n, m) -> (n/2, 2m): S is a pure discard, R moves exactly |R|/n per
        machine, and the exchange happens between pairs sharing the old column."""
        old = GridPlacement(mapping=Mapping(8, 2))
        new = GridPlacement(mapping=Mapping(4, 4))
        plan = plan_migration(old, new)
        assert _coverage_is_exact(plan)
        assert all(t.side == "R" for t in plan.transfers)
        # every machine fetches exactly one interval of length 1/8 = |R|/n
        for machine_id in range(16):
            incoming = [t for t in plan.transfers if t.receiver == machine_id]
            assert len(incoming) == 1
            low, high = incoming[0].interval
            assert high - low == pytest.approx(1.0 / 8.0)
            # pairwise exchange: the sender also receives from this machine
            sender = incoming[0].sender
            assert any(t.receiver == sender and t.sender == machine_id for t in plan.transfers)
        # total migrated volume = |R| (each machine ships |R|/n, J machines, n rows)
        volume = plan.expected_transfer_volume(r_count=800, s_count=1600)
        assert volume == pytest.approx(16 * 800 / 8)

    def test_symmetric_direction_moves_s(self):
        old = GridPlacement(mapping=Mapping(4, 4))
        new = GridPlacement(mapping=Mapping(8, 2))
        plan = plan_migration(old, new)
        assert _coverage_is_exact(plan)
        assert all(t.side == "S" for t in plan.transfers)

    def test_multi_step_jump_is_still_exactly_covered(self):
        old = GridPlacement(mapping=Mapping(8, 8))
        new = GridPlacement(mapping=Mapping(1, 64))
        plan = plan_migration(old, new)
        assert _coverage_is_exact(plan)

    @given(st.sampled_from([4, 16, 64]), st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_mapping_transition_covers_state_exactly_once(self, machines, data):
        mappings = power_of_two_mappings(machines)
        old_mapping = data.draw(st.sampled_from(mappings))
        new_mapping = data.draw(st.sampled_from(mappings))
        plan = plan_migration(
            GridPlacement(mapping=old_mapping), GridPlacement(mapping=new_mapping)
        )
        assert _coverage_is_exact(plan)

    def test_no_op_migration_has_no_transfers(self):
        placement = GridPlacement(mapping=Mapping(4, 4))
        plan = plan_migration(placement, placement)
        assert plan.transfers == []

    def test_per_tuple_helpers(self):
        old = GridPlacement(mapping=Mapping(8, 2))
        new = GridPlacement(mapping=Mapping(4, 4))
        plan = plan_migration(old, new)
        machine = 0
        r_interval_new = new.r_interval(machine)
        inside = (r_interval_new[0] + r_interval_new[1]) / 2
        assert plan.keeps(machine, "R", inside)
        # a salt outside the new S interval must not be kept
        s_new = new.s_interval(machine)
        outside = (s_new[1] + 1.0) / 2 if s_new[1] < 1.0 else s_new[0] - 1e-6
        assert not plan.keeps(machine, "S", outside)
        senders = plan.senders_to(machine)
        assert senders and all(isinstance(s, int) for s in senders)
        for sender in senders:
            assert machine in plan.receivers_from(sender)

    def test_destinations_for_covers_transfer_salts(self):
        old = GridPlacement(mapping=Mapping(8, 2))
        new = GridPlacement(mapping=Mapping(4, 4))
        plan = plan_migration(old, new)
        transfer = plan.transfers[0]
        salt = (transfer.interval[0] + transfer.interval[1]) / 2
        assert transfer.receiver in plan.destinations_for(transfer.sender, "R", salt)


class TestNaivePlan:
    def test_naive_plan_is_correct_but_moves_more(self):
        old = GridPlacement(mapping=Mapping(8, 2))
        new = GridPlacement(mapping=Mapping(4, 4))
        smart = plan_migration(old, new)
        naive = plan_naive_migration(old, new)
        assert _coverage_is_exact(naive)
        smart_volume = smart.expected_transfer_volume(800, 1600)
        naive_volume = naive.expected_transfer_volume(800, 1600)
        assert naive_volume > smart_volume

    def test_assignments_for(self):
        placement = GridPlacement(mapping=Mapping(2, 2))
        assignments = assignments_for(placement)
        assert set(assignments) == {0, 1, 2, 3}
        assert assignments[0].interval("R") == placement.r_interval(0)
        with pytest.raises(ValueError):
            assignments[0].interval("X")
