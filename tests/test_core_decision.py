"""Tests for the migration-decision algorithm (Alg. 2) and its guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision import (
    MigrationController,
    amortized_cost_bound,
    competitive_ratio_bound,
    generalized_ratio_bound,
)
from repro.core.mapping import Mapping, optimal_mapping


class TestBounds:
    def test_published_constants(self):
        assert competitive_ratio_bound(1.0) == pytest.approx(1.25)
        assert amortized_cost_bound(1.0) == pytest.approx(8.0)
        # The paper's headline constant: 1.25 * 1.5 * 2 = 3.75.
        assert generalized_ratio_bound(1.0, machines=2) == pytest.approx(3.75)

    def test_epsilon_tradeoff_monotonicity(self):
        ratios = [competitive_ratio_bound(eps) for eps in (0.1, 0.5, 1.0)]
        costs = [amortized_cost_bound(eps) for eps in (0.1, 0.5, 1.0)]
        assert ratios == sorted(ratios)           # smaller ε -> better ratio
        assert costs == sorted(costs, reverse=True)  # smaller ε -> more traffic

    def test_invalid_epsilon(self):
        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                competitive_ratio_bound(bad)
            with pytest.raises(ValueError):
                amortized_cost_bound(bad)
        with pytest.raises(ValueError):
            MigrationController(machines=16, epsilon=0.0)


class TestThreshold:
    def test_no_decision_before_warmup(self):
        controller = MigrationController(machines=16, warmup_tuples=100)
        controller.observe(True, 16)
        assert controller.check(Mapping(4, 4)) is None

    def test_decision_when_delta_reaches_committed(self):
        controller = MigrationController(machines=16)
        # establish committed state
        controller.observe(True, 100)
        controller.observe(False, 100)
        first = controller.check(Mapping(4, 4))
        assert first is not None
        # deltas reset
        assert controller.delta_r == 0 and controller.delta_s == 0
        # less than |S| new tuples -> no new decision
        controller.observe(False, 50)
        assert controller.check(Mapping(4, 4)) is None
        # reaching |S| triggers it
        controller.observe(False, 50)
        assert controller.check(Mapping(4, 4)) is not None

    def test_epsilon_lowers_the_threshold(self):
        eager = MigrationController(machines=16, epsilon=0.25)
        eager.observe(True, 100)
        eager.observe(False, 100)
        eager.check(Mapping(4, 4))
        eager.observe(False, 30)     # 30 >= 0.25 * 100
        assert eager.check(Mapping(4, 4)) is not None

    def test_migrate_flag_only_when_mapping_changes(self):
        controller = MigrationController(machines=16)
        controller.observe(True, 500)
        controller.observe(False, 500)
        decision = controller.check(Mapping(4, 4))
        assert decision is not None and not decision.migrate   # (4,4) is optimal
        controller.observe(False, 4000)
        decision = controller.check(Mapping(4, 4))
        assert decision is not None and decision.migrate
        assert decision.new_mapping == optimal_mapping(16, 500, 4500)
        assert controller.migrations_triggered == 1


class TestCompetitiveRatioInvariant:
    @given(
        st.sampled_from([4, 16, 64]),
        st.lists(st.tuples(st.booleans(), st.integers(1, 400)), min_size=1, max_size=200),
    )
    @settings(max_examples=120, deadline=None)
    def test_ilf_stays_within_bound_when_checked_every_tuple(self, machines, arrivals):
        """Algorithm 2 invariant (Lemma 4.3): if the controller is consulted on
        every arrival, the ILF of the mapping it maintains never exceeds
        1.25 × ILF* (checked whenever both relations are non-empty and their
        ratio is within a factor J)."""
        controller = MigrationController(machines=machines, warmup_tuples=0)
        mapping = optimal_mapping(machines, 1, 1)
        bound = competitive_ratio_bound(1.0)
        for is_left, count in arrivals:
            for _ in range(count):
                controller.observe(is_left, 1)
                decision = controller.check(mapping)
                if decision is not None and decision.migrate:
                    mapping = decision.new_mapping
                total_r, total_s = controller.total_r, controller.total_s
                if total_r == 0 or total_s == 0:
                    continue
                ratio = total_r / total_s
                if not (1.0 / machines <= ratio <= machines):
                    continue
                assert controller.competitive_ratio(mapping) <= bound + 1e-9

    def test_ratio_helpers(self):
        controller = MigrationController(machines=16)
        controller.observe(True, 100)
        controller.observe(False, 100)
        assert controller.current_ilf(Mapping(4, 4)) == pytest.approx(50.0)
        assert controller.optimal_ilf() == pytest.approx(50.0)
        assert controller.competitive_ratio(Mapping(4, 4)) == pytest.approx(1.0)
        assert controller.competitive_ratio(Mapping(1, 16)) > 1.0


class TestLemma42:
    @given(st.integers(1, 2000), st.integers(1, 2000))
    @settings(max_examples=200)
    def test_optimum_moves_at_most_one_step_per_doubling(self, r_count, s_count):
        """Lemma 4.2: after receiving at most |R| new R tuples and |S| new S
        tuples, the optimal mapping is the old one or one dyadic step away."""
        machines = 64
        ratio = r_count / s_count
        if not (1.0 / machines <= ratio <= machines):
            return
        old = optimal_mapping(machines, r_count, s_count)
        for delta_r in (0, r_count):
            for delta_s in (0, s_count):
                new = optimal_mapping(machines, r_count + delta_r, s_count + delta_s)
                allowed = {old} | set(old.neighbours())
                assert new in allowed
