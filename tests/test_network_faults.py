"""The unreliable wire: deterministic network faults and reliable delivery.

Pins the unreliable-wire plane's contract:

* **Spec and config validation** — :class:`NetworkFaultSpec` shapes, the
  JSON round trip, machine-range checks, retry knobs, and the eager
  rejection of statically-provable overlapping crash windows.
* **Masking** — under any drop/duplicate/delay/partition schedule the run
  terminates and its join output multiset equals the fault-free twin's, on
  both data planes and both executors, including cells composed with
  machine crashes.
* **Clean-path bit-identity** — ``network_faults=()`` leaves every run
  bit-identical to a build without the wire plane (heap events included).
* **Determinism** — the same fault schedule under the same seed reproduces
  the run bit for bit, degradation counters included.
* **Counter reconciliation** — ``sent == delivered + dropped`` and
  ``applied == delivered - deduped``, with empty reorder buffers at the end.
* **Checkpoint integrity** — checksummed snapshot/delta rows: torn tails
  truncate, corrupt newest snapshots fall back to the previous intact one,
  and unmaskable corruption raises :class:`CheckpointCorruptionError`.

Twin runs share ONE materialised arrival order (``StreamTuple`` ids come
from a global counter), exactly like ``tests/test_fault_recovery.py``.
"""

from __future__ import annotations

import random
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    NetworkFaultSpec,
    RunConfig,
    UnreachableLinkError,
    crash,
    crash_after_events,
    delay,
    drop,
    duplicate,
    partition,
)
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import make_query
from repro.engine.faults import normalize_network_faults
from repro.engine.stream import ArrivalSchedule, interleave_streams, make_tuples
from repro.storage import CheckpointCorruptionError, CheckpointStore
from repro.testing import assert_run_equivalent

MACHINES = 8
SEED = 5


@pytest.fixture(scope="module")
def queries(small_dataset):
    return {
        "equi": make_query("EQ5", small_dataset),
        "band": make_query("BNCI", small_dataset),
    }


def _arrival_order(query, seed=SEED):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return interleave_streams(left, right, rng)


def _config(**overrides):
    return RunConfig(machines=MACHINES, seed=SEED, warmup_tuples=16, **overrides)


def _run(query, order, **overrides):
    operator = AdaptiveJoinOperator(query, config=_config(**overrides))
    return operator.run(arrival_order=order, collect_outputs=True)


PLANES = {
    "per_tuple": {"batch_size": 1},
    "adaptive": {"batching": "adaptive"},
}

#: A schedule exercising every per-send fault kind over several links.
MIXED_FAULTS = (
    drop((0, 1), 3),
    drop((2, 5), 1),
    drop((2, 5), 2),
    duplicate((1, 4), 2),
    duplicate((3, 0), 1),
    delay((3, 6), 4, by=2.5),
    delay((5, 2), 2, by=4.0),
)


def _assert_counters_reconcile(result, label=""):
    counters = result.wire_counters
    assert counters is not None, f"{label}: wire counters missing"
    assert counters["sent"] == counters["delivered"] + counters["dropped"], (
        f"{label}: {counters}"
    )
    assert counters["applied"] == counters["delivered"] - counters["deduped"], (
        f"{label}: {counters}"
    )


# ---------------------------------------------------------------------------
# NetworkFaultSpec validation
# ---------------------------------------------------------------------------

class TestNetworkFaultSpec:
    def test_helpers_round_trip(self):
        for spec in (
            drop((0, 1), 3),
            duplicate((2, 5), 1),
            delay((3, 6), 4, by=2.5),
            partition((0, 1), (4, 5), 5.0, 9.0),
        ):
            assert NetworkFaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        ("kwargs", "pattern"),
        [
            ({"kind": "jitter", "link": (0, 1), "nth": 1}, "kind must be one of"),
            ({"kind": "drop", "link": (0, 0), "nth": 1}, "endpoints must differ"),
            ({"kind": "drop", "link": (0, -1), "nth": 1}, "link"),
            ({"kind": "drop", "link": (0, 1, 2), "nth": 1}, "link"),
            ({"kind": "drop", "link": None, "nth": 1}, "link"),
            ({"kind": "drop", "link": (0, 1), "nth": 0}, "nth"),
            ({"kind": "drop", "link": (0, 1), "nth": True}, "nth"),
            ({"kind": "drop", "link": (0, 1), "nth": 1, "by": 2.0}, "only valid for delay"),
            ({"kind": "drop", "link": (0, 1), "nth": 1, "machines_a": (2,)}, "not machines_a"),
            ({"kind": "delay", "link": (0, 1), "nth": 1}, "by"),
            ({"kind": "delay", "link": (0, 1), "nth": 1, "by": 0.0}, "by"),
            ({"kind": "delay", "link": (0, 1), "nth": 1, "by": -1.0}, "by"),
            (
                {"kind": "partition", "machines_a": (), "machines_b": (1,),
                 "from_time": 0.0, "until_time": 1.0},
                "machines_a",
            ),
            (
                {"kind": "partition", "machines_a": (0, 1), "machines_b": (1, 2),
                 "from_time": 0.0, "until_time": 1.0},
                "disjoint",
            ),
            (
                {"kind": "partition", "machines_a": (0, 0), "machines_b": (1,),
                 "from_time": 0.0, "until_time": 1.0},
                "duplicate",
            ),
            (
                {"kind": "partition", "machines_a": (0,), "machines_b": (1,),
                 "from_time": -1.0, "until_time": 1.0},
                "from_time",
            ),
            (
                {"kind": "partition", "machines_a": (0,), "machines_b": (1,),
                 "from_time": 2.0, "until_time": 2.0},
                "non-empty",
            ),
            (
                {"kind": "partition", "machines_a": (0,), "machines_b": (1,),
                 "from_time": 0.0, "until_time": 1.0, "link": (0, 1)},
                "not link",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs, pattern):
        with pytest.raises(ValueError, match=pattern):
            NetworkFaultSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            NetworkFaultSpec.from_dict({"kind": "drop", "link": [0, 1], "nth": 1, "x": 2})

    def test_json_lists_are_coerced_to_tuples(self):
        spec = NetworkFaultSpec(kind="drop", link=[0, 1], nth=1)
        assert spec.link == (0, 1)
        spec = NetworkFaultSpec(
            kind="partition", machines_a=[0], machines_b=[1],
            from_time=0.0, until_time=1.0,
        )
        assert spec.machines_a == (0,) and spec.machines_b == (1,)

    def test_normalize_accepts_dicts_specs_and_none(self):
        faults = normalize_network_faults(
            [drop((0, 1), 1), {"kind": "duplicate", "link": [2, 3], "nth": 4}]
        )
        assert all(isinstance(spec, NetworkFaultSpec) for spec in faults)
        assert faults[1].nth == 4
        assert normalize_network_faults(None) == ()
        assert normalize_network_faults(drop((0, 1), 1)) == (drop((0, 1), 1),)
        with pytest.raises(ValueError, match="NetworkFaultSpec"):
            normalize_network_faults("drop")
        with pytest.raises(ValueError, match="NetworkFaultSpec"):
            normalize_network_faults([42])

    def test_unreachable_link_error_names_link_and_attempts(self):
        error = UnreachableLinkError((2, 6), 4)
        assert error.link == (2, 6)
        assert error.attempts == 4
        assert "2->6" in str(error) and "4 retransmit attempts" in str(error)


# ---------------------------------------------------------------------------
# RunConfig validation (knobs, ranges, eager overlap rejection)
# ---------------------------------------------------------------------------

class TestConfigValidation:
    def test_machine_range_checked_for_links_and_partitions(self):
        with pytest.raises(ValueError, match="out of range"):
            _config(network_faults=[drop((0, MACHINES), 1)])
        with pytest.raises(ValueError, match="out of range"):
            _config(
                network_faults=[partition((0,), (MACHINES + 3,), 0.0, 1.0)]
            )

    def test_retry_knobs_validated(self):
        with pytest.raises(ValueError, match="retry_base"):
            _config(retry_base=0.0)
        with pytest.raises(ValueError, match="retry_max_attempts"):
            _config(retry_max_attempts=0)

    def test_network_faults_require_non_blocking(self):
        with pytest.raises(ValueError, match="non-blocking"):
            _config(blocking=True, network_faults=[drop((0, 1), 1)])

    def test_json_round_trip(self):
        config = _config(
            network_faults=list(MIXED_FAULTS) + [partition((0, 1), (4, 5), 5.0, 9.0)],
            retry_base=0.25,
            retry_max_attempts=6,
        )
        assert RunConfig.from_json(config.to_json()) == config

    def test_overlapping_time_anchored_crashes_rejected_eagerly(self):
        with pytest.raises(ValueError, match="overlapping fault_schedule"):
            _config(
                fault_schedule=[crash(3, 10.0, restart_after=5.0), crash(3, 12.0)]
            )
        # The default restart instant is the ack timeout.
        with pytest.raises(ValueError, match="overlapping fault_schedule"):
            _config(ack_timeout=5.0, fault_schedule=[crash(3, 10.0), crash(3, 12.0)])

    def test_identical_event_anchors_rejected_eagerly(self):
        with pytest.raises(ValueError, match="same event anchor"):
            _config(
                fault_schedule=[crash_after_events(3, 500), crash_after_events(3, 500)]
            )

    def test_non_overlapping_schedules_accepted(self):
        _config(fault_schedule=[crash(3, 10.0, restart_after=2.0), crash(3, 13.0)])
        _config(fault_schedule=[crash(3, 10.0, restart_after=5.0), crash(4, 12.0)])
        # Distinct event anchors depend on the runtime timeline: still allowed
        # at construction (the simulator keeps its runtime overlap error).
        _config(
            fault_schedule=[
                crash_after_events(3, 500, restart_after=1e9),
                crash_after_events(3, 501),
            ]
        )


# ---------------------------------------------------------------------------
# Clean path: network_faults=() is bit-identical to the reference
# ---------------------------------------------------------------------------

class TestCleanPathBitIdentity:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_empty_schedule_leaves_run_untouched(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        reference = _run(query, order, **PLANES[plane])
        gated = _run(query, order, network_faults=(), **PLANES[plane])
        assert_run_equivalent(reference, gated, events=True, label=f"clean:{plane}")
        assert gated.wire_counters is None
        assert gated.retransmit_histogram is None
        assert gated.messages_dropped == 0


# ---------------------------------------------------------------------------
# Conformance matrix: fault kinds x planes (simulated executor)
# ---------------------------------------------------------------------------

class TestWireMasking:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    @pytest.mark.parametrize("kind", ["equi", "band"])
    def test_drop_schedule_masked(self, queries, kind, plane):
        query = queries[kind]
        order = _arrival_order(query)
        twin = _run(query, order, **PLANES[plane])
        faulty = _run(
            query,
            order,
            network_faults=[drop((0, 1), 1), drop((0, 1), 2), drop((4, 2), 3)],
            **PLANES[plane],
        )
        assert faulty.messages_dropped > 0, f"{kind}/{plane}: no drop fired"
        assert faulty.messages_retransmitted > 0
        assert sorted(faulty.outputs) == sorted(twin.outputs), f"{kind}/{plane}"
        assert faulty.output_count == twin.output_count
        _assert_counters_reconcile(faulty, f"drop:{kind}/{plane}")

    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_duplicate_schedule_masked(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, **PLANES[plane])
        faulty = _run(
            query,
            order,
            network_faults=[duplicate((1, 4), 1), duplicate((1, 4), 2)],
            **PLANES[plane],
        )
        assert faulty.messages_duplicated > 0, f"{plane}: no duplicate fired"
        assert faulty.wire_counters["deduped"] >= faulty.messages_duplicated
        assert sorted(faulty.outputs) == sorted(twin.outputs), plane
        _assert_counters_reconcile(faulty, f"duplicate:{plane}")

    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_delay_schedule_masked_and_reorders(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, **PLANES[plane])
        faulty = _run(
            query,
            order,
            network_faults=[delay((0, 1), 1, by=6.0), delay((2, 5), 2, by=8.0)],
            **PLANES[plane],
        )
        assert faulty.messages_reordered > 0, f"{plane}: delay never reordered"
        assert sorted(faulty.outputs) == sorted(twin.outputs), plane
        _assert_counters_reconcile(faulty, f"delay:{plane}")

    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_partition_window_masked(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, **PLANES[plane])
        window = (twin.execution_time * 0.2, twin.execution_time * 0.5)
        faulty = _run(
            query,
            order,
            network_faults=[
                partition((0, 1, 2, 3), (4, 5, 6, 7), window[0], window[1])
            ],
            **PLANES[plane],
        )
        assert faulty.messages_dropped > 0, f"{plane}: partition saw no traffic"
        assert faulty.messages_retransmitted > 0
        assert sorted(faulty.outputs) == sorted(twin.outputs), plane
        _assert_counters_reconcile(faulty, f"partition:{plane}")

    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_mixed_schedule_masked(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, **PLANES[plane])
        faulty = _run(query, order, network_faults=MIXED_FAULTS, **PLANES[plane])
        assert sorted(faulty.outputs) == sorted(twin.outputs), plane
        _assert_counters_reconcile(faulty, f"mixed:{plane}")

    def test_faulty_run_is_deterministic(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        kwargs = dict(network_faults=MIXED_FAULTS, batch_size=1)
        first = _run(query, order, **kwargs)
        second = _run(query, order, **kwargs)
        # events=True + network=True: heap events, wire histograms and every
        # degradation counter must reproduce bit for bit.
        assert_run_equivalent(first, second, events=True, label="faulty-twice")
        assert first.wire_counters == second.wire_counters
        assert first.retransmit_histogram == second.retransmit_histogram

    def test_retransmit_histogram_records_backoff_depth(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        faulty = _run(
            query, order, network_faults=[drop((0, 1), 1)], batch_size=1
        )
        assert faulty.retransmit_histogram == {1: 1}

    def test_reorder_buffers_drain_by_end_of_run(self, queries):
        # Manual plumbing mirror of operator.run, to inspect the wire state.
        query = queries["equi"]
        order = _arrival_order(query)
        config = _config(network_faults=MIXED_FAULTS, batch_size=1)
        operator = AdaptiveJoinOperator(query, config=config)
        rng = random.Random(config.seed)
        simulator, topology = operator.build_execution(
            collect_outputs=True, expected_inputs=len(order)
        )
        simulator.feed_schedule(
            ArrivalSchedule(items=list(order), inter_arrival=0.0),
            destination_picker=lambda _item: rng.choice(topology.reshuffler_names),
            batch_size=operator.batch_size,
        )
        simulator.run()
        wire = simulator._wire
        assert wire is not None
        assert all(not buffer for buffer in wire.reorder.values()), (
            "reorder buffers must be empty once the run drains"
        )
        result = operator.collect_result(simulator, topology, len(order))
        _assert_counters_reconcile(result, "manual")


# ---------------------------------------------------------------------------
# Threads executor cells
# ---------------------------------------------------------------------------

class TestThreadsExecutorCells:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_threads_faulty_run_matches_simulated(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        faults = MIXED_FAULTS + (
            partition((0, 1), (4, 5), 8.0, 11.0),
        )
        oracle = _run(query, order, network_faults=faults, **PLANES[plane])
        threaded = _run(
            query, order, network_faults=faults, executor="threads", **PLANES[plane]
        )
        # The wire plane rides the fault rank band (full barriers on the
        # dispatch frontier), so the threaded faulty run is bit-identical to
        # the simulated one — counters included.
        assert_run_equivalent(oracle, threaded, events=True, label=f"threads:{plane}")
        assert threaded.wire_counters == oracle.wire_counters

    def test_threads_faulty_run_matches_fault_free_twin(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, batch_size=1)
        faulty = _run(
            query, order, network_faults=MIXED_FAULTS, executor="threads",
            batch_size=1,
        )
        assert sorted(faulty.outputs) == sorted(twin.outputs)


# ---------------------------------------------------------------------------
# Composition with machine crashes (fault_schedule x network_faults)
# ---------------------------------------------------------------------------

class TestCrashComposition:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_crash_and_network_faults_recover_exactly(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, **PLANES[plane])
        composed = _run(
            query,
            order,
            checkpoint_interval=50,
            fault_schedule=[
                crash_after_events(3, max(1, twin.events_processed // 2))
            ],
            network_faults=MIXED_FAULTS,
            **PLANES[plane],
        )
        assert composed.faults_injected == 1, f"{plane}: crash never fired"
        assert composed.recovery_time > 0.0
        assert sorted(composed.outputs) == sorted(twin.outputs), plane
        assert composed.output_count == twin.output_count
        _assert_counters_reconcile(composed, f"crash-composed:{plane}")

    def test_crash_composition_on_threads_executor(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        composed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            executor="threads",
            fault_schedule=[
                crash_after_events(3, max(1, twin.events_processed // 2))
            ],
            network_faults=MIXED_FAULTS,
        )
        assert composed.faults_injected == 1
        assert sorted(composed.outputs) == sorted(twin.outputs)
        _assert_counters_reconcile(composed, "crash-composed:threads")

    def test_retransmitted_then_crashed_messages_apply_once(self, queries):
        # Drops targeted at the crashing machine's links: retransmits land
        # around the outage, so wire dedup + journal replay + outage
        # redelivery must compose to exactly-once application.
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        faults = tuple(
            drop((sender, 3), nth)
            for sender in (0, 1, 2, 4)
            for nth in (1, 2, 3)
        )
        composed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[
                crash_after_events(3, max(1, twin.events_processed // 2))
            ],
            network_faults=faults,
        )
        assert composed.faults_injected == 1
        assert sorted(composed.outputs) == sorted(twin.outputs)
        assert composed.output_count == twin.output_count
        _assert_counters_reconcile(composed, "retransmit-crash")


# ---------------------------------------------------------------------------
# Error path: retry exhaustion is a named error, never a hang
# ---------------------------------------------------------------------------

class TestUnreachableLink:
    def test_permanent_partition_raises_unreachable_link(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        with pytest.raises(UnreachableLinkError, match="retransmit attempts") as info:
            _run(
                query,
                order,
                batch_size=1,
                network_faults=[
                    partition((0, 1, 2, 3), (4, 5, 6, 7), 0.0, 1e12)
                ],
                retry_base=0.1,
                retry_max_attempts=3,
            )
        assert info.value.attempts == 3
        sender, receiver = info.value.link
        assert (sender < 4) != (receiver < 4)  # the dead link crosses the cut


# ---------------------------------------------------------------------------
# Checkpoint-store integrity (checksums, torn rows, snapshot fallback)
# ---------------------------------------------------------------------------

def _corrupt(path, table, task, seq):
    conn = sqlite3.connect(path)
    try:
        count = conn.execute(
            f"UPDATE {table} SET payload = X'DEADBEEF' WHERE task = ? AND seq = ?",
            (task, seq),
        ).rowcount
        conn.commit()
    finally:
        conn.close()
    assert count == 1, f"no {table} row for ({task}, {seq})"


class TestCheckpointIntegrity:
    def test_torn_delta_tail_is_truncated(self):
        store = CheckpointStore()
        for value in (1, 2, 3):
            store.log("j0", ("data", value))
        store.flush()
        _corrupt(store.path, "deltas", "j0", seq=2)
        snapshot, deltas = store.load("j0")
        assert snapshot is None
        assert deltas == [("data", 1), ("data", 2)]
        store.close()

    def test_mid_chain_delta_corruption_raises(self):
        store = CheckpointStore()
        for value in (1, 2, 3):
            store.log("j0", ("data", value))
        store.flush()
        _corrupt(store.path, "deltas", "j0", seq=1)
        with pytest.raises(CheckpointCorruptionError, match="not a torn tail"):
            store.load("j0")
        store.close()

    def test_corrupt_newest_snapshot_falls_back_to_previous(self):
        store = CheckpointStore()
        store.log("j0", ("data", 1))
        store.snapshot("j0", {"epoch": 1})
        store.log("j0", ("data", 2))
        store.snapshot("j0", {"epoch": 2})
        store.log("j0", ("data", 3))
        store.flush()
        _corrupt(store.path, "snapshots", "j0", seq=2)
        snapshot, deltas = store.load("j0")
        assert snapshot == {"epoch": 1}
        # Fallback replays the longer tail: everything since the old snapshot.
        assert deltas == [("data", 2), ("data", 3)]
        store.close()

    def test_all_snapshots_corrupt_raises(self):
        store = CheckpointStore()
        store.log("j0", ("data", 1))
        store.snapshot("j0", {"epoch": 1})
        store.log("j0", ("data", 2))
        store.snapshot("j0", {"epoch": 2})
        store.flush()
        _corrupt(store.path, "snapshots", "j0", seq=1)
        _corrupt(store.path, "snapshots", "j0", seq=2)
        with pytest.raises(CheckpointCorruptionError, match="snapshot"):
            store.load("j0")
        store.close()

    def test_intact_store_still_loads_after_two_snapshots(self):
        store = CheckpointStore()
        store.log("j0", ("data", 1))
        store.snapshot("j0", {"epoch": 1})
        store.log("j0", ("data", 2))
        store.snapshot("j0", {"epoch": 2})
        store.log("j0", ("data", 3))
        snapshot, deltas = store.load("j0")
        assert snapshot == {"epoch": 2}
        assert deltas == [("data", 3)]
        store.close()

    def test_corruption_error_is_exported_and_names_task(self):
        error = CheckpointCorruptionError("j3", "because")
        assert "j3" in str(error)
        assert error.task == "j3"


# ---------------------------------------------------------------------------
# Property: random schedules over random links mask to the twin's output
# ---------------------------------------------------------------------------

_TWIN_CACHE: dict[tuple, object] = {}


def _twin(queries, kind):
    if kind not in _TWIN_CACHE:
        query = queries[kind]
        order = _arrival_order(query)
        _TWIN_CACHE[kind] = (order, _run(query, order, batch_size=1))
    return _TWIN_CACHE[kind]


_links = st.tuples(
    st.integers(min_value=0, max_value=MACHINES - 1),
    st.integers(min_value=0, max_value=MACHINES - 1),
).filter(lambda link: link[0] != link[1])

_specs = st.one_of(
    st.builds(drop, _links, st.integers(min_value=1, max_value=40)),
    st.builds(duplicate, _links, st.integers(min_value=1, max_value=40)),
    st.builds(
        delay,
        _links,
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.5, max_value=6.0),
    ),
)


class TestRandomScheduleProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        faults=st.lists(_specs, min_size=1, max_size=6),
        kind=st.sampled_from(["equi", "band"]),
    )
    def test_random_schedule_masks_to_twin_output(self, queries, faults, kind):
        query = queries[kind]
        order, twin = _twin(queries, kind)
        faulty = _run(query, order, network_faults=faults, batch_size=1)
        assert sorted(faulty.outputs) == sorted(twin.outputs), kind
        assert faulty.output_count == twin.output_count
        _assert_counters_reconcile(faulty, f"property:{kind}")
