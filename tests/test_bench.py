"""Smoke tests for the benchmark harness and every experiment driver."""

import pytest

from repro.bench.experiments import (
    ablation_blocking,
    ablation_epsilon,
    ablation_migration_strategy,
    fig6a_ilf_growth,
    fig6b_final_ilf,
    fig6c_execution_progress,
    fig6d_total_execution_time,
    fig7a_throughput,
    fig7b_latency,
    fig7cd_mapping_sweep,
    fig8ab_weak_scaling,
    fig8cd_fluctuations,
    table2_skew_resilience,
)
from repro.bench.harness import ExperimentConfig, build_query, run_matrix, run_single
from repro.bench.report import format_series, format_table

SMALL = dict(scale=0.15, machines=4, seed=2)


class TestHarness:
    def test_run_single_and_matrix(self):
        config = ExperimentConfig(machines=4, scale=0.15, skew="Z0", seed=2)
        query = build_query("EQ5", config)
        result = run_single("Dynamic", query, config)
        assert result.machines == 4 and result.output_count > 0

        results = run_matrix(["Dynamic", "SHJ"], ["EQ5", "BNCI"], config)
        # SHJ is skipped for the band join
        assert len(results) == 3
        assert {r.operator for r in results} == {"Dynamic", "SHJ"}

    def test_run_matrix_multiple_skews_labels_queries(self):
        config = ExperimentConfig(machines=4, scale=0.15, seed=2)
        results = run_matrix(["Dynamic"], ["EQ5"], config, skews=["Z0", "Z4"])
        assert {r.query for r in results} == {"EQ5@Z0", "EQ5@Z4"}


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yyy"}]
        text = format_table(rows, title="T")
        assert "T" in text and "22" in text and "yyy" in text
        assert format_table([], title="T").startswith("T")

    def test_format_series_downsamples(self):
        series = {"s": [(float(i), float(i * i)) for i in range(100)]}
        text = format_series(series, max_points=5)
        assert "s:" in text
        assert text.count("(") <= 8


class TestExperimentDrivers:
    def test_table2(self):
        report = table2_skew_resilience(skews=["Z0", "Z4"], queries=["EQ5"], **SMALL)
        assert len(report.rows) == 2
        assert "EQ5/Dynamic" in report.rows[0]
        assert "Table 2" in report.text

    def test_fig6a_and_6c(self):
        report = fig6a_ilf_growth(**SMALL)
        assert {row["operator"] for row in report.rows} == {"SHJ", "StaticMid", "Dynamic", "StaticOpt"}
        assert report.series
        progress = fig6c_execution_progress(**SMALL)
        assert progress.series["Dynamic"]

    def test_fig6b_6d_7a_7b(self):
        queries = ["EQ5", "BNCI"]
        for driver in (fig6b_final_ilf, fig6d_total_execution_time, fig7a_throughput, fig7b_latency):
            report = driver(queries=queries, **SMALL)
            assert {row["query"] for row in report.rows} == set(queries)
            assert report.text

    def test_fig7cd_sweep(self):
        report = fig7cd_mapping_sweep(**SMALL)
        labels = {row["optimal_mapping"] for row in report.rows}
        assert "(1,4)" in labels and "(2,2)" in labels

    def test_fig8ab_weak_scaling(self):
        report = fig8ab_weak_scaling(base_scale=0.1, base_machines=4, steps=2, queries=("EQ5",))
        configs = {row["config"] for row in report.rows}
        assert len(configs) == 2
        out_of_core = fig8ab_weak_scaling(
            base_scale=0.1, base_machines=4, steps=1, queries=("EQ5",), out_of_core=True
        )
        assert out_of_core.rows[0]["mode"] == "out-of-core"

    def test_fig8cd_fluctuations(self):
        report = fig8cd_fluctuations(scale=0.15, machines=4, seed=2, fluctuation_factors=(4,))
        assert report.rows[0]["fluctuation_k"] == 4
        assert report.rows[0]["theoretical_bound"] == pytest.approx(1.25)
        assert "k=4" in report.series

    def test_ablations(self):
        epsilon_report = ablation_epsilon(scale=0.15, machines=4, seed=2, epsilons=(0.5, 1.0))
        assert len(epsilon_report.rows) == 2
        migration_report = ablation_migration_strategy(scale=0.15, machines=4, seed=2)
        assert {row["layout"] for row in migration_report.rows} == {"dyadic", "row_major"}
        blocking_report = ablation_blocking(scale=0.15, machines=4, seed=2)
        assert {row["actuation"] for row in blocking_report.rows} == {"blocking", "non-blocking"}
