"""Tests for the hash / ordered / scan join indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stream import StreamTuple
from repro.joins.index import HashIndex, OrderedIndex, ScanIndex, make_index


def _tuple(relation, **record):
    return StreamTuple(relation=relation, record=record)


def _key(item):
    return item.record["k"]


class TestHashIndex:
    def test_probe_exact(self):
        index = HashIndex(_key)
        a, b, c = _tuple("R", k=1), _tuple("R", k=1), _tuple("R", k=2)
        for item in (a, b, c):
            index.insert(item)
        candidates, inspected = index.probe(1)
        assert {t.tuple_id for t in candidates} == {a.tuple_id, b.tuple_id}
        assert inspected == 2
        assert len(index) == 3

    def test_remove(self):
        index = HashIndex(_key)
        a = _tuple("R", k=1)
        index.insert(a)
        assert index.remove(a)
        assert not index.remove(a)
        assert len(index) == 0

    def test_probe_missing_key(self):
        index = HashIndex(_key)
        candidates, inspected = index.probe(42)
        assert candidates == [] and inspected == 0

    def test_range_probe_falls_back_to_scan(self):
        index = HashIndex(_key)
        for value in range(10):
            index.insert(_tuple("R", k=value))
        candidates, inspected = index.probe_range(2, 4)
        assert sorted(t.record["k"] for t in candidates) == [2, 3, 4]
        assert inspected == 10

    def test_probe_returns_live_bucket_without_copy(self):
        index = HashIndex(_key)
        a = _tuple("R", k=1)
        index.insert(a)
        first, _ = index.probe(1)
        second, _ = index.probe(1)
        assert first is second  # the live bucket, not a fresh copy

    def test_probe_batch_groups_keys(self):
        index = HashIndex(_key)
        items = [_tuple("R", k=value % 3) for value in range(9)]
        for item in items:
            index.insert(item)
        results = index.probe_batch([0, 1, 0, 7])
        assert [inspected for _c, inspected in results] == [3, 3, 3, 0]
        assert results[0][0] is results[2][0]  # repeated key reuses the bucket
        assert results[3][0] == []

    def test_count_key_and_total_size(self):
        index = HashIndex(_key)
        for value in (1, 1, 2):
            index.insert(StreamTuple(relation="R", record={"k": value}, size=2.0))
        assert index.count_key(1) == 2
        assert index.count_key(9) == 0
        assert index.total_size == 6.0
        item = next(iter(index.items()))
        index.remove(item)
        assert index.total_size == 4.0


class TestOrderedIndex:
    def test_range_probe(self):
        index = OrderedIndex(_key)
        for value in [5, 1, 9, 3, 7]:
            index.insert(_tuple("R", k=value))
        candidates, _ = index.probe_range(3, 7)
        assert sorted(t.record["k"] for t in candidates) == [3, 5, 7]

    def test_exact_probe_and_duplicates(self):
        index = OrderedIndex(_key)
        items = [_tuple("R", k=4) for _ in range(3)]
        for item in items:
            index.insert(item)
        candidates, _ = index.probe(4)
        assert len(candidates) == 3

    def test_remove_specific_duplicate(self):
        index = OrderedIndex(_key)
        a, b = _tuple("R", k=4), _tuple("R", k=4)
        index.insert(a)
        index.insert(b)
        assert index.remove(a)
        remaining = list(index.items())
        assert [t.tuple_id for t in remaining] == [b.tuple_id]

    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=60),
           st.integers(-100, 100), st.integers(0, 20))
    @settings(max_examples=100)
    def test_range_probe_matches_naive_filter(self, keys, low, width):
        high = low + width
        index = OrderedIndex(_key)
        items = [_tuple("R", k=value) for value in keys]
        for item in items:
            index.insert(item)
        candidates, _ = index.probe_range(low, high)
        expected = sorted(t.tuple_id for t in items if low <= t.record["k"] <= high)
        assert sorted(t.tuple_id for t in candidates) == expected

    def test_probe_range_reports_raw_candidate_count(self):
        # The one-unit work floor lives in LocalJoiner.probe, not here.
        index = OrderedIndex(_key)
        index.insert(_tuple("R", k=10))
        candidates, inspected = index.probe_range(1, 2)
        assert candidates == [] and inspected == 0
        assert index.count_range(1, 2) == 0
        assert index.count_range(9, 11) == 1

    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=40),
           st.lists(st.integers(-50, 50), min_size=0, max_size=40))
    @settings(max_examples=60)
    def test_bulk_insert_matches_sequential_inserts(self, first, second):
        sequential = OrderedIndex(_key)
        bulk = OrderedIndex(_key)
        for value in first:
            sequential.insert(_tuple("R", k=value))
            bulk.insert(_tuple("R", k=value))
        extra = [_tuple("R", k=value) for value in second]
        for item in extra:
            sequential.insert(item)
        bulk.bulk_insert(extra)
        assert len(bulk) == len(sequential)
        assert [_key(t) for t in bulk.items()] == [_key(t) for t in sequential.items()]
        assert bulk.total_size == sequential.total_size
        low, high = -10, 10
        assert bulk.count_range(low, high) == sequential.count_range(low, high)

    @given(st.lists(st.tuples(st.integers(-30, 30), st.integers(-30, 30)),
                    min_size=0, max_size=25))
    @settings(max_examples=60)
    def test_probe_range_batch_matches_single_probes(self, range_specs):
        index = OrderedIndex(_key)
        for value in range(-20, 21, 3):
            index.insert(_tuple("R", k=value))
        ranges = [(min(a, b), max(a, b)) for a, b in range_specs]
        batched = index.probe_range_batch(ranges)
        for (low, high), (candidates, inspected) in zip(ranges, batched):
            single_candidates, single_inspected = index.probe_range(low, high)
            assert [t.tuple_id for t in candidates] == [
                t.tuple_id for t in single_candidates
            ]
            assert inspected == single_inspected


class TestScanIndex:
    def test_probe_returns_everything(self):
        index = ScanIndex()
        items = [_tuple("R", k=value) for value in range(5)]
        for item in items:
            index.insert(item)
        candidates, inspected = index.probe(None)
        assert len(candidates) == 5 and inspected == 5
        candidates, _ = index.probe_range(0, 2)
        assert len(candidates) == 5

    def test_remove(self):
        index = ScanIndex()
        a = _tuple("R", k=1)
        index.insert(a)
        assert index.remove(a)
        assert not index.remove(a)


class TestFactory:
    def test_make_index_dispatch(self):
        assert isinstance(make_index("equi", _key), HashIndex)
        assert isinstance(make_index("band", _key), OrderedIndex)
        assert isinstance(make_index("theta", None), ScanIndex)

    def test_indexed_kinds_require_key(self):
        with pytest.raises(ValueError):
            make_index("equi", None)
        with pytest.raises(ValueError):
            make_index("band", None)
