"""Tests for the hash / ordered / scan join indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stream import StreamTuple
from repro.joins.index import HashIndex, OrderedIndex, ScanIndex, make_index


def _tuple(relation, **record):
    return StreamTuple(relation=relation, record=record)


def _key(item):
    return item.record["k"]


class TestHashIndex:
    def test_probe_exact(self):
        index = HashIndex(_key)
        a, b, c = _tuple("R", k=1), _tuple("R", k=1), _tuple("R", k=2)
        for item in (a, b, c):
            index.insert(item)
        candidates, inspected = index.probe(1)
        assert {t.tuple_id for t in candidates} == {a.tuple_id, b.tuple_id}
        assert inspected == 2
        assert len(index) == 3

    def test_remove(self):
        index = HashIndex(_key)
        a = _tuple("R", k=1)
        index.insert(a)
        assert index.remove(a)
        assert not index.remove(a)
        assert len(index) == 0

    def test_probe_missing_key(self):
        index = HashIndex(_key)
        candidates, inspected = index.probe(42)
        assert candidates == [] and inspected == 0

    def test_range_probe_falls_back_to_scan(self):
        index = HashIndex(_key)
        for value in range(10):
            index.insert(_tuple("R", k=value))
        candidates, inspected = index.probe_range(2, 4)
        assert sorted(t.record["k"] for t in candidates) == [2, 3, 4]
        assert inspected == 10


class TestOrderedIndex:
    def test_range_probe(self):
        index = OrderedIndex(_key)
        for value in [5, 1, 9, 3, 7]:
            index.insert(_tuple("R", k=value))
        candidates, _ = index.probe_range(3, 7)
        assert sorted(t.record["k"] for t in candidates) == [3, 5, 7]

    def test_exact_probe_and_duplicates(self):
        index = OrderedIndex(_key)
        items = [_tuple("R", k=4) for _ in range(3)]
        for item in items:
            index.insert(item)
        candidates, _ = index.probe(4)
        assert len(candidates) == 3

    def test_remove_specific_duplicate(self):
        index = OrderedIndex(_key)
        a, b = _tuple("R", k=4), _tuple("R", k=4)
        index.insert(a)
        index.insert(b)
        assert index.remove(a)
        remaining = list(index.items())
        assert [t.tuple_id for t in remaining] == [b.tuple_id]

    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=60),
           st.integers(-100, 100), st.integers(0, 20))
    @settings(max_examples=100)
    def test_range_probe_matches_naive_filter(self, keys, low, width):
        high = low + width
        index = OrderedIndex(_key)
        items = [_tuple("R", k=value) for value in keys]
        for item in items:
            index.insert(item)
        candidates, _ = index.probe_range(low, high)
        expected = sorted(t.tuple_id for t in items if low <= t.record["k"] <= high)
        assert sorted(t.tuple_id for t in candidates) == expected


class TestScanIndex:
    def test_probe_returns_everything(self):
        index = ScanIndex()
        items = [_tuple("R", k=value) for value in range(5)]
        for item in items:
            index.insert(item)
        candidates, inspected = index.probe(None)
        assert len(candidates) == 5 and inspected == 5
        candidates, _ = index.probe_range(0, 2)
        assert len(candidates) == 5

    def test_remove(self):
        index = ScanIndex()
        a = _tuple("R", k=1)
        index.insert(a)
        assert index.remove(a)
        assert not index.remove(a)


class TestFactory:
    def test_make_index_dispatch(self):
        assert isinstance(make_index("equi", _key), HashIndex)
        assert isinstance(make_index("band", _key), OrderedIndex)
        assert isinstance(make_index("theta", None), ScanIndex)

    def test_indexed_kinds_require_key(self):
        with pytest.raises(ValueError):
            make_index("equi", None)
        with pytest.raises(ValueError):
            make_index("band", None)
