"""Tests for the elastic expansion scheme (§4.2.2, Fig. 5, Theorem 4.3)."""

import pytest

from repro.core.elasticity import (
    ExpansionPolicy,
    expansion_cost_bound,
    expansion_mapping,
    plan_expansion,
)
from repro.core.mapping import GridPlacement, Mapping
from repro.core.migration import interval_intersection, interval_length


class TestExpansionPolicy:
    def test_triggers_above_half_budget(self):
        policy = ExpansionPolicy(max_tuples_per_joiner=100, max_machines=64)
        assert not policy.should_expand(per_joiner_state=40, current_machines=4)
        assert policy.should_expand(per_joiner_state=60, current_machines=4)

    def test_respects_machine_ceiling(self):
        policy = ExpansionPolicy(max_tuples_per_joiner=100, max_machines=8)
        assert not policy.should_expand(per_joiner_state=90, current_machines=4)


class TestExpansionMapping:
    def test_factor_four_doubles_both_dimensions(self):
        assert expansion_mapping(Mapping(2, 2)) == Mapping(4, 4)
        assert expansion_mapping(Mapping(1, 4)) == Mapping(2, 8)

    def test_factor_two_doubles_smaller_dimension(self):
        assert expansion_mapping(Mapping(2, 4), factor=2) == Mapping(4, 4)
        assert expansion_mapping(Mapping(8, 2), factor=2) == Mapping(8, 4)
        with pytest.raises(ValueError):
            expansion_mapping(Mapping(2, 2), factor=3)


class TestPlanExpansion:
    def _plan(self, n=2, m=2):
        old = GridPlacement(mapping=Mapping(n, m))
        machines = n * m
        new_ids = list(range(4 * machines))
        return old, plan_expansion(old, new_ids)

    def test_old_machines_keep_a_child_cell(self):
        old, step = self._plan()
        for machine_id, _ in old.cells():
            assert machine_id in step.new_placement.machine_ids

    def test_every_new_machine_has_a_parent_covering_its_state(self):
        """Fig. 5: each fresh joiner receives its entire state from the joiner
        it split off from — no third-party traffic."""
        old, step = self._plan()
        fresh = set(step.new_placement.machine_ids) - set(old.machine_ids)
        assert len(fresh) == 3 * old.mapping.machines
        for machine_id in fresh:
            parent = step.parent_of[machine_id]
            senders = step.plan.senders_to(machine_id)
            assert senders == {parent}
            # the parent's old intervals cover everything the child needs
            for side in ("R", "S"):
                child_needs = step.plan.new_assignments[machine_id].interval(side)
                parent_had = step.plan.old_assignments[parent].interval(side)
                overlap = interval_intersection(child_needs, parent_had)
                assert overlap == child_needs

    def test_expansion_cost_within_theorem_4_3_bound(self):
        """Each parent ships at most twice its stored state (Theorem 4.3)."""
        old, step = self._plan()
        r_count, s_count = 1000.0, 1000.0
        per_joiner_state = r_count / old.mapping.n + s_count / old.mapping.m
        for machine_id, _ in old.cells():
            outgoing = step.plan.outgoing(machine_id)
            shipped = sum(
                interval_length([t.interval]) * (r_count if t.side == "R" else s_count)
                for t in outgoing
            )
            assert shipped <= expansion_cost_bound(per_joiner_state) + 1e-9

    def test_competitive_ratio_of_ilf_unaffected(self):
        """Splitting every machine into four does not change n/m, hence not the
        ILF ratio (§4.2.2)."""
        old_mapping = Mapping(2, 8)
        new_mapping = expansion_mapping(old_mapping)
        assert new_mapping.n / new_mapping.m == pytest.approx(old_mapping.n / old_mapping.m)

    def test_validation(self):
        old = GridPlacement(mapping=Mapping(2, 2))
        with pytest.raises(ValueError):
            plan_expansion(old, list(range(8)))          # wrong count
        with pytest.raises(ValueError):
            plan_expansion(old, list(range(4, 20)))      # drops old machines
