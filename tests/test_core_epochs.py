"""Unit tests for the eventually-consistent epoch protocol (Algorithm 3).

These tests drive :class:`EpochJoinerState` machines directly (no simulator)
through controlled migration scenarios and verify Definition 4.4: after the
migration completes, the union of all joiners' outputs is exactly the join of
everything received, with no duplicates, and every joiner's state is
consistent with the new mapping.
"""

import itertools
import random

import pytest

from repro.core.epochs import EpochJoinerState, JoinerPhase, ProtocolError
from repro.core.mapping import GridPlacement, Mapping
from repro.core.migration import plan_migration
from repro.engine.stream import StreamTuple
from repro.joins.local import make_local_joiner
from repro.joins.predicates import EquiPredicate


def _make_cluster(mapping: Mapping, num_reshufflers: int | None = None):
    placement = GridPlacement(mapping=mapping)
    joiners = {}
    for machine_id in range(mapping.machines):
        store = make_local_joiner(EquiPredicate("k", "k"), "R", "S")
        joiners[machine_id] = EpochJoinerState(
            machine_id=machine_id,
            store=store,
            num_reshufflers=num_reshufflers or mapping.machines,
            left_relation="R",
        )
    return placement, joiners


def _route(placement: GridPlacement, item: StreamTuple):
    if item.relation == "R":
        row = item.partition(placement.mapping.n)
        return placement.machines_for_row(row)
    col = item.partition(placement.mapping.m)
    return placement.machines_for_col(col)


def _deliver_data(joiners, outputs, destinations, item):
    for machine_id in destinations:
        actions = joiners[machine_id].handle_data(item)
        outputs.extend((l.tuple_id, r.tuple_id) for l, r in actions.matches)
        _forward_migrations(joiners, outputs, actions.migrate_to)


def _forward_migrations(joiners, outputs, migrations):
    for destination, migrated in migrations:
        actions = joiners[destination].handle_migrated(migrated)
        outputs.extend((l.tuple_id, r.tuple_id) for l, r in actions.matches)


def _make_tuples(rng, relation, count, distinct_keys=6):
    return [
        StreamTuple(relation=relation, record={"k": rng.randrange(distinct_keys)}, salt=rng.random())
        for _ in range(count)
    ]


def _expected_pairs(r_tuples, s_tuples):
    return {
        (r.tuple_id, s.tuple_id)
        for r in r_tuples
        for s in s_tuples
        if r.record["k"] == s.record["k"]
    }


class TestNormalOperation:
    def test_joins_without_any_migration(self):
        rng = random.Random(0)
        mapping = Mapping(2, 2)
        placement, joiners = _make_cluster(mapping)
        r_tuples = _make_tuples(rng, "R", 30)
        s_tuples = _make_tuples(rng, "S", 30)
        outputs = []
        order = r_tuples + s_tuples
        rng.shuffle(order)
        for item in order:
            _deliver_data(joiners, outputs, _route(placement, item), item)
        assert set(outputs) == _expected_pairs(r_tuples, s_tuples)
        assert len(outputs) == len(set(outputs))

    def test_stale_epoch_tuple_raises(self):
        mapping = Mapping(2, 2)
        _, joiners = _make_cluster(mapping)
        stale = StreamTuple(relation="R", record={"k": 1}, salt=0.3, epoch=-1)
        with pytest.raises(ProtocolError):
            joiners[0].handle_data(stale)


class TestMigrationScenario:
    def _run_with_migration(self, seed, old_mapping, new_mapping, pre=40, during=40, post=40):
        """Full scenario: tuples before, during and after a migration."""
        rng = random.Random(seed)
        old_placement = GridPlacement(mapping=old_mapping)
        new_placement = GridPlacement(mapping=new_mapping)
        plan = plan_migration(old_placement, new_placement)
        placement, joiners = _make_cluster(old_mapping)
        num_reshufflers = old_mapping.machines
        outputs = []
        all_r, all_s = [], []

        def data(relation, count, placement_used, epoch):
            tuples = _make_tuples(rng, relation, count)
            for item in tuples:
                item.epoch = epoch
                (all_r if relation == "R" else all_s).append(item)
                _deliver_data(joiners, outputs, _route(placement_used, item), item)
            return tuples

        # Phase 1: normal operation under the old mapping (τ).
        data("R", pre, old_placement, epoch=0)
        data("S", pre, old_placement, epoch=0)

        # Phase 2: the migration starts.  Reshufflers signal one at a time;
        # in between, joiners receive a mix of old-epoch (Δ) and new-epoch
        # (Δ') tuples, the latter routed by the new mapping.
        reshufflers = [f"reshuffler-{i}" for i in range(num_reshufflers)]
        for index, reshuffler in enumerate(reshufflers):
            for machine_id, joiner in joiners.items():
                migrations, replayed = joiner.handle_signal(1, plan, reshuffler)
                _forward_migrations(joiners, outputs, migrations)
                for _item, actions in replayed:
                    outputs.extend((l.tuple_id, r.tuple_id) for l, r in actions.matches)
                    _forward_migrations(joiners, outputs, actions.migrate_to)
            # interleave data between signals: reshufflers that signalled route
            # with the new epoch/mapping, the rest still use the old one.
            signalled_fraction = (index + 1) / num_reshufflers
            if during:
                chunk = max(1, during // num_reshufflers)
                if signalled_fraction < 1.0:
                    data("R", chunk, old_placement, epoch=0)
                    data("S", chunk, old_placement, epoch=0)
                data("R", chunk, new_placement, epoch=1)
                data("S", chunk, new_placement, epoch=1)

        # Phase 3: migration ends — every expected sender flags completion.
        for machine_id, joiner in joiners.items():
            for sender in plan.senders_to(machine_id):
                joiner.register_migration_end(sender)
            if joiner.migration_in_progress():
                assert joiner.can_finalize()
                joiner.finalize()
            assert joiner.phase is JoinerPhase.NORMAL
            assert joiner.current_epoch == 1

        # Phase 4: normal operation under the new mapping.
        data("R", post, new_placement, epoch=1)
        data("S", post, new_placement, epoch=1)

        return all_r, all_s, outputs, joiners, new_placement

    @pytest.mark.parametrize(
        "old_mapping,new_mapping",
        [
            (Mapping(4, 1), Mapping(2, 2)),
            (Mapping(2, 2), Mapping(4, 1)),
            (Mapping(2, 2), Mapping(1, 4)),
            (Mapping(4, 2), Mapping(2, 4)),
            (Mapping(8, 1), Mapping(2, 4)),  # multi-step jump
        ],
    )
    def test_output_is_correct_and_complete(self, old_mapping, new_mapping):
        all_r, all_s, outputs, _, _ = self._run_with_migration(7, old_mapping, new_mapping)
        assert set(outputs) == _expected_pairs(all_r, all_s)
        assert len(outputs) == len(set(outputs)), "duplicate join results emitted"

    def test_state_is_consistent_with_new_mapping_after_finalize(self):
        _, _, _, joiners, new_placement = self._run_with_migration(
            11, Mapping(4, 1), Mapping(2, 2), post=0
        )
        for machine_id, joiner in joiners.items():
            r_low, r_high = new_placement.r_interval(machine_id)
            s_low, s_high = new_placement.s_interval(machine_id)
            for item in joiner.store.stored("R"):
                assert r_low <= item.salt < r_high
            for item in joiner.store.stored("S"):
                assert s_low <= item.salt < s_high

    def test_finalize_before_completion_raises(self):
        mapping = Mapping(2, 2)
        placement, joiners = _make_cluster(mapping)
        new_placement = GridPlacement(mapping=Mapping(1, 4))
        plan = plan_migration(placement, new_placement)
        joiner = joiners[0]
        joiner.handle_signal(1, plan, "reshuffler-0")
        with pytest.raises(ProtocolError):
            joiner.finalize()

    def test_second_epoch_signal_for_other_epoch_raises(self):
        mapping = Mapping(2, 2)
        placement, joiners = _make_cluster(mapping)
        plan = plan_migration(placement, GridPlacement(mapping=Mapping(1, 4)))
        joiner = joiners[0]
        joiner.handle_signal(1, plan, "reshuffler-0")
        with pytest.raises(ProtocolError):
            joiner.handle_signal(2, plan, "reshuffler-1")

    def test_early_migration_tuples_are_buffered(self):
        """A µ tuple arriving before any signal must not be lost."""
        mapping = Mapping(2, 2)
        placement, joiners = _make_cluster(mapping, num_reshufflers=1)
        new_placement = GridPlacement(mapping=Mapping(1, 4))
        plan = plan_migration(placement, new_placement)
        joiner = joiners[0]
        early = StreamTuple(relation="R", record={"k": 1}, salt=0.1, epoch=0)
        actions = joiner.handle_migrated(early)
        assert not actions.stored            # buffered, not yet stored
        migrations, replayed = joiner.handle_signal(1, plan, "reshuffler-0")
        assert any(item.tuple_id == early.tuple_id for item, _ in replayed)
        assert joiner.stored_count() >= 1
