"""Batched / per-tuple data-plane equivalence.

Batching is a transport optimisation: for any batch size the operator must
produce exactly the same join output (as tuple-id pairs), the same number of
migrations and the same final mapping as the per-tuple data plane
(``batch_size=1``), which itself reproduces the seed behaviour
event-for-event.  Both runs are fed the *same* arrival order (the same
``StreamTuple`` objects) so tuple ids and salts are directly comparable.

The vectorized probe engine is additionally pinned against the per-member
(per-tuple) probe path: at every batch size, running the same workload with
``probe_engine="scalar"`` must charge exactly the same total ``probe_work``
and produce an identical simulation (outputs and virtual completion time) —
the batch-aware probes are a wall-clock optimisation only.

The virtual-time equality assertions double as the pin for **per-batch cost
aggregation** (``JoinerTask._apply_data_batch``): the batch-aware engine
charges one handler invocation's costs through the aggregated bookkeeping
path while the scalar engine still runs per-member ``_apply``; if
aggregation ever perturbed per-member cost attribution (float order, storage
factors, output emission charges), ``execution_time`` — and the per-output
latency totals behind ``average_latency`` — would diverge between the two.
"""

import random

import pytest
from repro.testing import NETWORK_FIELDS, TIMING_FIELDS, assert_run_equivalent

from repro.api import RunConfig
from repro.core.baselines import StaticMidOperator
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import make_query
from repro.engine.stream import interleave_streams, make_tuples

BATCH_SIZES = (8, 64)


def _arrival_order(query, seed):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return interleave_streams(left, right, rng)


def _run(operator_class, query, order, batch_size, **kwargs):
    config = RunConfig(machines=8, seed=5, batch_size=batch_size, **kwargs)
    operator = operator_class(query, config=config)
    return operator.run(arrival_order=order, collect_outputs=True)


def _assert_equivalent(operator_class, query, **kwargs):
    order = _arrival_order(query, seed=5)
    reference = _run(operator_class, query, order, batch_size=1, **kwargs)
    assert reference.outputs is not None
    for batch_size in BATCH_SIZES:
        batched = _run(operator_class, query, order, batch_size=batch_size, **kwargs)
        # Across fixed-plane batch sizes only the *results* are pinned:
        # virtual-time compression legitimately shifts the epoch edge, so the
        # timing and per-category volume fields are named in ignore= — every
        # field NOT named stays strict, unlike the old coarse switches.
        assert_run_equivalent(
            reference, batched,
            ignore=TIMING_FIELDS | NETWORK_FIELDS,
            label=f"batch_size={batch_size}",
        )
        # The scalar (per-member reference) engine at the same batch size must
        # be a bit-identical simulation: identical probe work, output timing,
        # storage peaks and network traffic.  This doubles as the pin for the
        # per-batch aggregated cost bookkeeping (JoinerTask._apply_data_batch).
        scalar = _run(
            operator_class, query, order, batch_size=batch_size,
            probe_engine="scalar", **kwargs,
        )
        assert batched.probe_work > 0
        assert_run_equivalent(
            scalar, batched, label=f"scalar-vs-vectorized@batch_size={batch_size}"
        )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("blocking", [False, True])
    def test_adaptive_equi_join(self, small_dataset, blocking):
        query = make_query("EQ5", small_dataset)
        _assert_equivalent(
            AdaptiveJoinOperator, query, warmup_tuples=16, blocking=blocking
        )

    def test_adaptive_under_skew(self, skewed_dataset):
        query = make_query("EQ5", skewed_dataset)
        _assert_equivalent(AdaptiveJoinOperator, query, warmup_tuples=16)

    @pytest.mark.parametrize("blocking", [False, True])
    def test_static_operator(self, small_dataset, blocking):
        query = make_query("EQ5", small_dataset)
        _assert_equivalent(StaticMidOperator, query, blocking=blocking)

    def test_adaptive_band_join(self, small_dataset):
        query = make_query("BNCI", small_dataset)
        _assert_equivalent(AdaptiveJoinOperator, query, warmup_tuples=16)


class TestBatchedAccounting:
    def test_batching_reduces_events(self, small_dataset):
        """Batches amortise simulator events without changing the output.

        (Network volume is *not* compared across batch sizes: virtual-time
        compression shifts where the epoch edge falls in the stream, so the
        mapping under which edge tuples are routed — and hence their fan-out —
        may legitimately differ.  Per-message volume exactness is covered by
        the engine-level batch tests.)
        """
        query = make_query("EQ5", small_dataset)
        order = _arrival_order(query, seed=5)
        per_tuple = _run(AdaptiveJoinOperator, query, order, batch_size=1, warmup_tuples=16)
        batched = _run(AdaptiveJoinOperator, query, order, batch_size=64, warmup_tuples=16)
        assert batched.events_processed * 3 < per_tuple.events_processed
        assert batched.output_count == per_tuple.output_count

    def test_batch_size_recorded_in_result(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        order = _arrival_order(query, seed=5)
        result = _run(StaticMidOperator, query, order, batch_size=64)
        assert result.batch_size == 64
        assert result.events_processed > 0

    def test_invalid_batch_size_rejected(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        with pytest.raises(ValueError):
            StaticMidOperator(query, config=RunConfig(machines=8, batch_size=0))
