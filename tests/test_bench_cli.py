"""Tests for the ``python -m repro.bench`` command-line entry point."""

import pytest

from repro.bench.cli import DRIVERS, build_parser, run


class TestCli:
    def test_every_documented_experiment_has_a_driver(self):
        for name in ("table2", "fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b",
                     "fig7cd", "fig8ab", "fig8cd"):
            assert name in DRIVERS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.experiments == ["fig6a"]
        # machines/seed resolve at run time: RunConfig defaults unless a
        # --config file or an explicit flag supplies them.
        assert args.machines is None
        assert args.seed is None
        assert args.config is None

    def test_config_file_feeds_machines_and_seed(self, tmp_path, capsys):
        from repro.api import RunConfig

        path = tmp_path / "run-config.json"
        path.write_text(RunConfig(machines=4, seed=2).to_json())
        reports = run(["fig6d", "--scale", "0.15", "--config", str(path)])
        assert len(reports) == 1
        out = capsys.readouterr().out
        assert "Fig. 6d" in out
        assert "ignoring" not in out  # machines/seed only: nothing to report

    def test_config_file_reports_ignored_fields(self, tmp_path, capsys):
        from repro.api import RunConfig

        path = tmp_path / "run-config.json"
        path.write_text(RunConfig(machines=4, seed=2, batch_size=8, epsilon=0.5).to_json())
        run(["fig6d", "--scale", "0.15", "--config", str(path)])
        out = capsys.readouterr().out
        assert "ignoring" in out and "batch_size" in out and "epsilon" in out

    def test_bad_config_file_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"machines": "not-a-count"}')
        with pytest.raises(SystemExit):
            run(["fig6d", "--config", str(path)])

    def test_run_single_experiment(self, capsys):
        reports = run(["fig6d", "--scale", "0.15", "--machines", "4", "--seed", "2"])
        assert len(reports) == 1
        assert reports[0].name == "fig6d"
        captured = capsys.readouterr()
        assert "Fig. 6d" in captured.out

    def test_run_multiple_experiments(self, capsys):
        reports = run(
            ["ablation-epsilon", "ablation-blocking", "--scale", "0.15", "--machines", "4"]
        )
        assert {report.name for report in reports} == {"ablation_epsilon", "ablation_blocking"}

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            run(["fig99", "--scale", "0.1"])
