"""Tests for the ``python -m repro.bench`` command-line entry point."""

import pytest

from repro.bench.cli import DRIVERS, build_parser, run


class TestCli:
    def test_every_documented_experiment_has_a_driver(self):
        for name in ("table2", "fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b",
                     "fig7cd", "fig8ab", "fig8cd"):
            assert name in DRIVERS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6a"])
        assert args.experiments == ["fig6a"]
        assert args.machines == 16

    def test_run_single_experiment(self, capsys):
        reports = run(["fig6d", "--scale", "0.15", "--machines", "4", "--seed", "2"])
        assert len(reports) == 1
        assert reports[0].name == "fig6d"
        captured = capsys.readouterr()
        assert "Fig. 6d" in captured.out

    def test_run_multiple_experiments(self, capsys):
        reports = run(
            ["ablation-epsilon", "ablation-blocking", "--scale", "0.15", "--machines", "4"]
        )
        assert {report.name for report in reports} == {"ablation_epsilon", "ablation_blocking"}

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            run(["fig99", "--scale", "0.1"])
