"""Differential conformance suite for the executor plane.

The threaded executor (``executor="threads"``) runs every machine-hosted
handler on a worker thread that owns the machine, while the coordinator pops
the global ``(time, rank)`` heap as a conservative dispatch frontier.  Its
contract is the strongest in the repository: every deterministic quantity —
join output, migration sequence with decision/completion times, final
mapping, per-machine busy chains, execution time, probe work, network
volumes, heap events and wire histograms — must be **bit-identical** to the
simulated oracle; only wall-clock-derived stats (``wall_time``,
``worker_wall``, ``worker_events``) and the frontier's own bookkeeping
(``effective_workers``, ``overlap_dispatches``, ``peak_inflight``) may
differ between backends.

The suite sweeps the scenario matrix: predicate kind (equi / band /
composite-residual) x operator (migrating Dynamic / static) x data plane
(per-tuple / adaptive draining), asserting exact equivalence on every cell —
``events=True``, nothing ignored — plus a Hypothesis leg over random seeds,
worker-fleet sizes and streaming chunkings, and the ``ignore=`` contract of
:func:`repro.testing.assert_run_equivalent` (wall-clock exclusions compose;
the semantic baseline is never skippable).
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JoinSession, RunConfig
from repro.core.baselines import StaticMidOperator
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import JoinQuery, make_query
from repro.engine.stream import interleave_streams, make_tuples
from repro.joins.predicates import CompositePredicate, EquiPredicate
from repro.testing import IGNORABLE_FIELDS, TIMING_FIELDS, assert_run_equivalent

MACHINES = 8
SEED = 5

OPERATORS = {
    "migrating": AdaptiveJoinOperator,   # warmup 16 -> migrates mid-stream
    "static": StaticMidOperator,         # never migrates
}

#: Data planes the matrix crosses the executors with: per-tuple fixed plane
#: and the adaptive draining plane (the one with receiver-side coalescing —
#: the hardest case for a parallel backend to keep bit-identical).
PLANES = {
    "per_tuple": {"batch_size": 1},
    "adaptive": {"batching": "adaptive"},
}


def _composite_query(rng: random.Random) -> JoinQuery:
    """A composite predicate (equi hash path + residual re-validation)."""
    left = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(40)]
    right = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(360)]
    return JoinQuery(
        name="COMPOSITE",
        left_relation="R",
        right_relation="S",
        left_records=left,
        right_records=right,
        predicate=CompositePredicate(
            EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
        ),
        description="equi join with a parity residual (executor conformance)",
    )


@pytest.fixture(scope="module")
def queries(small_dataset):
    return {
        "equi": make_query("EQ5", small_dataset),
        "band": make_query("BNCI", small_dataset),
        "composite": _composite_query(random.Random(17)),
    }


def _arrival_order(query, seed=SEED):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return interleave_streams(left, right, rng)


def _config(**overrides):
    knobs = {"machines": MACHINES, "seed": SEED, "warmup_tuples": 16}
    knobs.update(overrides)
    return RunConfig(**knobs)


def _run(operator_class, query, order, **overrides):
    operator = operator_class(query, config=_config(**overrides))
    return operator.run(arrival_order=order, collect_outputs=True)


def _run_pair(operator_class, query, order, **shared):
    """The same scenario on the simulated oracle and the threaded backend."""
    oracle = _run(operator_class, query, order, **shared)
    threaded = _run(operator_class, query, order, executor="threads", **shared)
    return oracle, threaded


# ---------------------------------------------------------------------------
# Materialised scenario matrix
# ---------------------------------------------------------------------------


class TestExecutorMatrix:
    @pytest.mark.parametrize("predicate", ["equi", "band", "composite"])
    @pytest.mark.parametrize("plane", sorted(PLANES))
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_threads_bit_identical_to_oracle(self, queries, predicate, plane, operator):
        query = queries[predicate]
        order = _arrival_order(query)
        oracle, threaded = _run_pair(
            OPERATORS[operator], query, order, **PLANES[plane]
        )
        label = f"{predicate}/{plane}/{operator}"
        # events=True: even the heap-event count and the per-link wire-merge
        # histogram must match — the dispatch frontier may not reorder,
        # merge or split anything the oracle would not.
        assert_run_equivalent(oracle, threaded, events=True, label=label)
        if operator == "migrating":
            assert oracle.migrations >= 1, f"{label}: scenario must migrate"

    def test_result_records_executor_metadata(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        oracle, threaded = _run_pair(AdaptiveJoinOperator, query, order)
        assert oracle.executor == "simulated"
        assert oracle.worker_wall is None and oracle.worker_events is None
        assert threaded.executor == "threads"
        assert len(threaded.worker_wall) == MACHINES
        assert len(threaded.worker_events) == MACHINES
        # Every machine's worker actually executed handlers.
        assert all(count > 0 for count in threaded.worker_events)
        assert threaded.wall_time > 0.0
        # wall-clock is a stat, never an input: virtual time stayed exact.
        assert threaded.execution_time == oracle.execution_time

    def test_frontier_genuinely_overlaps(self, queries):
        """The widened frontier must run >1 handler concurrently in flight
        on a saturated per-tuple cell — the counters are structurally
        deterministic (dispatch decisions are pure functions of virtual-time
        keys), so they are hard assertions, not flaky thresholds — while the
        run stays bit-identical to the oracle."""
        query = queries["equi"]
        order = _arrival_order(query)
        oracle, threaded = _run_pair(
            AdaptiveJoinOperator, query, order, batch_size=1
        )
        assert_run_equivalent(oracle, threaded, events=True, label="overlap-cell")
        assert oracle.overlap_dispatches == 0 and oracle.peak_inflight == 0
        assert threaded.peak_inflight > 1, "frontier ran lock-step"
        assert threaded.overlap_dispatches >= 1

    def test_effective_workers_surfaces_clamp(self, queries):
        """num_workers beyond the machine count silently clamps inside the
        executor (a worker owns whole machines); the effective size must be
        recorded on the result and in the summary row so trend diffs never
        compare mislabeled fleet configurations."""
        query = queries["equi"]
        order = _arrival_order(query)
        oracle = _run(AdaptiveJoinOperator, query, order)
        assert oracle.effective_workers is None
        assert oracle.summary_row()["effective_workers"] == ""
        threaded = _run(
            AdaptiveJoinOperator, query, order, executor="threads", num_workers=64
        )
        assert threaded.effective_workers == MACHINES
        assert threaded.summary_row()["effective_workers"] == MACHINES

    def test_small_fleet_owns_machines_round_robin(self, queries):
        """num_workers < machines multiplexes machines onto fewer owners
        without changing any deterministic quantity."""
        query = queries["equi"]
        order = _arrival_order(query)
        oracle = _run(AdaptiveJoinOperator, query, order)
        for num_workers in (1, 3):
            threaded = _run(
                AdaptiveJoinOperator, query, order,
                executor="threads", num_workers=num_workers,
            )
            assert_run_equivalent(
                oracle, threaded, events=True, label=f"num_workers={num_workers}"
            )
            assert len(threaded.worker_events) == num_workers
            assert sum(threaded.worker_events) > 0


# ---------------------------------------------------------------------------
# Streaming ingestion: executor vs executor under identical chunkings
# ---------------------------------------------------------------------------


def _stream_run(query, order, chunks, **overrides):
    session = JoinSession(query, operator="Dynamic", config=_config(**overrides))
    session.open_stream(collect_outputs=True)
    position = 0
    for chunk in chunks:
        if position >= len(order):
            break
        session.push(items=list(order[position:position + chunk]))
        position += chunk
    if position < len(order):
        session.push(items=list(order[position:]))
    return session.finish()


@pytest.fixture(scope="module")
def small_conformance(small_dataset):
    """A reduced workload for the Hypothesis legs (speed)."""
    query = make_query("EQ5", small_dataset)
    order = _arrival_order(query)[:160]
    return query, order


class TestStreamingExecutorConformance:
    @pytest.mark.parametrize("chunk_seed", [3, 99])
    def test_streaming_threads_bit_identical(self, queries, chunk_seed):
        """Each push tears the worker fleet up and down; the cumulative run
        must still match the oracle exactly under the same chunking."""
        query = queries["equi"]
        order = _arrival_order(query)
        rng = random.Random(chunk_seed)
        chunks, remaining = [], len(order)
        while remaining > 0:
            chunk = rng.randrange(1, 120)
            chunks.append(chunk)
            remaining -= chunk
        oracle = _stream_run(query, order, chunks)
        threaded = _stream_run(query, order, chunks, executor="threads")
        assert_run_equivalent(
            oracle, threaded, events=True, label=f"stream/chunking-{chunk_seed}"
        )
        # Worker stats accumulate across pushes rather than resetting.
        assert sum(threaded.worker_events) > 0

    @given(
        seed=st.integers(0, 2**16),
        num_workers=st.integers(1, 8),
        plane=st.sampled_from(sorted(PLANES)),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_seed_and_fleet_reproduces_oracle(
        self, small_conformance, seed, num_workers, plane
    ):
        """Cross-executor property: for ANY simulation seed, fleet size and
        data plane, the threaded backend is bit-identical to the oracle."""
        query, order = small_conformance
        shared = dict(PLANES[plane], seed=seed)
        oracle = _run(AdaptiveJoinOperator, query, order, **shared)
        threaded = _run(
            AdaptiveJoinOperator, query, order,
            executor="threads", num_workers=num_workers, **shared,
        )
        assert_run_equivalent(
            oracle, threaded, events=True,
            label=f"seed={seed}/workers={num_workers}/{plane}",
        )


# ---------------------------------------------------------------------------
# The ignore= contract of assert_run_equivalent
# ---------------------------------------------------------------------------


class TestIgnoreParameter:
    def test_ignoring_wall_clock_fields_composes(self, small_conformance):
        """A cross-executor comparison may name wall-clock-adjacent fields in
        ignore= while everything else stays strict — and naming them must not
        loosen fields that actually match."""
        query, order = small_conformance
        oracle, threaded = _run_pair(AdaptiveJoinOperator, query, order)
        assert_run_equivalent(
            oracle, threaded, events=True,
            ignore=("execution_time", "machine_busy", "heap_events"),
            label="ignore-wall-clock",
        )

    def test_default_is_strict(self, small_conformance):
        """With ignore= unset, a timing delta still fails loudly."""
        query, order = small_conformance
        oracle, threaded = _run_pair(AdaptiveJoinOperator, query, order)
        skewed = dataclasses.replace(
            oracle, execution_time=oracle.execution_time + 1.0
        )
        with pytest.raises(AssertionError, match="execution_time"):
            assert_run_equivalent(skewed, threaded, label="strict")
        # ...and naming the skewed field is exactly what lets it pass.
        assert_run_equivalent(
            skewed, threaded, ignore=("execution_time",), label="excused"
        )

    def test_unknown_ignore_name_raises(self, small_conformance):
        query, order = small_conformance
        oracle, threaded = _run_pair(StaticMidOperator, query, order)
        with pytest.raises(ValueError, match="unknown ignore field"):
            assert_run_equivalent(oracle, threaded, ignore=("exec_time",))

    def test_semantic_baseline_is_not_ignorable(self, small_conformance):
        """Join outputs, counts, migrations and mappings can never be waved
        away — they are not in IGNORABLE_FIELDS and ignore= rejects them."""
        for baseline in ("outputs", "output_count", "migrations", "final_mapping"):
            assert baseline not in IGNORABLE_FIELDS
        query, order = small_conformance
        oracle, threaded = _run_pair(StaticMidOperator, query, order)
        with pytest.raises(ValueError, match="never skippable"):
            assert_run_equivalent(oracle, threaded, ignore=("outputs",))

    def test_coarse_switches_are_field_group_shorthand(self, small_conformance):
        """timing=False is exactly ignore=TIMING_FIELDS."""
        query, order = small_conformance
        oracle = _run(StaticMidOperator, query, order, batch_size=1)
        batched = _run(StaticMidOperator, query, order, batch_size=32)
        assert_run_equivalent(
            oracle, batched, timing=False, network=False, label="coarse"
        )
        assert_run_equivalent(
            oracle, batched,
            ignore=TIMING_FIELDS | {"routing_volume", "migration_volume",
                                    "total_network_volume"},
            label="explicit",
        )
