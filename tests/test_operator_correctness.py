"""End-to-end correctness of every operator inside the simulated cluster.

Definition 4.4: regardless of operator, partitioning, skew, arrival order and
migrations, the produced output must be exactly the join of the two input
streams — complete and without duplicates.
"""

import random

import pytest

from repro.api import RunConfig
from repro.core.baselines import (
    StaticMidOperator,
    StaticOptOperator,
    SymmetricHashOperator,
    make_operator,
)
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import make_query
from repro.data.tpch import generate_dataset
from repro.engine.stream import fluctuating_order, make_tuples
from repro.joins.predicates import cross_join_reference


def _reference_count(query):
    return len(cross_join_reference(query.left_records, query.right_records, query.predicate))


def _assert_correct(result, query):
    assert result.output_count == _reference_count(query)
    assert result.outputs is not None
    assert len(result.outputs) == len(set(result.outputs)), "duplicate outputs"


class TestOperatorOutputs:
    @pytest.mark.parametrize("operator_kind", ["Dynamic", "StaticMid", "StaticOpt", "SHJ"])
    def test_equi_join_under_skew(self, skewed_dataset, operator_kind):
        query = make_query("EQ5", skewed_dataset)
        operator = make_operator(operator_kind, query, 8, seed=3)
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)

    @pytest.mark.parametrize("operator_kind", ["Dynamic", "StaticMid", "StaticOpt"])
    def test_band_join(self, small_dataset, operator_kind):
        query = make_query("BNCI", small_dataset)
        operator = make_operator(operator_kind, query, 8, seed=3)
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)

    def test_theta_join(self, small_dataset):
        query = make_query("THETA_NEQ", small_dataset)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=4, seed=1))
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)

    def test_shj_rejects_non_equi(self, small_dataset):
        query = make_query("BNCI", small_dataset)
        with pytest.raises(ValueError):
            SymmetricHashOperator(query, config=RunConfig(machines=8))

    def test_non_power_of_two_machines_rejected(self, eq5_query):
        with pytest.raises(ValueError):
            AdaptiveJoinOperator(eq5_query, config=RunConfig(machines=12))

    @pytest.mark.parametrize("pattern", ["uniform", "r_first", "s_first", "alternate"])
    def test_arrival_order_does_not_affect_output(self, small_dataset, pattern):
        query = make_query("EQ7", small_dataset)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=5, warmup_tuples=16))
        result = operator.run(arrival_pattern=pattern, collect_outputs=True)
        _assert_correct(result, query)

    def test_correct_under_fluctuating_arrivals_with_migrations(self, small_dataset):
        query = make_query("FLUCT_SYM", small_dataset)
        rng = random.Random(9)
        left = make_tuples(query.left_relation, query.left_records, rng)
        right = make_tuples(query.right_relation, query.right_records, rng)
        order = fluctuating_order(left, right, fluctuation_factor=4, warmup=32)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=9, warmup_tuples=32))
        result = operator.run(arrival_order=order, collect_outputs=True)
        _assert_correct(result, query)

    def test_blocking_actuation_is_also_correct(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=2, blocking=True, warmup_tuples=16))
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)

    def test_row_major_layout_is_also_correct(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=2, layout="row_major", warmup_tuples=16))
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)

    def test_correct_with_memory_pressure_and_spills(self, skewed_dataset):
        query = make_query("EQ5", skewed_dataset)
        operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=2, memory_capacity=20.0))
        result = operator.run(collect_outputs=True)
        _assert_correct(result, query)
        assert result.spilled

    def test_epsilon_variants_are_correct(self, small_dataset):
        query = make_query("EQ7", small_dataset)
        for epsilon in (0.25, 0.5, 1.0):
            operator = AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=4, epsilon=epsilon, warmup_tuples=16))
            result = operator.run(collect_outputs=True)
            _assert_correct(result, query)

    def test_determinism_same_seed_same_result(self, small_dataset):
        query = make_query("EQ5", small_dataset)
        results = [
            AdaptiveJoinOperator(query, config=RunConfig(machines=8, seed=13)).run(collect_outputs=True) for _ in range(2)
        ]
        assert results[0].output_count == results[1].output_count
        assert results[0].execution_time == pytest.approx(results[1].execution_time)
        assert results[0].migrations == results[1].migrations


class TestRunResultContents:
    def test_result_fields_are_populated(self, eq5_query):
        result = AdaptiveJoinOperator(eq5_query, config=RunConfig(machines=8, seed=1)).run()
        assert result.operator == "Dynamic"
        assert result.query == "EQ5"
        assert result.machines == 8
        assert result.execution_time > 0
        assert result.throughput > 0
        assert result.max_ilf > 0
        assert result.total_storage > 0
        assert result.final_mapping.machines == 8
        assert 0 < result.progress_series[-1][0] <= 1.0
        row = result.summary_row()
        assert row["operator"] == "Dynamic" and row["machines"] == 8

    def test_static_operators_never_migrate(self, eq5_query):
        for cls in (StaticMidOperator, StaticOptOperator):
            result = cls(eq5_query, config=RunConfig(machines=8, seed=1)).run()
            assert result.migrations == 0
            assert result.migration_volume == 0.0
