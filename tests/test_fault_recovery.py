"""Fault injection, durable checkpointing, and migration-driven recovery.

Pins the fault-tolerant join plane's contract:

* **Fault-free bit-identity** — turning checkpointing on (``checkpoint_interval``
  set, no faults) must not perturb the simulation at all: the run is
  bit-identical to the reference down to heap events, on both data planes.
* **Crash twins** — a run with a crash in its fault schedule must recover to
  the *same join output multiset* as its fault-free twin over the same
  arrival order, across predicate kinds (equi / band / composite) and data
  planes (per-tuple / adaptive), with ``recovery_time > 0`` and the crash
  counted in ``faults_injected``.
* **Deterministic replay** — running the same crash schedule twice is
  bit-identical (``events=True``), so recovery itself is deterministic.
* **Error paths** — overlapping faults, unreachable machines after retry
  exhaustion, and invalid :class:`FaultSpec` construction all fail eagerly
  with actionable messages.

Twin runs share ONE materialised arrival order (``StreamTuple`` ids come from
a global counter, so independently materialised streams get different ids).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunConfig, crash, crash_after_events
from repro.core.baselines import StaticMidOperator
from repro.core.operator import AdaptiveJoinOperator
from repro.data.queries import JoinQuery, make_query
from repro.engine.faults import FaultSpec, normalize_fault_schedule
from repro.engine.stream import interleave_streams, make_tuples
from repro.joins.predicates import CompositePredicate, EquiPredicate
from repro.storage import CheckpointStore
from repro.testing import assert_run_equivalent

MACHINES = 8
SEED = 5


def _composite_query(rng: random.Random) -> JoinQuery:
    left = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(40)]
    right = [{"k": rng.randrange(12), "v": rng.randrange(40)} for _ in range(360)]
    return JoinQuery(
        name="COMPOSITE",
        left_relation="R",
        right_relation="S",
        left_records=left,
        right_records=right,
        predicate=CompositePredicate(
            EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
        ),
        description="equi join with a parity residual (recovery scenarios)",
    )


@pytest.fixture(scope="module")
def queries(small_dataset):
    return {
        "equi": make_query("EQ5", small_dataset),
        "band": make_query("BNCI", small_dataset),
        "composite": _composite_query(random.Random(17)),
    }


def _arrival_order(query, seed=SEED):
    rng = random.Random(seed)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(
        query.right_relation, query.right_records, rng, query.right_tuple_size
    )
    return interleave_streams(left, right, rng)


def _config(**overrides):
    return RunConfig(machines=MACHINES, seed=SEED, warmup_tuples=16, **overrides)


def _run(query, order, operator_class=AdaptiveJoinOperator, **overrides):
    operator = operator_class(query, config=_config(**overrides))
    return operator.run(arrival_order=order, collect_outputs=True)


# Per-plane overrides with a smoke-verified crash anchor: the per-tuple plane
# processes ~1380 events on the small EQ5 workload, the adaptive plane ~253,
# so each plane gets an anchor that reliably lands mid-run.
PLANES = {
    "per_tuple": {"batch_size": 1, "_crash_events": 500},
    "adaptive": {"batching": "adaptive", "_crash_events": 200},
}


def _plane_overrides(plane):
    overrides = dict(PLANES[plane])
    events = overrides.pop("_crash_events")
    return overrides, events


# ---------------------------------------------------------------------------
# CheckpointStore (durable log) unit tests
# ---------------------------------------------------------------------------

class TestCheckpointStore:
    def test_log_and_load_deltas(self):
        store = CheckpointStore(flush_every=2)
        assert store.log("j0", ("data", 1)) == 1
        assert store.log("j0", ("data", 2)) == 2
        snapshot, deltas = store.load("j0")
        assert snapshot is None
        assert deltas == [("data", 1), ("data", 2)]
        store.close()

    def test_snapshot_truncates_delta_log(self):
        store = CheckpointStore()
        store.log("j0", ("data", 1))
        store.log("j0", ("data", 2))
        store.snapshot("j0", {"epoch": 3})
        assert store.delta_count("j0") == 0
        store.log("j0", ("data", 3))
        snapshot, deltas = store.load("j0")
        assert snapshot == {"epoch": 3}
        assert deltas == [("data", 3)]
        assert store.snapshots_taken == 1
        store.close()

    def test_tasks_are_isolated(self):
        store = CheckpointStore()
        store.log("j0", ("data", 1))
        store.log("j1", ("mu", 9))
        snapshot, deltas = store.load("j1")
        assert snapshot is None
        assert deltas == [("mu", 9)]
        store.close()

    def test_bytes_written_accumulates(self):
        store = CheckpointStore()
        store.log("j0", ("data", "x" * 64))
        store.flush()
        written = store.bytes_written
        assert written > 0
        store.snapshot("j0", {"big": "y" * 256})
        assert store.bytes_written > written
        store.close()

    def test_close_unlinks_owned_temp_file(self):
        store = CheckpointStore()
        path = store.path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)
        store.close()  # idempotent


# ---------------------------------------------------------------------------
# FaultSpec validation
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_helpers_round_trip(self):
        spec = crash(3, 12.5, restart_after=2.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        spec = crash_after_events(1, 400)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        ("kwargs", "pattern"),
        [
            ({"machine": -1, "at_time": 1.0}, "machine"),
            ({"machine": True, "at_time": 1.0}, "machine"),
            ({"machine": 0}, "exactly one"),
            ({"machine": 0, "at_time": 1.0, "after_events": 5}, "exactly one"),
            ({"machine": 0, "at_time": -0.5}, "at_time"),
            ({"machine": 0, "after_events": 0}, "after_events"),
            ({"machine": 0, "at_time": 1.0, "restart_after": 0.0}, "restart_after"),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs, pattern):
        with pytest.raises(ValueError, match=pattern):
            FaultSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultSpec.from_dict({"machine": 0, "at_time": 1.0, "delay": 3})

    def test_normalize_accepts_dicts_and_specs(self):
        schedule = normalize_fault_schedule(
            [crash(1, 5.0), {"machine": 2, "after_events": 100}]
        )
        assert all(isinstance(f, FaultSpec) for f in schedule)
        assert schedule[1].after_events == 100


# ---------------------------------------------------------------------------
# Fault-free checkpointing is invisible (acceptance pin)
# ---------------------------------------------------------------------------

class TestCheckpointingBitIdentity:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    def test_fault_free_checkpointed_run_is_bit_identical(self, queries, plane):
        query = queries["equi"]
        order = _arrival_order(query)
        overrides, _ = _plane_overrides(plane)
        reference = _run(query, order, **overrides)
        checkpointed = _run(query, order, checkpoint_interval=50, **overrides)
        assert_run_equivalent(
            reference, checkpointed, events=True, label=f"checkpointing:{plane}"
        )
        assert checkpointed.faults_injected == 0
        assert checkpointed.recovery_time == 0.0
        assert checkpointed.checkpoint_overhead > 0.0


# ---------------------------------------------------------------------------
# Crash + recovery conformance matrix
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    @pytest.mark.parametrize("plane", sorted(PLANES))
    @pytest.mark.parametrize("kind", ["equi", "band", "composite"])
    def test_crashed_run_recovers_to_fault_free_output(self, queries, kind, plane):
        query = queries[kind]
        order = _arrival_order(query)
        overrides, _ = _plane_overrides(plane)
        twin = _run(query, order, checkpoint_interval=50, **overrides)
        # Anchor at the twin's mid-run point so the crash fires on every
        # query x plane cell regardless of its absolute event count.
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            fault_schedule=[crash_after_events(3, max(1, twin.events_processed // 2))],
            **overrides,
        )
        assert crashed.faults_injected == 1, f"{kind}/{plane}: crash never fired"
        assert crashed.recovery_time > 0.0
        assert sorted(crashed.outputs) == sorted(twin.outputs), f"{kind}/{plane}"
        assert crashed.output_count == twin.output_count

    def test_virtual_time_anchored_crash(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash(3, twin.execution_time * 0.4)],
        )
        assert crashed.faults_injected == 1
        assert crashed.recovery_time > 0.0
        assert sorted(crashed.outputs) == sorted(twin.outputs)

    def test_controller_machine_crash(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash(0, twin.execution_time * 0.4)],
        )
        assert crashed.faults_injected == 1
        assert sorted(crashed.outputs) == sorted(twin.outputs)

    def test_static_operator_recovers(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(
            query, order, operator_class=StaticMidOperator,
            checkpoint_interval=50, batch_size=1,
        )
        crashed = _run(
            query,
            order,
            operator_class=StaticMidOperator,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash_after_events(3, 500)],
        )
        assert crashed.faults_injected == 1
        assert sorted(crashed.outputs) == sorted(twin.outputs)

    def test_crash_without_checkpointing_still_recovers(self, queries):
        # No checkpoint_interval: recovery replays the full journal from the
        # implicit empty snapshot.
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, batch_size=1)
        crashed = _run(
            query,
            order,
            batch_size=1,
            fault_schedule=[crash_after_events(3, 500)],
        )
        assert crashed.faults_injected == 1
        assert sorted(crashed.outputs) == sorted(twin.outputs)

    def test_replay_is_deterministic(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        kwargs = dict(
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash_after_events(3, 500)],
        )
        first = _run(query, order, **kwargs)
        second = _run(query, order, **kwargs)
        assert first.faults_injected == 1
        assert_run_equivalent(first, second, events=True, label="replay-twice")
        assert first.recovery_time == second.recovery_time
        assert first.tuples_replayed == second.tuples_replayed

    def test_explicit_restart_after(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash_after_events(3, 500, restart_after=2.0)],
        )
        assert crashed.faults_injected == 1
        assert sorted(crashed.outputs) == sorted(twin.outputs)

    def test_multiple_crashes_on_distinct_machines(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        twin = _run(query, order, checkpoint_interval=50, batch_size=1)
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            batch_size=1,
            fault_schedule=[crash_after_events(3, 400), crash_after_events(5, 800)],
        )
        assert crashed.faults_injected == 2
        assert sorted(crashed.outputs) == sorted(twin.outputs)


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------

class TestFaultErrorPaths:
    def test_overlapping_faults_rejected(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        with pytest.raises(RuntimeError, match="overlapping faults"):
            _run(
                query,
                order,
                batch_size=1,
                checkpoint_interval=50,
                fault_schedule=[
                    crash_after_events(3, 500, restart_after=1e9),
                    crash_after_events(3, 501),
                ],
                max_retries=50,
                ack_timeout=1e8,
            )

    def test_retry_exhaustion_raises_unreachable(self, queries):
        query = queries["equi"]
        order = _arrival_order(query)
        with pytest.raises(RuntimeError, match="unreachable"):
            _run(
                query,
                order,
                batch_size=1,
                checkpoint_interval=50,
                fault_schedule=[crash_after_events(3, 500, restart_after=1e9)],
                max_retries=1,
                ack_timeout=1.0,
            )


# ---------------------------------------------------------------------------
# Property: a crash at an arbitrary point recovers to the twin's output
# ---------------------------------------------------------------------------

_TWIN_CACHE: dict[tuple, object] = {}


def _twin(queries, kind, plane):
    key = (kind, plane)
    if key not in _TWIN_CACHE:
        query = queries[kind]
        order = _arrival_order(query)
        overrides, _ = _plane_overrides(plane)
        _TWIN_CACHE[key] = (
            order,
            _run(query, order, checkpoint_interval=50, **overrides),
        )
    return _TWIN_CACHE[key]


class TestArbitraryCrashPointProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        machine=st.integers(min_value=0, max_value=MACHINES - 1),
        fraction=st.floats(min_value=0.05, max_value=1.2),
        kind=st.sampled_from(["equi", "band", "composite"]),
        plane=st.sampled_from(sorted(PLANES)),
    )
    def test_crash_anywhere_recovers(self, queries, machine, fraction, kind, plane):
        query = queries[kind]
        order, twin = _twin(queries, kind, plane)
        overrides, _ = _plane_overrides(plane)
        after_events = max(1, int(twin.events_processed * fraction))
        crashed = _run(
            query,
            order,
            checkpoint_interval=50,
            fault_schedule=[crash_after_events(machine, after_events)],
            **overrides,
        )
        # Anchors past the end of the run are valid no-op cells.
        assert crashed.faults_injected in (0, 1)
        if crashed.faults_injected:
            assert crashed.recovery_time > 0.0
        assert sorted(crashed.outputs) == sorted(twin.outputs), f"{kind}/{plane}"
