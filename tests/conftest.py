"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.data.queries import make_query
from repro.data.tpch import generate_dataset
from repro.testing import assert_run_equivalent  # noqa: F401  (shared helper re-export)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny uniform dataset reused by many tests (deterministic)."""
    return generate_dataset(scale=0.1, skew="Z0", seed=42)


@pytest.fixture(scope="session")
def skewed_dataset():
    """A tiny heavily skewed (Z4) dataset."""
    return generate_dataset(scale=0.1, skew="Z4", seed=42)


@pytest.fixture(scope="session")
def eq5_query(small_dataset):
    return make_query("EQ5", small_dataset)


@pytest.fixture(scope="session")
def bnci_query(small_dataset):
    return make_query("BNCI", small_dataset)


@pytest.fixture()
def rng():
    return random.Random(7)
