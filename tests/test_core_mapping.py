"""Tests for (n, m)-mappings, ILF, optimal mapping search and the grid placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    GridPlacement,
    Mapping,
    bit_reverse,
    ilf_lower_bound,
    is_power_of_two,
    optimal_mapping,
    power_of_two_mappings,
    square_mapping,
)


class TestMapping:
    def test_ilf_formula(self):
        mapping = Mapping(2, 8)
        assert mapping.ilf(100, 800) == pytest.approx(100 / 2 + 800 / 8)
        assert mapping.ilf(100, 800, r_size=2.0) == pytest.approx(200 / 2 + 800 / 8)
        assert mapping.machines == 16

    def test_region_area_independent_of_shape(self):
        for mapping in power_of_two_mappings(16):
            assert mapping.region_area(100, 800) == pytest.approx(100 * 800 / 16)

    def test_neighbours(self):
        assert set(Mapping(4, 4).neighbours()) == {Mapping(2, 8), Mapping(8, 2)}
        assert Mapping(1, 16).neighbours() == [Mapping(2, 8)]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mapping(0, 4)

    def test_fig2_example(self):
        """The paper's Fig. 2: 1 GB × 64 GB on 64 machines."""
        square = Mapping(8, 8)
        wide = Mapping(1, 64)
        r, s = 1.0, 64.0
        assert square.ilf(r, s) == pytest.approx(8.125)   # (8 1/8) GB
        assert wide.ilf(r, s) == pytest.approx(2.0)        # 2 GB
        assert 64 * wide.ilf(r, s) == pytest.approx(128.0)


class TestOptimalMapping:
    def test_all_power_of_two_factorisations(self):
        mappings = power_of_two_mappings(16)
        assert {(m.n, m.m) for m in mappings} == {(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)}
        with pytest.raises(ValueError):
            power_of_two_mappings(12)

    def test_optimal_matches_cardinality_ratio(self):
        assert optimal_mapping(64, 100, 6400) == Mapping(1, 64)
        assert optimal_mapping(64, 6400, 100) == Mapping(64, 1)
        assert optimal_mapping(64, 1000, 1000) == Mapping(8, 8)

    def test_square_mapping(self):
        assert square_mapping(16) == Mapping(4, 4)
        assert square_mapping(64) == Mapping(8, 8)
        mapping = square_mapping(32)
        assert mapping.machines == 32
        with pytest.raises(ValueError):
            square_mapping(20)

    @given(
        st.sampled_from([2, 4, 8, 16, 32, 64, 128]),
        st.integers(1, 10_000),
        st.integers(1, 10_000),
    )
    @settings(max_examples=200)
    def test_optimal_is_minimal_by_exhaustion(self, machines, r_count, s_count):
        best = optimal_mapping(machines, r_count, s_count)
        best_ilf = best.ilf(r_count, s_count)
        for candidate in power_of_two_mappings(machines):
            assert best_ilf <= candidate.ilf(r_count, s_count) + 1e-9

    @given(
        st.sampled_from([2, 4, 8, 16, 32, 64]),
        st.integers(1, 5_000),
        st.integers(1, 5_000),
    )
    @settings(max_examples=200)
    def test_grid_semi_perimeter_within_theorem_3_2_bound(self, machines, r_count, s_count):
        """Theorem 3.2: the grid scheme is within ~1.07× of the continuous bound
        whenever the cardinality ratio is within a factor J."""
        ratio = r_count / s_count
        if not (1.0 / machines <= ratio <= machines):
            return
        best = optimal_mapping(machines, r_count, s_count)
        bound = ilf_lower_bound(machines, r_count, s_count)
        assert best.ilf(r_count, s_count) <= 1.0701 * bound + 1e-9

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0) and not is_power_of_two(12)

    def test_bit_reverse(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(5, 0) == 0


class TestGridPlacement:
    def test_every_cell_assigned_exactly_one_machine(self):
        for mapping in power_of_two_mappings(16):
            placement = GridPlacement(mapping=mapping)
            machines = [placement.machine_at(row, col)
                        for row in range(mapping.n) for col in range(mapping.m)]
            assert sorted(machines) == list(range(16))

    def test_cell_roundtrip(self):
        placement = GridPlacement(mapping=Mapping(4, 8))
        for machine_id in range(32):
            row, col = placement.cell_of(machine_id)
            assert placement.machine_at(row, col) == machine_id

    def test_row_and_col_fanout(self):
        placement = GridPlacement(mapping=Mapping(2, 8))
        row_members = placement.machines_for_row(1)
        assert len(row_members) == 8
        col_members = placement.machines_for_col(3)
        assert len(col_members) == 2
        assert set(row_members) & set(col_members)  # they share exactly one machine

    def test_intervals_partition_unit_range(self):
        placement = GridPlacement(mapping=Mapping(4, 4))
        rows = sorted({placement.r_interval(machine) for machine, _ in placement.cells()})
        assert rows[0][0] == 0.0 and rows[-1][1] == 1.0
        total = sum(high - low for low, high in {placement.r_interval(m) for m, _ in placement.cells()})
        assert total == pytest.approx(1.0)

    def test_dyadic_property_row_coarsens_col_refines(self):
        """Moving (n, m) -> (n/2, 2m): every machine's new row is its old row's
        parent and its new column is one of its old column's children."""
        old = GridPlacement(mapping=Mapping(8, 2))
        new = GridPlacement(mapping=Mapping(4, 4))
        for machine_id in range(16):
            old_row, old_col = old.cell_of(machine_id)
            new_row, new_col = new.cell_of(machine_id)
            assert new_row == old_row // 2
            assert new_col in (2 * old_col, 2 * old_col + 1)

    def test_dyadic_property_symmetric_direction(self):
        old = GridPlacement(mapping=Mapping(4, 4))
        new = GridPlacement(mapping=Mapping(8, 2))
        for machine_id in range(16):
            old_row, old_col = old.cell_of(machine_id)
            new_row, new_col = new.cell_of(machine_id)
            assert new_col == old_col // 2
            assert new_row in (2 * old_row, 2 * old_row + 1)

    def test_row_major_layout(self):
        placement = GridPlacement(mapping=Mapping(4, 4), layout="row_major")
        assert placement.cell_of(0) == (0, 0)
        assert placement.cell_of(5) == (1, 1)
        assert placement.machine_at(2, 3) == 11

    def test_custom_machine_ids(self):
        placement = GridPlacement(mapping=Mapping(2, 2), machine_ids=(10, 11, 12, 13))
        assert set(placement.machines_for_row(0) + placement.machines_for_row(1)) == {10, 11, 12, 13}

    def test_validation(self):
        with pytest.raises(ValueError):
            GridPlacement(mapping=Mapping(3, 4))
        with pytest.raises(ValueError):
            GridPlacement(mapping=Mapping(2, 2), machine_ids=(1, 2))
        with pytest.raises(ValueError):
            GridPlacement(mapping=Mapping(2, 2), layout="diagonal")
        with pytest.raises(IndexError):
            GridPlacement(mapping=Mapping(2, 2)).machine_at(5, 0)
