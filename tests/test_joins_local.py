"""Tests for the local non-blocking join algorithms (SHJ / band / nested loop)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stream import StreamTuple
from repro.joins.local import (
    NestedLoopJoiner,
    SortedBandJoiner,
    SymmetricHashJoiner,
    make_local_joiner,
)
from repro.joins.predicates import (
    BandPredicate,
    EquiPredicate,
    ThetaPredicate,
    cross_join_reference,
)


def _stream(relation, records):
    return [StreamTuple(relation=relation, record=record) for record in records]


def _run_symmetric(joiner, left_tuples, right_tuples, rng):
    """Feed both streams in random order; return the set of matched id pairs."""
    matched = set()
    order = left_tuples + right_tuples
    rng.shuffle(order)
    for item in order:
        matches, _ = joiner.probe(item)
        for other in matches:
            if item.relation == joiner.left_relation:
                matched.add((item.tuple_id, other.tuple_id))
            else:
                matched.add((other.tuple_id, item.tuple_id))
        joiner.insert(item)
    return matched


def _reference_pairs(left_tuples, right_tuples, predicate):
    expected = set()
    for left in left_tuples:
        for right in right_tuples:
            if predicate.matches(left.record, right.record):
                expected.add((left.tuple_id, right.tuple_id))
    return expected


class TestSymmetricHashJoiner:
    def test_produces_exactly_the_join(self, rng):
        predicate = EquiPredicate("k", "k")
        left = _stream("R", [{"k": i % 5} for i in range(30)])
        right = _stream("S", [{"k": i % 7} for i in range(40)])
        joiner = SymmetricHashJoiner(predicate, "R", "S")
        matched = _run_symmetric(joiner, left, right, rng)
        assert matched == _reference_pairs(left, right, predicate)

    def test_requires_equi_predicate(self):
        with pytest.raises(ValueError):
            SymmetricHashJoiner(BandPredicate("k", "k", 1), "R", "S")

    def test_counts_and_removal(self):
        predicate = EquiPredicate("k", "k")
        joiner = SymmetricHashJoiner(predicate, "R", "S")
        item = StreamTuple(relation="R", record={"k": 1})
        joiner.insert(item)
        assert joiner.count("R") == 1
        assert joiner.remove(item)
        assert joiner.count("R") == 0

    def test_unknown_relation_rejected(self):
        joiner = SymmetricHashJoiner(EquiPredicate("k", "k"), "R", "S")
        with pytest.raises(KeyError):
            joiner.insert(StreamTuple(relation="T", record={"k": 1}))

    def test_stored_size_tracks_inserts_and_removals(self):
        predicate = EquiPredicate("k", "k")
        joiner = SymmetricHashJoiner(predicate, "R", "S")
        items = [
            StreamTuple(relation=rel, record={"k": i}, size=1.5)
            for i, rel in enumerate(("R", "S", "R"))
        ]
        for item in items:
            joiner.insert(item)
        assert joiner.stored_size() == pytest.approx(4.5)
        joiner.remove(items[0])
        assert joiner.stored_size() == pytest.approx(3.0)

    def test_restrict_filters_candidates(self):
        predicate = EquiPredicate("k", "k")
        joiner = SymmetricHashJoiner(predicate, "R", "S")
        stored = _stream("S", [{"k": 1}, {"k": 1}])
        for item in stored:
            joiner.insert(item)
        probe = StreamTuple(relation="R", record={"k": 1})
        allowed = {stored[0].tuple_id}
        matches, _ = joiner.probe(probe, restrict=lambda t: t.tuple_id in allowed)
        assert [t.tuple_id for t in matches] == [stored[0].tuple_id]


class TestSortedBandJoiner:
    def test_band_join_matches_reference(self, rng):
        predicate = BandPredicate("v", "v", width=2)
        left = _stream("R", [{"v": rng.randint(0, 30)} for _ in range(25)])
        right = _stream("S", [{"v": rng.randint(0, 30)} for _ in range(25)])
        joiner = SortedBandJoiner(predicate, "R", "S")
        matched = _run_symmetric(joiner, left, right, rng)
        assert matched == _reference_pairs(left, right, predicate)

    def test_requires_band_predicate(self):
        with pytest.raises(ValueError):
            SortedBandJoiner(EquiPredicate("k", "k"), "R", "S")


class TestNestedLoopJoiner:
    def test_theta_join_matches_reference(self, rng):
        predicate = ThetaPredicate(lambda l, r: l["v"] < r["v"], name="l.v < r.v")
        left = _stream("R", [{"v": rng.randint(0, 10)} for _ in range(15)])
        right = _stream("S", [{"v": rng.randint(0, 10)} for _ in range(15)])
        joiner = NestedLoopJoiner(predicate, "R", "S")
        matched = _run_symmetric(joiner, left, right, rng)
        assert matched == _reference_pairs(left, right, predicate)

    def test_probe_work_counts_candidates(self):
        predicate = ThetaPredicate(lambda l, r: True)
        joiner = NestedLoopJoiner(predicate, "R", "S")
        for record in [{"v": i} for i in range(6)]:
            joiner.insert(StreamTuple(relation="S", record=record))
        _, work = joiner.probe(StreamTuple(relation="R", record={"v": 0}))
        assert work == 6


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_local_joiner(EquiPredicate("a", "b"), "R", "S"), SymmetricHashJoiner)
        assert isinstance(make_local_joiner(BandPredicate("a", "b", 1), "R", "S"), SortedBandJoiner)
        assert isinstance(
            make_local_joiner(ThetaPredicate(lambda l, r: True), "R", "S"), NestedLoopJoiner
        )


class TestPropertyBased:
    @given(
        st.lists(st.integers(0, 8), min_size=0, max_size=30),
        st.lists(st.integers(0, 8), min_size=0, max_size=30),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_equi_join_invariant_under_arrival_order(self, left_keys, right_keys, shuffler):
        """The symmetric join output is independent of arrival order."""
        predicate = EquiPredicate("k", "k")
        left = _stream("R", [{"k": key} for key in left_keys])
        right = _stream("S", [{"k": key} for key in right_keys])
        joiner = make_local_joiner(predicate, "R", "S")
        rng = random.Random(shuffler.randint(0, 10_000))
        matched = _run_symmetric(joiner, left, right, rng)
        assert matched == _reference_pairs(left, right, predicate)
        expected_count = len(
            cross_join_reference([t.record for t in left], [t.record for t in right], predicate)
        )
        assert len(matched) == expected_count
