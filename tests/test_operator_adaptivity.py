"""Behavioural tests of the adaptive operator: skew resilience, adaptation,
competitive ratio, migration costs and the performance shapes of §5."""

import random

import pytest

from repro.api import RunConfig
from repro.core.baselines import StaticMidOperator, StaticOptOperator, SymmetricHashOperator
from repro.core.decision import competitive_ratio_bound
from repro.core.mapping import Mapping
from repro.core.operator import AdaptiveJoinOperator, theoretical_optimal_mapping
from repro.data.queries import make_query
from repro.data.tpch import generate_dataset
from repro.engine.stream import fluctuating_order, make_tuples


@pytest.fixture(scope="module")
def midsize_dataset():
    return generate_dataset(scale=0.4, skew="Z4", seed=21)


class TestAdaptation:
    def test_dynamic_converges_to_the_optimal_mapping(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        result = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2)).run()
        assert result.migrations >= 1
        assert result.final_mapping == theoretical_optimal_mapping(query, 16)

    def test_static_mid_keeps_square_mapping(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        result = StaticMidOperator(query, config=RunConfig(machines=16, seed=2)).run()
        assert result.final_mapping == Mapping(4, 4)

    def test_dynamic_ilf_close_to_static_opt_and_below_static_mid(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        dynamic = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2)).run()
        static_mid = StaticMidOperator(query, config=RunConfig(machines=16, seed=2)).run()
        static_opt = StaticOptOperator(query, config=RunConfig(machines=16, seed=2)).run()
        assert dynamic.max_ilf < static_mid.max_ilf
        assert dynamic.max_ilf < 2.5 * static_opt.max_ilf
        assert dynamic.total_storage < static_mid.total_storage

    def test_dynamic_execution_time_between_opt_and_mid(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        dynamic = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2)).run()
        static_mid = StaticMidOperator(query, config=RunConfig(machines=16, seed=2)).run()
        static_opt = StaticOptOperator(query, config=RunConfig(machines=16, seed=2)).run()
        assert static_opt.execution_time <= dynamic.execution_time <= static_mid.execution_time
        # the paper reports up to ~4x gap between Dynamic and StaticMid
        assert static_mid.execution_time / dynamic.execution_time > 1.2

    def test_migration_volume_is_small_relative_to_routing(self, midsize_dataset):
        """Amortised adaptivity cost: state relocation traffic is a small
        fraction of the regular routing traffic (Lemma 4.5)."""
        query = make_query("EQ5", midsize_dataset)
        result = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2)).run()
        assert result.migration_volume < result.routing_volume

    def test_locality_aware_migration_moves_less_than_naive(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        smart = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2, layout="dyadic")).run()
        naive = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2, layout="row_major")).run()
        if smart.migrations and naive.migrations:
            assert smart.migration_volume <= naive.migration_volume


class TestSkewResilience:
    def test_shj_degrades_under_skew_dynamic_does_not(self):
        """Table 2's shape: as skew grows, SHJ's imbalance (max ILF) explodes
        while Dynamic's stays flat."""
        def run(skew, operator_class):
            dataset = generate_dataset(scale=0.4, skew=skew, seed=5)
            query = make_query("EQ5", dataset)
            return operator_class(query, config=RunConfig(machines=16, seed=5)).run()

        shj_uniform = run("Z0", SymmetricHashOperator)
        shj_skewed = run("Z4", SymmetricHashOperator)
        dyn_uniform = run("Z0", AdaptiveJoinOperator)
        dyn_skewed = run("Z4", AdaptiveJoinOperator)

        assert shj_skewed.max_ilf > 2.0 * shj_uniform.max_ilf
        assert dyn_skewed.max_ilf < 1.5 * dyn_uniform.max_ilf
        assert shj_skewed.execution_time > dyn_skewed.execution_time

    def test_shj_wins_without_skew(self):
        """Without skew SHJ avoids replication and beats the grid operator —
        the trade-off the paper acknowledges in §5.1."""
        dataset = generate_dataset(scale=0.4, skew="Z0", seed=5)
        query = make_query("EQ5", dataset)
        shj = SymmetricHashOperator(query, config=RunConfig(machines=16, seed=5)).run()
        dynamic = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=5)).run()
        assert shj.total_storage <= dynamic.total_storage


class TestCompetitiveRatio:
    def test_ratio_stays_bounded_under_fluctuations(self):
        dataset = generate_dataset(scale=0.4, skew="Z0", seed=17)
        query = make_query("FLUCT_SYM", dataset)
        rng = random.Random(17)
        left = make_tuples(query.left_relation, query.left_records, rng)
        right = make_tuples(query.right_relation, query.right_records, rng)
        warmup = 64
        order = fluctuating_order(left, right, fluctuation_factor=4, warmup=warmup)
        operator = AdaptiveJoinOperator(
            query, config=RunConfig(machines=16, seed=17, warmup_tuples=float(warmup))
        )
        result = operator.run(arrival_order=order)
        post_init = [ratio for processed, ratio in result.ratio_series if processed > 4 * warmup]
        assert post_init, "expected ratio samples after adaptivity initiation"
        bound = competitive_ratio_bound(1.0)
        # Allow slack for the sampled (1/J-scaled) statistics and the short
        # propagation window right after each decision (Theorem 4.6 assumes the
        # blocking-free migration finishes before Δ reaches the committed
        # cardinalities, which the simulator approximates but does not enforce).
        assert max(post_init) <= 2.0 * bound
        # and the ratio is within the theoretical bound most of the time
        within = sum(1 for ratio in post_init if ratio <= bound + 0.05)
        assert within / len(post_init) > 0.55

    def test_blocking_actuation_is_not_faster(self, midsize_dataset):
        query = make_query("EQ5", midsize_dataset)
        non_blocking = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2)).run()
        blocking = AdaptiveJoinOperator(query, config=RunConfig(machines=16, seed=2, blocking=True)).run()
        assert non_blocking.execution_time <= blocking.execution_time * 1.1
