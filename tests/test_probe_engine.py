"""Differential tests for the batch-aware probe engine.

The ``scalar`` probe engine defines the reference semantics: per-member
``probe`` (full per-candidate predicate re-validation) followed by ``insert``.
The ``vectorized`` engine must produce, per member, exactly the same matches
and the same charged work units across every predicate kind — including
intra-batch self-join pairs — and the epoch state machine must charge exactly
the same probe work when probing tag-partitioned stores mid-migration.
"""

import random

import pytest
from repro.testing import assert_run_equivalent
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epochs import EpochJoinerState, JoinerPhase
from repro.core.mapping import GridPlacement, Mapping
from repro.core.migration import plan_migration
from repro.engine.stream import StreamTuple
from repro.joins.local import make_local_joiner
from repro.joins.predicates import (
    BandPredicate,
    CompositePredicate,
    EquiPredicate,
    NotEqualPredicate,
    ThetaPredicate,
    cross_join_reference,
)


def _predicate(name):
    if name == "equi":
        return EquiPredicate("k", "k")
    if name == "band":
        return BandPredicate("v", "v", width=2)
    if name == "theta":
        return ThetaPredicate(lambda l, r: l["v"] < r["v"], name="l.v < r.v")
    if name == "notequal":
        return NotEqualPredicate("k", "k")
    if name == "composite-equi":
        return CompositePredicate(
            EquiPredicate("k", "k"), residuals=[lambda l, r: (l["v"] + r["v"]) % 2 == 0]
        )
    if name == "composite-band":
        return CompositePredicate(
            BandPredicate("v", "v", width=3), residuals=[lambda l, r: l["k"] != r["k"]]
        )
    if name == "band-exact":
        # The test workloads draw integer "v" values, so advertising range
        # completeness is truthful; the vectorized engine then skips
        # per-candidate re-validation while the scalar oracle still runs it.
        return BandPredicate("v", "v", width=2, range_complete=True)
    if name == "composite-band-exact":
        return CompositePredicate(
            BandPredicate("v", "v", width=3, range_complete=True),
            residuals=[lambda l, r: l["k"] != r["k"]],
        )
    raise ValueError(name)


PREDICATE_NAMES = [
    "equi",
    "band",
    "theta",
    "notequal",
    "composite-equi",
    "composite-band",
    "band-exact",
    "composite-band-exact",
]


def _mixed_stream(rng, count, keys=5, values=12):
    return [
        StreamTuple(
            relation=rng.choice(("R", "S")),
            record={"k": rng.randrange(keys), "v": rng.randrange(values)},
        )
        for _ in range(count)
    ]


def _pair_ids(item, matches, left_relation="R"):
    if item.relation == left_relation:
        return {(item.tuple_id, m.tuple_id) for m in matches}
    return {(m.tuple_id, item.tuple_id) for m in matches}


def _drive(joiner, items, batch_sizes, rng):
    """Feed ``items`` through probe_batch in randomly sized batches."""
    per_member = []
    pos = 0
    while pos < len(items):
        size = rng.choice(batch_sizes)
        batch = items[pos:pos + size]
        pos += size
        per_member.extend(zip(batch, joiner.probe_batch(batch)))
    return per_member


class TestProbeBatchDifferential:
    @pytest.mark.parametrize("name", PREDICATE_NAMES)
    def test_matches_and_work_equal_scalar_reference(self, name):
        rng = random.Random(hash(name) % 65536)
        items = _mixed_stream(rng, 200)
        scalar = make_local_joiner(_predicate(name), "R", "S", engine="scalar")
        vector = make_local_joiner(_predicate(name), "R", "S", engine="vectorized")
        batch_rng = random.Random(11)
        scalar_out = _drive(scalar, items, (1, 3, 7, 16), batch_rng)
        batch_rng = random.Random(11)
        vector_out = _drive(vector, items, (1, 3, 7, 16), batch_rng)
        for (s_item, (s_matches, s_work)), (v_item, (v_matches, v_work)) in zip(
            scalar_out, vector_out
        ):
            assert s_item is v_item
            assert _pair_ids(s_item, s_matches) == _pair_ids(v_item, v_matches)
            assert s_work == v_work, f"work diverged for {name} on tuple {s_item.tuple_id}"

    @pytest.mark.parametrize("name", PREDICATE_NAMES)
    def test_probe_batch_output_matches_cross_join_reference(self, name):
        rng = random.Random(hash(name) % 1024 + 1)
        items = _mixed_stream(rng, 150)
        predicate = _predicate(name)
        joiner = make_local_joiner(predicate, "R", "S", engine="vectorized")
        produced = set()
        for item, (matches, _work) in _drive(joiner, items, (4, 8, 13), random.Random(2)):
            produced |= _pair_ids(item, matches)
        left = [t for t in items if t.relation == "R"]
        right = [t for t in items if t.relation == "S"]
        expected = {
            (left[li].tuple_id, right[ri].tuple_id)
            for li, ri in cross_join_reference(
                [t.record for t in left], [t.record for t in right], predicate
            )
        }
        assert produced == expected

    def test_probe_batch_equals_probe_then_insert_on_one_joiner(self):
        """probe_batch on one joiner == probe+insert per member on a twin."""
        rng = random.Random(5)
        items = _mixed_stream(rng, 120)
        batched = make_local_joiner(EquiPredicate("k", "k"), "R", "S")
        sequential = make_local_joiner(EquiPredicate("k", "k"), "R", "S")
        for item, (matches, work) in _drive(batched, items, (6,), random.Random(1)):
            seq_matches, seq_work = sequential.probe(item)
            sequential.insert(item)
            assert _pair_ids(item, matches) == _pair_ids(item, seq_matches)
            assert work == seq_work

    def test_unknown_relation_rejected_in_batch(self):
        joiner = make_local_joiner(EquiPredicate("k", "k"), "R", "S")
        with pytest.raises(KeyError):
            joiner.probe_batch([StreamTuple(relation="T", record={"k": 1, "v": 0})])


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 6), st.integers(0, 9)),
            min_size=0,
            max_size=60,
        ),
        st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_equi_batches_invariant(self, spec, batch_size):
        """Any batch partitioning yields the scalar per-member results."""
        items = [
            StreamTuple(relation="R" if is_left else "S", record={"k": k, "v": v})
            for is_left, k, v in spec
        ]
        scalar = make_local_joiner(EquiPredicate("k", "k"), "R", "S", engine="scalar")
        vector = make_local_joiner(EquiPredicate("k", "k"), "R", "S", engine="vectorized")
        scalar_results = scalar.probe_batch(items)  # one batch == full sequence
        vector_results = []
        for pos in range(0, len(items), batch_size):
            vector_results.extend(vector.probe_batch(items[pos:pos + batch_size]))
        assert len(scalar_results) == len(vector_results)
        for item, (s_matches, s_work), (v_matches, v_work) in zip(
            items, scalar_results, vector_results
        ):
            assert _pair_ids(item, s_matches) == _pair_ids(item, v_matches)
            assert s_work == v_work

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-20, 20)), min_size=0, max_size=50
        ),
        st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_band_batches_invariant(self, spec, width):
        items = [
            StreamTuple(relation="R" if is_left else "S", record={"v": v, "k": 0})
            for is_left, v in spec
        ]
        predicate = BandPredicate("v", "v", width=width)
        scalar = make_local_joiner(predicate, "R", "S", engine="scalar")
        vector = make_local_joiner(predicate, "R", "S", engine="vectorized")
        scalar_results = scalar.probe_batch(items)
        vector_results = vector.probe_batch(items)
        for item, (s_matches, s_work), (v_matches, v_work) in zip(
            items, scalar_results, vector_results
        ):
            assert _pair_ids(item, s_matches) == _pair_ids(item, v_matches)
            assert s_work == v_work

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-50, 50)), min_size=0, max_size=50
        ),
        st.integers(0, 7),
        st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_complete_band_matches_scalar_oracle(self, spec, width, batch_size):
        """For integer-keyed bands, the range-complete fast path (no
        per-candidate re-validation) must be indistinguishable from the
        scalar oracle, which always re-validates — for any workload, width
        and batch partitioning."""
        items = [
            StreamTuple(relation="R" if is_left else "S", record={"v": v, "k": 0})
            for is_left, v in spec
        ]
        predicate = BandPredicate("v", "v", width=width, range_complete=True)
        scalar = make_local_joiner(predicate, "R", "S", engine="scalar")
        vector = make_local_joiner(predicate, "R", "S", engine="vectorized")
        scalar_results = scalar.probe_batch(items)
        vector_results = []
        for pos in range(0, len(items), batch_size):
            vector_results.extend(vector.probe_batch(items[pos:pos + batch_size]))
        for item, (s_matches, s_work), (v_matches, v_work) in zip(
            items, scalar_results, vector_results
        ):
            assert _pair_ids(item, s_matches) == _pair_ids(item, v_matches)
            assert s_work == v_work


class TestEngineRunEquivalence:
    """Run-level scalar-vs-vectorized pin through the shared helper.

    The scalar engine is the differential-testing oracle: on any full
    operator run it must produce a bit-identical simulation — outputs,
    migration sequence and timing, per-machine busy chains, probe work,
    latency and network volumes (``assert_run_equivalent`` with full
    strictness).  The per-batch/per-batch-size sweep lives in
    ``test_batching_equivalence.py``; this pins the engines on both data
    planes at operator defaults.
    """

    @pytest.mark.parametrize("query_name", ["EQ5", "BNCI"])
    @pytest.mark.parametrize("batching", ["fixed", "adaptive"])
    def test_scalar_oracle_is_bit_identical(self, small_dataset, query_name, batching):
        from repro.api import JoinSession, RunConfig
        from repro.data.queries import make_query
        from repro.engine.stream import interleave_streams, make_tuples

        query = make_query(query_name, small_dataset)
        rng = random.Random(5)
        left = make_tuples(
            query.left_relation, query.left_records, rng, query.left_tuple_size
        )
        right = make_tuples(
            query.right_relation, query.right_records, rng, query.right_tuple_size
        )
        order = interleave_streams(left, right, rng)
        results = {}
        for engine in ("scalar", "vectorized"):
            config = RunConfig(
                machines=8, seed=5, warmup_tuples=16, probe_engine=engine,
                batching=batching,
            )
            results[engine] = JoinSession(query, config=config).run(
                arrival_order=order, collect_outputs=True
            )
        assert_run_equivalent(
            results["scalar"], results["vectorized"],
            label=f"{query_name}/{batching}",
        )


def _shadow_candidate_count(stored_by_tag, item):
    """Candidates a union-store probe of ``item`` would inspect (reference)."""
    key = item.record["k"]
    count = 0
    for members in stored_by_tag.values():
        for member in members:
            if member.relation != item.relation and member.record["k"] == key:
                count += 1
    return count


class TestMidMigrationTagPartitions:
    """All four tag sets live: partitioned probes charge seed-exact work."""

    def _migrating_state(self):
        old_placement = GridPlacement(mapping=Mapping(2, 2))
        new_placement = GridPlacement(mapping=Mapping(1, 4))
        plan = plan_migration(old_placement, new_placement)
        predicate = EquiPredicate("k", "k")
        store = make_local_joiner(predicate, "R", "S")
        state = EpochJoinerState(
            machine_id=0, store=store, num_reshufflers=2, left_relation="R"
        )
        return state, plan, predicate

    def _populate_all_tag_sets(self, state, plan, rng):
        """Returns {tag: [tuples]} mirroring the state's partitions."""
        stored = {"tau": [], "delta": [], "delta_prime": [], "mu": []}
        # τ: normal-phase arrivals (epoch 0).
        for _ in range(12):
            item = StreamTuple(
                relation=rng.choice(("R", "S")),
                record={"k": rng.randrange(4), "v": 0},
                salt=rng.random(),
            )
            state.handle_data(item)
            stored["tau"].append(item)
        # First signal (1 of 2): τ is split into keep/drop partitions.
        state.handle_signal(1, plan, "reshuffler-0")
        assert state.phase is JoinerPhase.MIGRATING
        # Δ: old-epoch tuples during the migration.
        for _ in range(8):
            item = StreamTuple(
                relation=rng.choice(("R", "S")),
                record={"k": rng.randrange(4), "v": 1},
                salt=rng.random(),
                epoch=0,
            )
            state.handle_data(item)
            stored["delta"].append(item)
        # µ: relocations from other joiners.
        for _ in range(6):
            item = StreamTuple(
                relation=rng.choice(("R", "S")),
                record={"k": rng.randrange(4), "v": 2},
                salt=rng.random(),
                epoch=0,
            )
            state.handle_migrated(item)
            stored["mu"].append(item)
        # Δ': new-epoch tuples.
        for _ in range(8):
            item = StreamTuple(
                relation=rng.choice(("R", "S")),
                record={"k": rng.randrange(4), "v": 3},
                salt=rng.random(),
                epoch=1,
            )
            state.handle_data(item)
            stored["delta_prime"].append(item)
        return stored

    def test_probe_work_is_union_store_exact(self):
        """Each protocol probe charges max(candidates in the whole state, 1)
        per tuple-set join — identical to the unpartitioned union store."""
        rng = random.Random(17)
        state, plan, predicate = self._migrating_state()
        stored = self._populate_all_tag_sets(state, plan, rng)
        for tags_live in stored.values():
            assert tags_live, "scenario must exercise every tag set"

        # A Δ' probe joins twice: against µ ∪ Δ' and against Keep(τ ∪ Δ).
        probe = StreamTuple(
            relation="R", record={"k": 1, "v": 9}, salt=rng.random(), epoch=1
        )
        union_count = _shadow_candidate_count(stored, probe)
        actions = state.handle_data(probe)
        assert actions.probe_work == 2 * max(union_count, 1)
        stored["delta_prime"].append(probe)

        # A Δ probe joins against τ ∪ Δ, plus Δ' when the plan keeps it.
        probe = StreamTuple(
            relation="S", record={"k": 2, "v": 9}, salt=rng.random(), epoch=0
        )
        union_count = _shadow_candidate_count(stored, probe)
        keep = plan.keeps(0, "S", probe.salt)
        actions = state.handle_data(probe)
        expected_probes = 2 if keep else 1
        assert actions.probe_work == expected_probes * max(union_count, 1)

    def test_batch_falls_back_mid_migration(self):
        """handle_data_batch mid-migration equals per-tuple handle_data."""
        rng = random.Random(23)
        state_a, plan_a, _ = self._migrating_state()
        state_b, plan_b, _ = self._migrating_state()
        stored = self._populate_all_tag_sets(state_a, plan_a, rng)
        # Replay the exact same tuples into the twin state.
        state_b_events = stored["tau"]
        for item in state_b_events:
            state_b.handle_data(item)
        state_b.handle_signal(1, plan_b, "reshuffler-0")
        for item in stored["delta"]:
            state_b.handle_data(item)
        for item in stored["mu"]:
            state_b.handle_migrated(item)
        for item in stored["delta_prime"]:
            state_b.handle_data(item)

        batch = [
            StreamTuple(
                relation=rng.choice(("R", "S")),
                record={"k": rng.randrange(4), "v": 7},
                salt=0.3 + 0.05 * i,
                epoch=1,
            )
            for i in range(6)
        ]
        batched_actions = state_a.handle_data_batch(batch)
        singly_actions = [state_b.handle_data(item) for item in batch]
        for got, want in zip(batched_actions, singly_actions):
            assert got.probe_work == want.probe_work
            got_pairs = {(l.tuple_id, r.tuple_id) for l, r in got.matches}
            want_pairs = {(l.tuple_id, r.tuple_id) for l, r in want.matches}
            assert got_pairs == want_pairs
            assert got.stored == want.stored

    def test_finalize_merges_partitions_and_discards_drops(self):
        rng = random.Random(31)
        state, plan, _ = self._migrating_state()
        stored = self._populate_all_tag_sets(state, plan, rng)
        before = state.stored_count()
        # Close the migration: second signal + all expected end markers.
        state.handle_signal(1, plan, "reshuffler-1")
        assert state.phase is JoinerPhase.DRAINED
        for sender in plan.senders_to(0):
            state.register_migration_end(sender)
        result = state.finalize()
        assert state.phase is JoinerPhase.NORMAL
        assert state.current_epoch == 1
        # Conservation: merged survivors + discards == everything stored.
        assert state.stored_count() + len(result.discarded) == before
        # Discards are exactly the old tuples the plan does not keep.
        old = stored["tau"] + stored["delta"]
        expected_drop = {
            t.tuple_id
            for t in old
            if not plan.keeps(0, "R" if t.relation == "R" else "S", t.salt)
        }
        assert {t.tuple_id for t in result.discarded} == expected_drop
        # The merged store serves post-migration probes over all survivors.
        probe = StreamTuple(relation="R", record={"k": 3, "v": 9}, epoch=1, salt=0.9)
        survivors = {
            t.tuple_id
            for members in (
                [t for t in old if t.tuple_id not in expected_drop],
                stored["mu"],
                stored["delta_prime"],
            )
            for t in members
            if t.relation == "S" and t.record["k"] == 3
        }
        actions = state.handle_data(probe)
        assert {r.tuple_id for _l, r in actions.matches} == survivors
