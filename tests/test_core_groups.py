"""Tests for the power-of-two group decomposition (general cluster sizes, §4.2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import GroupedCluster, power_of_two_decomposition
from repro.core.mapping import Mapping


class TestDecomposition:
    def test_binary_expansion(self):
        assert power_of_two_decomposition(20) == [16, 4]
        assert power_of_two_decomposition(22) == [16, 4, 2]
        assert power_of_two_decomposition(64) == [64]
        assert power_of_two_decomposition(1) == [1]

    @given(st.integers(1, 4096))
    @settings(max_examples=200)
    def test_sums_to_machines_and_all_powers_of_two(self, machines):
        sizes = power_of_two_decomposition(machines)
        assert sum(sizes) == machines
        assert all(size & (size - 1) == 0 for size in sizes)
        assert sizes == sorted(sizes, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            power_of_two_decomposition(0)


class TestGroupedCluster:
    def test_groups_partition_the_machines(self):
        cluster = GroupedCluster(machines=22)
        ids = [m for group in cluster.groups for m in group.machine_ids]
        assert sorted(ids) == list(range(22))
        assert cluster.group_count == 3

    def test_storage_probabilities(self):
        cluster = GroupedCluster(machines=20)
        probabilities = cluster.storage_probabilities()
        assert probabilities == pytest.approx([16 / 20, 4 / 20])
        assert sum(probabilities) == pytest.approx(1.0)

    def test_largest_group_bound(self):
        """§4.2.2: the largest group holds at least half the machines, so the
        storage competitive ratio is at most doubled."""
        for machines in (3, 20, 22, 100, 127):
            cluster = GroupedCluster(machines=machines)
            assert cluster.largest_group().size >= machines / 2
            assert cluster.expected_storage_ratio_bound() <= 2.0

    def test_storing_group_distribution(self):
        rng = random.Random(0)
        cluster = GroupedCluster(machines=20)
        counts = {0: 0, 1: 0}
        for _ in range(5000):
            counts[cluster.storing_group(rng.random()).index] += 1
        assert counts[0] / 5000 == pytest.approx(0.8, abs=0.05)

    def test_routing_covers_one_row_or_column_of_every_group(self):
        cluster = GroupedCluster(machines=20)
        destinations = cluster.route(salt=0.37, is_left=True)
        machines = [machine for machine, _ in destinations]
        assert len(machines) == len(set(machines))
        assert len(machines) == cluster.routing_fanout(is_left=True)
        # stored in exactly one group
        stored_machines = [machine for machine, store in destinations if store]
        storing_group = cluster.storing_group(0.37)
        assert stored_machines
        assert all(machine in storing_group.machine_ids for machine in stored_machines)

    def test_every_pair_of_tuples_meets_on_some_machine(self):
        """Result completeness: for any (r, s) salt pair, some machine both
        stores one side and receives the other for joining."""
        rng = random.Random(1)
        cluster = GroupedCluster(machines=22)
        for _ in range(300):
            r_salt, s_salt = rng.random(), rng.random()
            r_dests = cluster.route(r_salt, is_left=True)
            s_dests = cluster.route(s_salt, is_left=False)
            r_stored = {m for m, store in r_dests if store}
            s_stored = {m for m, store in s_dests if store}
            r_visited = {m for m, _ in r_dests}
            s_visited = {m for m, _ in s_dests}
            # the earlier-stored tuple must be visited by the later one
            assert (r_stored & s_visited) or (s_stored & r_visited)

    def test_adapt_group_changes_mapping(self):
        cluster = GroupedCluster(machines=20)
        new_mapping = cluster.adapt_group(0, r_count=10, s_count=16000)
        assert new_mapping == Mapping(1, 16)
        assert cluster.groups[0].mapping == new_mapping

    def test_power_of_two_cluster_is_single_group(self):
        cluster = GroupedCluster(machines=64)
        assert cluster.group_count == 1
        assert cluster.routing_fanout(is_left=True) == cluster.groups[0].mapping.m
