"""Unit and robustness tests for the executor plane.

The conformance suite (``tests/test_executor_conformance.py``) pins the
threaded backend's bit-exactness against the simulated oracle; this file pins
the mechanics underneath it:

* the robustness contract — a poisoned handler (raises) or a deadlocked
  handler (never returns) surfaces as a bounded :class:`RuntimeError` naming
  the stuck machine and its queue depths, never a silent hang;
* worker-fleet plumbing — round-robin machine ownership, fleet clamping,
  constructor validation, handler placement on owning threads, cumulative
  per-worker stats;
* the executor registry and its strategy objects.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import RunConfig, executors
from repro.engine.executor import (
    DEFAULT_WORKER_TIMEOUT,
    SimulatedExecutor,
    ThreadedExecutor,
    ThreadedSimulator,
)
from repro.engine.simulator import Simulator
from repro.engine.task import Message, MessageKind, Task


class _RecordingTask(Task):
    """Records which thread ran its handler."""

    def __init__(self, name, machine_id=-1):
        super().__init__(name, machine_id=machine_id)
        self.threads = []

    def handle(self, message, ctx):
        self.threads.append(threading.current_thread())


class _PoisonedTask(Task):
    def handle(self, message, ctx):
        raise ValueError("poisoned handler")


class _DeadlockedTask(Task):
    """A handler that blocks until ``release`` is set (never, in the test)."""

    def __init__(self, name, machine_id):
        super().__init__(name, machine_id=machine_id)
        self.release = threading.Event()

    def handle(self, message, ctx):
        self.release.wait()


def _data(sender="test"):
    return Message(kind=MessageKind.DATA, sender=sender)


# ---------------------------------------------------------------------------
# Robustness: poisoned and deadlocked handlers
# ---------------------------------------------------------------------------


class TestRobustness:
    def test_poisoned_handler_surfaces_with_cause(self):
        simulator = ThreadedSimulator(num_machines=2)
        simulator.register(_PoisonedTask("victim", machine_id=1))
        simulator.schedule(0.0, "victim", _data())
        with pytest.raises(RuntimeError, match=r"machine 1 worker died") as info:
            simulator.run()
        # The original handler exception rides along as __cause__ and the
        # message carries the queue depths needed to debug the wedge.
        assert isinstance(info.value.__cause__, ValueError)
        assert "queue depth" in str(info.value)
        # The error path tore the fleet down; nothing is left running.
        assert simulator._workers is None

    def test_deadlocked_handler_raises_within_bound(self):
        simulator = ThreadedSimulator(num_machines=2, worker_timeout=0.5)
        task = _DeadlockedTask("wedged", machine_id=0)
        simulator.register(task)
        simulator.schedule(0.0, "wedged", _data())
        begin = time.perf_counter()
        try:
            with pytest.raises(RuntimeError, match=r"machine 0 is stuck") as info:
                simulator.run()
        finally:
            task.release.set()  # let the daemon worker exit
        elapsed = time.perf_counter() - begin
        # Bounded: one handler wait plus the best-effort shutdown join,
        # nowhere near a hang (and far under the 60s default).
        assert elapsed < 10.0
        assert "did not finish a handler within 0.5s" in str(info.value)
        assert "inbox depth" in str(info.value)

    def test_poisoned_simulated_run_raises_plain_exception(self):
        """The oracle backend keeps its existing behaviour: the handler
        exception propagates undecorated."""
        simulator = Simulator(num_machines=1)
        simulator.register(_PoisonedTask("victim", machine_id=0))
        simulator.schedule(0.0, "victim", _data())
        with pytest.raises(ValueError, match="poisoned handler"):
            simulator.run()


# ---------------------------------------------------------------------------
# Fleet plumbing
# ---------------------------------------------------------------------------


class TestFleetPlumbing:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            ThreadedSimulator(num_machines=2, num_workers=0)
        with pytest.raises(ValueError, match="worker_timeout"):
            ThreadedSimulator(num_machines=2, worker_timeout=0.0)

    def test_fleet_clamped_to_machine_count(self):
        simulator = ThreadedSimulator(num_machines=3, num_workers=16)
        assert simulator.num_workers == 3

    def test_round_robin_ownership(self):
        simulator = ThreadedSimulator(num_machines=5, num_workers=2)
        assert simulator._owner == [0, 1, 0, 1, 0]

    def test_default_fleet_is_one_worker_per_machine(self):
        simulator = ThreadedSimulator(num_machines=4)
        assert simulator.num_workers == 4
        assert simulator._owner == [0, 1, 2, 3]

    def test_handlers_run_on_owning_worker_threads(self):
        simulator = ThreadedSimulator(num_machines=2)
        hosted = _RecordingTask("hosted", machine_id=1)
        off_cluster = _RecordingTask("loose", machine_id=-1)
        simulator.register(hosted)
        simulator.register(off_cluster)
        simulator.schedule(0.0, "hosted", _data())
        simulator.schedule(0.0, "loose", _data())
        simulator.run()
        (worker_thread,) = hosted.threads
        assert worker_thread is not threading.main_thread()
        assert worker_thread.name == "repro-executor-worker-1"
        # Off-cluster tasks (sources, collectors) stay on the coordinator.
        assert off_cluster.threads == [threading.current_thread()]

    def test_stuck_worker_stats_reported_lost_not_folded(self):
        """A worker wedged mid-handler at shutdown must not have its
        wall_time/handlers_run counters folded (they are being mutated
        concurrently — folding would publish torn values); the shutdown
        error names it and reports the stats as lost."""
        simulator = ThreadedSimulator(num_machines=2, worker_timeout=0.3)
        release = threading.Event()
        finished = threading.Event()
        simulator._start_workers()
        workers = simulator._workers
        # Worker 0 completes one unit of work; worker 1 wedges mid-handler.
        workers[0].inbound.put((finished.set, ()))
        workers[1].inbound.put((release.wait, ()))
        assert finished.wait(5.0)
        try:
            with pytest.raises(RuntimeError, match="failed to shut down") as info:
                simulator._stop_workers(True)
        finally:
            release.set()
        assert "worker 1" in str(info.value)
        assert "lost" in str(info.value)
        # The joined worker's stats folded; the stuck worker's did not.
        assert simulator.worker_events[0] == 1
        assert simulator.worker_events[1] == 0
        assert simulator.worker_wall[1] == 0.0
        assert simulator._workers is None

    def test_overlap_counters_start_at_zero(self):
        simulator = ThreadedSimulator(num_machines=2)
        assert simulator.overlap_dispatches == 0
        assert simulator.peak_inflight == 0

    def test_worker_stats_accumulate_across_runs(self):
        simulator = ThreadedSimulator(num_machines=2)
        task = _RecordingTask("hosted", machine_id=0)
        simulator.register(task)
        for round_number in range(3):
            simulator.schedule(float(round_number), "hosted", _data())
            simulator.run()
        assert simulator.worker_events[0] == 3
        assert simulator.worker_events[1] == 0
        assert simulator.worker_wall[0] > 0.0
        assert simulator.wall_time > 0.0
        # The fleet is torn down between runs (streaming pushes re-enter).
        assert simulator._workers is None


# ---------------------------------------------------------------------------
# Strategy objects and the registry
# ---------------------------------------------------------------------------


class TestExecutorRegistry:
    def test_registered_backends(self):
        assert set(executors.names()) >= {"simulated", "threads"}
        assert executors.get("simulated") is SimulatedExecutor
        assert executors.get("threads") is ThreadedExecutor

    def test_simulated_builds_plain_simulator(self):
        simulator = SimulatedExecutor().build_simulator(num_machines=2, seed=9)
        assert type(simulator) is Simulator
        assert len(simulator.machines) == 2

    def test_threads_from_config_picks_up_num_workers(self):
        config = RunConfig(machines=4, executor="threads", num_workers=2)
        executor = executors.get(config.executor).from_config(config)
        assert isinstance(executor, ThreadedExecutor)
        simulator = executor.build_simulator(num_machines=4)
        assert isinstance(simulator, ThreadedSimulator)
        assert simulator.num_workers == 2
        assert simulator.worker_timeout == DEFAULT_WORKER_TIMEOUT

    def test_threads_from_config_picks_up_worker_timeout(self):
        config = RunConfig(machines=4, executor="threads", worker_timeout=1.5)
        executor = executors.get(config.executor).from_config(config)
        simulator = executor.build_simulator(num_machines=4)
        assert simulator.worker_timeout == 1.5

    def test_worker_timeout_config_validation(self):
        # Parallel-only knob: the serial oracle has no workers to bound.
        with pytest.raises(ValueError, match="worker_timeout"):
            RunConfig(machines=4, worker_timeout=1.5)
        with pytest.raises(ValueError, match="worker_timeout"):
            RunConfig(machines=4, executor="threads", worker_timeout=0.0)
        with pytest.raises(ValueError, match="worker_timeout"):
            RunConfig(machines=4, executor="threads", worker_timeout="fast")

    def test_worker_timeout_json_round_trip(self):
        config = RunConfig(machines=4, executor="threads", worker_timeout=2.5)
        rebuilt = RunConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.worker_timeout == 2.5
