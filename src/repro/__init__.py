"""repro — reproduction of "Scalable and Adaptive Online Joins" (VLDB 2014).

The package implements the paper's adaptive, skew-resilient online theta-join
dataflow operator together with every substrate its evaluation depends on:

* :mod:`repro.core`    — the operator (mapping schemes, controller, migration,
  epoch protocol) and the static/SHJ baselines,
* :mod:`repro.engine`  — a deterministic discrete-event simulation of a
  shared-nothing cluster (the Storm/Squall stand-in),
* :mod:`repro.joins`   — local non-blocking join algorithms and predicates,
* :mod:`repro.storage` — in-memory + spill stores (the BerkeleyDB stand-in),
* :mod:`repro.data`    — TPC-H-like generation with Zipf skew and the
  evaluation queries,
* :mod:`repro.bench`   — the experiment harness regenerating every table and
  figure of §5,
* :mod:`repro.api`     — the public session API: typed
  :class:`~repro.api.RunConfig`, the :class:`~repro.api.JoinSession` facade
  (materialised and streaming ingestion) and the operator/probe-engine/
  predicate registries.

Quickstart::

    from repro import JoinSession, RunConfig, generate_dataset, make_query

    dataset = generate_dataset(scale=0.5, skew="Z4", seed=7)
    query = make_query("EQ5", dataset)
    session = JoinSession(query, config=RunConfig(machines=16, seed=7))
    result = session.run()                      # materialised
    session.push(left=chunk_a, right=chunk_b)   # ... or streaming
    print(result.summary_row())
"""

from repro.api import (
    JoinSession,
    RunConfig,
    StreamSnapshot,
    build_operator,
    register_operator,
    register_predicate,
    register_probe_engine,
)
from repro.core import (
    AdaptiveJoinOperator,
    GridJoinOperator,
    JoinMatrix,
    Mapping,
    MigrationController,
    RunResult,
    StaticMidOperator,
    StaticOptOperator,
    SymmetricHashOperator,
    make_operator,
    optimal_mapping,
    square_mapping,
)
from repro.data import JoinQuery, TpchDataset, generate_dataset, make_query
from repro.engine import CostModel, Simulator
from repro.joins import (
    BandPredicate,
    EquiPredicate,
    JoinPredicate,
    ThetaPredicate,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveJoinOperator",
    "BandPredicate",
    "CostModel",
    "EquiPredicate",
    "GridJoinOperator",
    "JoinMatrix",
    "JoinPredicate",
    "JoinQuery",
    "JoinSession",
    "Mapping",
    "MigrationController",
    "RunConfig",
    "RunResult",
    "Simulator",
    "StaticMidOperator",
    "StaticOptOperator",
    "StreamSnapshot",
    "SymmetricHashOperator",
    "ThetaPredicate",
    "TpchDataset",
    "build_operator",
    "generate_dataset",
    "make_operator",
    "make_query",
    "optimal_mapping",
    "register_operator",
    "register_predicate",
    "register_probe_engine",
    "square_mapping",
    "__version__",
]
