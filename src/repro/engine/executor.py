"""The executor plane: strategy backends that run a registered topology.

Every plane shipped before this module (batched, adaptive, wire-merged,
columnar, fault-tolerant) executed on one single-threaded virtual-time
:class:`~repro.engine.simulator.Simulator` — the system *modelled* a cluster
but was not one.  The executor plane is the seam between those two worlds:

* :class:`SimulatedExecutor` (``executor="simulated"``, the default) is the
  existing simulator, unchanged — it remains the conformance oracle for
  every other backend.
* :class:`ThreadedExecutor` (``executor="threads"``) is a real-clock backend:
  each :class:`~repro.engine.machine.Machine` is owned by a worker thread
  with a shared-nothing inbound queue, and task handlers — the reshuffle,
  probe and store work — execute on the owning worker, not on the
  coordinator.  Outputs, migration decisions and every virtual-time quantity
  are bit-identical to the simulator oracle; only wall-clock-derived stats
  (:attr:`Simulator.wall_time`, the per-worker ``worker_wall`` /
  ``worker_events`` breakdown) differ between backends.

Determinism argument
--------------------

The simulator's event metadata is already exactly what a parallel backend
needs to stay deterministic:

1. every (sender machine, destination task) link is FIFO and carries a
   monotone per-link sequence number, and
2. every event is keyed by the plane-invariant ``(time, rank)`` pair — a pure
   function of the message flow, never of the wall-clock order in which
   handlers happened to run (see :mod:`repro.engine.simulator`).

Those two facts give each receiver a total merge order over its inbound
channels, and the union of the per-receiver orders is the global ``(time,
rank)`` heap order.  The threaded backend therefore keeps the heap as its
**conservative dispatch frontier**: the coordinator pops events in ``(time,
rank)`` order and hands each machine-hosted handler to the worker that owns
the machine, blocking until the handler completes before advancing the
frontier.  The frontier is currently *sequentially consistent* (one handler
in flight at a time) because handlers share one simulation-wide RNG and the
per-link rank counters — the next widening step is splitting those per
machine so that handlers below the lookahead horizon (one network latency)
can overlap; the ownership and queue plumbing here already supports it.

Ownership is shared-nothing: a machine's tasks, stores and inbox are touched
only by its owning worker while a handler runs, and only by the coordinator
(delivery, settle, tick bookkeeping) while no handler is in flight on that
machine.  The hand-off points are the workers' queues, whose internal locks
order memory between the two sides.

Robustness: a handler that raises or never returns must never hang the run.
Dispatch waits are bounded by ``worker_timeout``; on expiry the coordinator
raises a :class:`RuntimeError` naming the stuck machine and its queue
depths, and a handler exception is re-raised wrapped the same way (with the
original as ``__cause__``).
"""

from __future__ import annotations

import queue
import threading
import time

from repro.api.registry import register_executor
from repro.engine.machine import CostModel
from repro.engine.simulator import Simulator
from repro.engine.task import Message, Task

#: Bound on any single coordinator wait for a worker: handler completion at
#: dispatch, thread exit at shutdown.  Generous — virtual-time handlers run
#: in microseconds; anything near this bound is a deadlocked or poisoned
#: handler, and surfacing it beats hanging CI forever.
DEFAULT_WORKER_TIMEOUT = 60.0

#: Sentinel asking a worker thread to exit its loop.
_SHUTDOWN = object()

#: Completion token of a successfully executed handler (exceptions travel as
#: themselves).
_DONE = object()


class Executor:
    """Strategy interface: how a registered topology's handlers execute.

    An executor builds the :class:`Simulator` (or subclass) an operator run
    executes on; everything else — topology registration, feeding, result
    harvesting — is executor-agnostic and stays in
    :meth:`repro.core.operator.GridJoinOperator.build_execution`.

    Class attributes:
        name: the registry name (``RunConfig.executor`` values).
        parallel: whether the backend accepts the ``num_workers`` knob.
    """

    name = "?"
    parallel = False

    @classmethod
    def from_config(cls, config) -> "Executor":
        """Build an executor instance from a :class:`~repro.api.config.RunConfig`.

        The base implementation takes no knobs; parallel backends override
        this to pick up ``num_workers``.
        """
        return cls()

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> Simulator:
        """A fresh execution substrate for one run.  Implemented by backends."""
        raise NotImplementedError


class SimulatedExecutor(Executor):
    """The default backend: the single-threaded virtual-time simulator.

    This is the conformance oracle every other backend is pinned against —
    semantics are exactly those of the pre-executor-plane ``Simulator``.
    """

    name = "simulated"

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> Simulator:
        return Simulator(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
        )


class _MachineWorker(threading.Thread):
    """One worker thread owning a disjoint set of machines.

    The worker consumes ``(function, args)`` work items from its private
    ``inbound`` queue (shared-nothing: no other thread ever reads it),
    executes them, and reports per-item completion on ``completions`` —
    either the :data:`_DONE` token or the raised exception.  A raising
    handler does not kill the thread: the loop keeps serving so shutdown
    stays orderly; the coordinator aborts the run instead.
    """

    def __init__(self, worker_id: int, machine_ids: tuple[int, ...]) -> None:
        super().__init__(name=f"repro-executor-worker-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.machine_ids = machine_ids
        self.inbound: queue.SimpleQueue = queue.SimpleQueue()
        self.completions: queue.SimpleQueue = queue.SimpleQueue()
        self.wall_time = 0.0
        self.handlers_run = 0

    def run(self) -> None:  # pragma: no cover - exercised via ThreadedSimulator
        get = self.inbound.get
        put = self.completions.put
        clock = time.perf_counter
        while True:
            item = get()
            if item is _SHUTDOWN:
                return
            function, args = item
            begin = clock()
            try:
                function(*args)
            except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                self.wall_time += clock() - begin
                put(exc)
            else:
                self.wall_time += clock() - begin
                self.handlers_run += 1
                put(_DONE)


class ThreadedSimulator(Simulator):
    """Real-clock backend: machine-hosted handlers run on worker threads.

    Scheduling, delivery, wire settling and the fault plane stay on the
    coordinator (this object's :meth:`run` loop); the two handler execution
    points — :meth:`_execute` and :meth:`_execute_drained` — dispatch to the
    worker owning the target machine and block until completion, so the
    global ``(time, rank)`` order of handler executions is exactly the
    simulator oracle's and every virtual-time quantity is bit-identical.
    Off-cluster tasks (sources, collectors) have no machine to own them and
    execute on the coordinator, as before.

    Args:
        num_workers: worker threads to spawn; defaults to one per machine.
            Fewer workers than machines assigns machines round-robin — each
            machine still has exactly one owning worker, so the
            shared-nothing ownership discipline is unchanged.
        worker_timeout: bound (in real seconds) on any single wait for a
            worker; see the module docstring's robustness contract.
    """

    def __init__(
        self,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
        num_workers: int | None = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        super().__init__(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
        )
        if num_workers is None:
            num_workers = max(1, num_machines)
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be > 0, got {worker_timeout}")
        # More workers than machines would leave idle threads with no
        # machines to own; clamp silently (a 4-machine run with the default
        # 8-worker config is not an error).
        self.num_workers = min(num_workers, num_machines) if num_machines else 1
        self.worker_timeout = worker_timeout
        #: machine id -> worker index (round-robin ownership).
        self._owner = [i % self.num_workers for i in range(num_machines)]
        self._workers: list[_MachineWorker] | None = None
        #: Cumulative per-worker handler wall-clock seconds / handler counts,
        #: carried across runs (streaming pushes re-enter :meth:`run`).
        self.worker_wall = [0.0] * self.num_workers
        self.worker_events = [0] * self.num_workers

    # -------------------------------------------------------- worker lifecycle

    def _start_workers(self) -> None:
        workers = []
        for worker_id in range(self.num_workers):
            owned = tuple(
                machine_id
                for machine_id, owner in enumerate(self._owner)
                if owner == worker_id
            )
            worker = _MachineWorker(worker_id, owned)
            worker.start()
            workers.append(worker)
        self._workers = workers

    def _stop_workers(self, graceful: bool) -> None:
        workers, self._workers = self._workers, None
        if workers is None:
            return
        stuck = []
        for worker in workers:
            worker.inbound.put(_SHUTDOWN)
        for worker in workers:
            # On the error path (a handler raised or timed out) a worker may
            # be wedged mid-handler and never see the sentinel; it is a
            # daemon thread, so a short best-effort join must not mask the
            # original error with a second one.
            worker.join(timeout=self.worker_timeout if graceful else 0.1)
            self.worker_wall[worker.worker_id] += worker.wall_time
            self.worker_events[worker.worker_id] += worker.handlers_run
            if worker.is_alive():
                stuck.append(worker)
        if graceful and stuck:
            names = ", ".join(
                f"worker {w.worker_id} (machines {list(w.machine_ids)})" for w in stuck
            )
            raise RuntimeError(
                f"threaded executor: {names} failed to shut down within "
                f"{self.worker_timeout}s"
            )

    # ------------------------------------------------------------- dispatching

    def _run_on_worker(self, machine_id: int, function, args) -> None:
        """Execute ``function(*args)`` on the worker owning ``machine_id``,
        blocking until it completes (the conservative dispatch frontier)."""
        worker = self._workers[self._owner[machine_id]]
        worker.inbound.put((function, args))
        try:
            outcome = worker.completions.get(timeout=self.worker_timeout)
        except queue.Empty:
            raise RuntimeError(
                f"threaded executor: machine {machine_id} is stuck — its worker "
                f"(worker {worker.worker_id}) did not finish a handler within "
                f"{self.worker_timeout}s; worker queue depth "
                f"{worker.inbound.qsize()}, machine inbox depth "
                f"{len(self._inboxes[machine_id])}"
            ) from None
        if outcome is not _DONE:
            raise RuntimeError(
                f"threaded executor: machine {machine_id} worker died in a task "
                f"handler: {outcome!r}; worker queue depth "
                f"{worker.inbound.qsize()}, machine inbox depth "
                f"{len(self._inboxes[machine_id])}"
            ) from outcome

    def _execute(self, task: Task, message: Message, start: float) -> None:
        if task.hosted_machine is None or self._workers is None:
            # Off-cluster tasks have no owning machine; handlers reached
            # outside run() (none today) fall back to inline execution.
            Simulator._execute(self, task, message, start)
            return
        self._run_on_worker(
            task.machine_id, Simulator._execute, (self, task, message, start)
        )

    def _execute_drained(
        self, task, first, inbox, limit, key, start, event_time, machine_id
    ) -> None:
        if self._workers is None:
            Simulator._execute_drained(
                self, task, first, inbox, limit, key, start, event_time, machine_id
            )
            return
        self._run_on_worker(
            machine_id,
            Simulator._execute_drained,
            (self, task, first, inbox, limit, key, start, event_time, machine_id),
        )

    # ----------------------------------------------------------------- running

    def run(self, max_events: int | None = None) -> float:
        """Run to quiescence with the worker fleet up.

        Workers live for the duration of one :meth:`run` call (streaming
        ingestion re-enters run() per push and gets a fresh fleet; the
        cumulative ``worker_wall`` / ``worker_events`` stats carry across).
        """
        self._start_workers()
        try:
            result = super().run(max_events=max_events)
        except BaseException:
            self._stop_workers(graceful=False)
            raise
        self._stop_workers(graceful=True)
        return result


class ThreadedExecutor(Executor):
    """``executor="threads"``: the real-clock worker-thread backend."""

    name = "threads"
    parallel = True

    def __init__(
        self,
        num_workers: int | None = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        self.num_workers = num_workers
        self.worker_timeout = worker_timeout

    @classmethod
    def from_config(cls, config) -> "ThreadedExecutor":
        return cls(num_workers=config.num_workers)

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> ThreadedSimulator:
        return ThreadedSimulator(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
            num_workers=self.num_workers,
            worker_timeout=self.worker_timeout,
        )


register_executor("simulated", SimulatedExecutor)
register_executor("threads", ThreadedExecutor)
