"""The executor plane: strategy backends that run a registered topology.

Every plane shipped before this module (batched, adaptive, wire-merged,
columnar, fault-tolerant) executed on one single-threaded virtual-time
:class:`~repro.engine.simulator.Simulator` — the system *modelled* a cluster
but was not one.  The executor plane is the seam between those two worlds:

* :class:`SimulatedExecutor` (``executor="simulated"``, the default) is the
  existing simulator, unchanged — it remains the conformance oracle for
  every other backend.
* :class:`ThreadedExecutor` (``executor="threads"``) is a real-clock backend:
  each :class:`~repro.engine.machine.Machine` is owned by a worker thread
  with a shared-nothing inbound queue, and task handlers — the reshuffle,
  probe and store work — execute on the owning worker, not on the
  coordinator.  Handlers of *different* machines genuinely overlap (see the
  dispatch frontier below).  Outputs, migration decisions and every
  virtual-time quantity are bit-identical to the simulator oracle; only
  wall-clock-derived stats (:attr:`Simulator.wall_time`, the per-worker
  ``worker_wall`` / ``worker_events`` breakdown, and the overlap counters
  ``overlap_dispatches`` / ``peak_inflight``) are backend-specific.

Determinism argument
--------------------

Three facts about the simulator's event metadata make an *overlapping*
dispatch frontier safe:

1. **Per-machine RNG streams.**  Every machine draws from its own stream,
   derived from ``(seed, machine_id)`` — on both backends — so a handler's
   draws depend only on its own machine's handler sequence, never on how
   handler executions of other machines interleave in wall-clock time.
2. **Sender-owned rank counters.**  Every (sender machine, destination task)
   link is FIFO with a monotone per-link sequence number, and the sequence
   counters are owned by the sender machine — no counter is shared across
   machines.  Every event is keyed by the plane-invariant ``(time, rank)``
   pair, a pure function of the message flow (see
   :mod:`repro.engine.simulator`).
3. **Lookahead.**  A message created at virtual time ``T`` delivers no
   earlier than ``T`` plus one network latency (the network clamps per-link
   delivery monotonically upward, never down), so a running handler that
   started at ``s`` cannot place any event below ``(s + latency)`` into the
   heap.

The coordinator therefore runs a **pipelined in-order frontier**: it peeks
the global heap and may *dispatch* the head event concurrently while older
handlers are still in flight, provided the head's ``(time, rank)`` key lies
below every in-flight handler's *horizon* — ``(start + latency,
send-rank-base)``.  A handler's only effects that can target *another*
machine are its sends (all ``>= start + latency``, in the send rank band or
above); its tick-reschedule chain targets its own machine, and any event
targeting a machine with an in-flight handler is held back by the affinity
rule below until that handler commits — the commit pushes the reschedule,
and the re-peek pops it in exact key order.  Below the horizon, then, the
head event can neither be created nor perturbed by any uncommitted effect.
Completions are collected strictly in dispatch (= oracle pop) order, and
each handler's *effects with global scope* — metric records and message
sends, journaled in call order by a buffering proxy — are replayed at
commit through the identical code paths a live handler would have taken
(:meth:`Simulator._post_at` / :meth:`Simulator._post_fanout_at`).
Machine-local mutations (busy chain, stores, drained-run inbox pulls, RNG
draws, recovery journaling) happen live on the worker: the machine-affinity
rule guarantees nothing else reads them meanwhile.  Handler commit order
equals oracle handler order, every replayed effect enters the heap with its
plane-invariant key, and the loop pops in key order — so every
deterministic quantity, heap events and wire histograms included, is
bit-identical.  (Pop order may transiently differ from the oracle's between
*commuting* events of different machines; everything order-sensitive —
migration bookkeeping, priority control flow — runs at barriers, and the
overlapping handlers' metric records are commutative sums, counters and
histograms.)

Serialisation points (everything else overlaps):

* **Machine affinity** — any event targeting a machine with an in-flight
  handler first commits the window up to (and including) that handler, so a
  machine's state is touched by at most one party at a time and intra-machine
  event order matches the oracle exactly.
* **Barriers** — events whose processing reads or writes *global* state run
  with the window fully committed: priority control-plane deliveries,
  off-cluster handlers, fault-plane events (which includes the unreliable
  wire's frame arrivals and retransmit timers — they ride the fault rank
  band, so a frame release respects the commit frontier and its dedup /
  in-order bookkeeping never races an in-flight handler), and handlers of
  tasks that set :attr:`~repro.engine.task.Task.reads_global_state` (the
  migration controller, which samples run-wide metrics and cluster peak
  storage mid-handler).
* **Drained runs flush before dispatch** — a drained run's control-plane
  horizon (:meth:`Simulator._drain_horizon`) reads the in-flight priority
  deliveries of its machine, and an uncommitted older handler's
  MIGRATION_ACK can land inside the default ``event_time + latency``
  horizon.  Committing the window first freezes the horizon's inputs at
  exactly the oracle's state (younger handlers commit only after the run —
  the window is FIFO — so they cannot perturb it either); the drained run
  itself still overlaps with younger dispatches.
* **Open-run close ordering** — closing a delivery-merge run (which records
  its length and arms the channel's next run as a fresh heap event) is
  sensitive to the *exact* global pop order: the oracle keeps a run open if
  an append reached it before the settle that would have drained its last
  member, and that append can ride a handler whose launching tick
  reschedule is still hidden inside an uncommitted predecessor.  A tick
  facing an exhaustible open run therefore never pops while the window is
  non-empty — the loop commits oldest-first and re-peeks, surfacing hidden
  reschedules in exact key order (see
  :meth:`ThreadedSimulator._closing_settle_ahead`).
* **Event-anchored faults** — while a ``crash_after_events`` trigger is
  armed the loop degrades to lock-step (the oracle checks the trigger after
  *every* heap event, so ``events_processed`` must be exact at each pop);
  overlap resumes once the schedule drains.

Robustness: a handler that raises or never returns must never hang the run.
Dispatch waits are bounded by ``worker_timeout``; on expiry the coordinator
raises a :class:`RuntimeError` naming the stuck machine and its queue
depths, and a handler exception is re-raised wrapped the same way (with the
original as ``__cause__``).
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from collections import deque

from repro.api.registry import register_executor
from repro.engine.machine import CostModel
from repro.engine.simulator import (
    PRIORITY_KINDS,
    _DELIVERY_RUN,
    _FaultEvent,
    _SEND_RANK_BASE,
    Simulator,
)
from repro.engine.task import Context, Message, Task

#: Bound on any single coordinator wait for a worker: handler completion at
#: commit, thread exit at shutdown.  Generous — virtual-time handlers run
#: in microseconds; anything near this bound is a deadlocked or poisoned
#: handler, and surfacing it beats hanging CI forever.
DEFAULT_WORKER_TIMEOUT = 60.0

#: Sentinel asking a worker thread to exit its loop.
_SHUTDOWN = object()

#: Completion token of a successfully executed handler (exceptions travel as
#: themselves).
_DONE = object()


class Executor:
    """Strategy interface: how a registered topology's handlers execute.

    An executor builds the :class:`Simulator` (or subclass) an operator run
    executes on; everything else — topology registration, feeding, result
    harvesting — is executor-agnostic and stays in
    :meth:`repro.core.operator.GridJoinOperator.build_execution`.

    Class attributes:
        name: the registry name (``RunConfig.executor`` values).
        parallel: whether the backend accepts the ``num_workers`` /
            ``worker_timeout`` knobs.
    """

    name = "?"
    parallel = False

    @classmethod
    def from_config(cls, config) -> "Executor":
        """Build an executor instance from a :class:`~repro.api.config.RunConfig`.

        The base implementation takes no knobs; parallel backends override
        this to pick up ``num_workers`` and ``worker_timeout``.
        """
        return cls()

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> Simulator:
        """A fresh execution substrate for one run.  Implemented by backends."""
        raise NotImplementedError


class SimulatedExecutor(Executor):
    """The default backend: the single-threaded virtual-time simulator.

    This is the conformance oracle every other backend is pinned against —
    semantics are exactly those of the pre-executor-plane ``Simulator``.
    """

    name = "simulated"

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> Simulator:
        return Simulator(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
        )


class _MachineWorker(threading.Thread):
    """One worker thread owning a disjoint set of machines.

    The worker consumes ``(function, args)`` work items from its private
    ``inbound`` queue (shared-nothing: no other thread ever reads it),
    executes them, and reports per-item completion on ``completions`` —
    either the :data:`_DONE` token or the raised exception.  A raising
    handler does not kill the thread: the loop keeps serving so shutdown
    stays orderly; the coordinator aborts the run instead.
    """

    def __init__(self, worker_id: int, machine_ids: tuple[int, ...]) -> None:
        super().__init__(name=f"repro-executor-worker-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.machine_ids = machine_ids
        self.inbound: queue.SimpleQueue = queue.SimpleQueue()
        self.completions: queue.SimpleQueue = queue.SimpleQueue()
        self.wall_time = 0.0
        self.handlers_run = 0

    def run(self) -> None:  # pragma: no cover - exercised via ThreadedSimulator
        get = self.inbound.get
        put = self.completions.put
        clock = time.perf_counter
        while True:
            item = get()
            if item is _SHUTDOWN:
                return
            function, args = item
            begin = clock()
            try:
                function(*args)
            except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                self.wall_time += clock() - begin
                put(exc)
            else:
                self.wall_time += clock() - begin
                self.handlers_run += 1
                put(_DONE)


class _BufferedMetrics:
    """Journal-backed stand-in for the run's :class:`MetricsCollector`.

    A concurrently-running handler must not mutate the shared collector —
    commit order, not wall-clock completion order, decides how metric state
    evolves.  Every ``record_*`` method (plus the two migration markers) is
    therefore journaled in call order and replayed against the real
    collector at commit.  Any *other* attribute access — a mid-handler read
    of run-wide state such as ``processed_inputs`` — raises immediately:
    a task needing those must declare
    :attr:`~repro.engine.task.Task.reads_global_state` so the frontier
    serialises it as a barrier, rather than silently reading a torn value.
    """

    __slots__ = ("_journal",)

    _PASSTHROUGH = frozenset({"start_migration", "complete_migration"})

    def __init__(self, journal: list) -> None:
        self._journal = journal

    def __getattr__(self, name):
        if name.startswith("record_") or name in self._PASSTHROUGH:
            journal = self._journal

            def buffered(*args, _name=name, **kwargs):
                journal.append(("m", _name, args, kwargs))

            return buffered
        raise AttributeError(
            f"metrics.{name} is not available from a concurrently-dispatched "
            f"handler: only record_* mutations are journaled; a handler that "
            f"reads run-wide metric state must set Task.reads_global_state "
            f"so the threaded executor serialises it as a barrier"
        )


class _HandlerProxy:
    """The ``Context._simulator`` seen by a concurrently-dispatched handler.

    Sends and metric records are journaled (in call order) for commit-time
    replay; machine-local facilities — the per-machine RNG stream, the drain
    horizon — delegate to the real simulator, which is safe because the
    machine-affinity rule guarantees no other party touches this machine
    meanwhile (and the horizon's inputs are barrier-stable, see
    ``Simulator._drain_horizon``).  Cluster-wide reads delegate too: only
    barrier tasks use them, and those never run behind this proxy.
    """

    __slots__ = ("_simulator", "_journal", "metrics")

    def __init__(self, simulator: "ThreadedSimulator", journal: list) -> None:
        self._simulator = simulator
        self._journal = journal
        self.metrics = _BufferedMetrics(journal)

    def machine_rng(self, machine_id: int):
        return self._simulator.machine_rng(machine_id)

    @property
    def machines(self):
        return self._simulator.machines

    def max_machine_storage(self) -> float:
        return self._simulator.max_machine_storage()

    def post(self, sender_task, destination, message, category, ctx) -> None:
        # The departure is a pure function of handler-local state; capture it
        # now, replay the send through Simulator._post_at at commit.
        self._journal.append(
            ("post", sender_task, destination, message, category,
             ctx.now + ctx.charged)
        )

    def post_fanout(self, sender_task, destinations, message, category, ctx) -> None:
        self._journal.append(
            ("fanout", sender_task, list(destinations), message, category,
             ctx.now + ctx.charged)
        )


class _InflightHandler:
    """One dispatched-but-uncommitted handler in the frontier window."""

    __slots__ = (
        "machine_id", "worker", "task", "message", "start", "event_time",
        "inbox", "limit", "key", "journal", "count",
    )

    def __init__(
        self, machine_id, task, message, start, event_time, inbox, limit, key
    ) -> None:
        self.machine_id = machine_id
        self.worker = None
        self.task = task
        self.message = message
        self.start = start
        self.event_time = event_time
        self.inbox = inbox
        self.limit = limit  # 0 = plain handler, >0 = drained run limit
        self.key = key
        self.journal: list = []
        self.count = 0


class ThreadedSimulator(Simulator):
    """Real-clock backend: machine-hosted handlers run on worker threads.

    Scheduling, delivery, wire settling and the fault plane stay on the
    coordinator; handlers dispatch to the worker owning the target machine.
    Handlers of different machines overlap below the lookahead horizon and
    commit strictly in oracle pop order (see the module docstring), so the
    global ``(time, rank)`` order of handler *effects* is exactly the
    simulator oracle's and every virtual-time quantity is bit-identical.
    Off-cluster tasks (sources, collectors) have no machine to own them and
    execute on the coordinator, as before.

    Args:
        num_workers: worker threads to spawn; defaults to one per machine.
            Fewer workers than machines assigns machines round-robin — each
            machine still has exactly one owning worker, so the
            shared-nothing ownership discipline is unchanged.  More workers
            than machines clamps to the machine count; the effective size is
            readable back as :attr:`num_workers` (surfaced on ``RunResult``
            as ``effective_workers``).
        worker_timeout: bound (in real seconds) on any single wait for a
            worker; see the module docstring's robustness contract.
    """

    def __init__(
        self,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
        num_workers: int | None = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        super().__init__(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
        )
        if num_workers is None:
            num_workers = max(1, num_machines)
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be > 0, got {worker_timeout}")
        # More workers than machines would leave idle threads with no
        # machines to own; clamp (a 4-machine run with the default 8-worker
        # config is not an error).  The clamped value is the effective fleet
        # size reported downstream.
        self.num_workers = min(num_workers, num_machines) if num_machines else 1
        self.worker_timeout = worker_timeout
        #: machine id -> worker index (round-robin ownership).
        self._owner = [i % self.num_workers for i in range(num_machines)]
        self._workers: list[_MachineWorker] | None = None
        #: Cumulative per-worker handler wall-clock seconds / handler counts,
        #: carried across runs (streaming pushes re-enter :meth:`run`).
        self.worker_wall = [0.0] * self.num_workers
        self.worker_events = [0] * self.num_workers
        #: The frontier window: dispatched-but-uncommitted handlers in
        #: dispatch (= oracle pop) order, and the machines they occupy.
        self._inflight: deque[_InflightHandler] = deque()
        self._inflight_machines: set[int] = set()
        #: Overlap counters, cumulative across runs like the worker stats.
        #: Both are *structurally deterministic*: dispatch and commit are
        #: forced purely by event structure (keys, window composition),
        #: never by wall-clock timing, so two runs of the same workload
        #: report identical values.
        self.overlap_dispatches = 0
        self.peak_inflight = 0

    # -------------------------------------------------------- worker lifecycle

    def _start_workers(self) -> None:
        workers = []
        for worker_id in range(self.num_workers):
            owned = tuple(
                machine_id
                for machine_id, owner in enumerate(self._owner)
                if owner == worker_id
            )
            worker = _MachineWorker(worker_id, owned)
            worker.start()
            workers.append(worker)
        self._workers = workers

    def _stop_workers(self, graceful: bool) -> None:
        workers, self._workers = self._workers, None
        if workers is None:
            return
        stuck = []
        for worker in workers:
            worker.inbound.put(_SHUTDOWN)
        for worker in workers:
            # On the error path (a handler raised or timed out) a worker may
            # be wedged mid-handler and never see the sentinel; it is a
            # daemon thread, so a short best-effort join must not mask the
            # original error with a second one.
            worker.join(timeout=self.worker_timeout if graceful else 0.1)
            if worker.is_alive():
                # Still running mid-handler: its wall_time / handlers_run
                # counters are being mutated concurrently, so folding them
                # would publish torn values.  The stats are reported lost
                # instead of folded.
                stuck.append(worker)
                continue
            self.worker_wall[worker.worker_id] += worker.wall_time
            self.worker_events[worker.worker_id] += worker.handlers_run
        if graceful and stuck:
            names = ", ".join(
                f"worker {w.worker_id} (machines {list(w.machine_ids)})" for w in stuck
            )
            raise RuntimeError(
                f"threaded executor: {names} failed to shut down within "
                f"{self.worker_timeout}s; their worker_wall/worker_events "
                f"stats were not folded (lost)"
            )

    # ------------------------------------------------------------- dispatching

    def _await_worker(self, machine_id: int, worker: _MachineWorker) -> None:
        """Collect one completion from ``worker``, bounded by the timeout."""
        try:
            outcome = worker.completions.get(timeout=self.worker_timeout)
        except queue.Empty:
            raise RuntimeError(
                f"threaded executor: machine {machine_id} is stuck — its worker "
                f"(worker {worker.worker_id}) did not finish a handler within "
                f"{self.worker_timeout}s; worker queue depth "
                f"{worker.inbound.qsize()}, machine inbox depth "
                f"{len(self._inboxes[machine_id])}"
            ) from None
        if outcome is not _DONE:
            raise RuntimeError(
                f"threaded executor: machine {machine_id} worker died in a task "
                f"handler: {outcome!r}; worker queue depth "
                f"{worker.inbound.qsize()}, machine inbox depth "
                f"{len(self._inboxes[machine_id])}"
            ) from outcome

    def _run_on_worker(self, machine_id: int, function, args) -> None:
        """Execute ``function(*args)`` on the worker owning ``machine_id``,
        blocking until it completes (the barrier / lock-step path)."""
        worker = self._workers[self._owner[machine_id]]
        worker.inbound.put((function, args))
        self._await_worker(machine_id, worker)

    def _execute(self, task: Task, message: Message, start: float) -> None:
        if task.hosted_machine is None or self._workers is None:
            # Off-cluster tasks have no owning machine; handlers reached
            # outside run() (none today) fall back to inline execution.
            Simulator._execute(self, task, message, start)
            return
        self._run_on_worker(
            task.machine_id, Simulator._execute, (self, task, message, start)
        )

    def _execute_drained(
        self, task, first, inbox, limit, key, start, event_time, machine_id
    ) -> None:
        if self._workers is None:
            Simulator._execute_drained(
                self, task, first, inbox, limit, key, start, event_time, machine_id
            )
            return
        self._run_on_worker(
            machine_id,
            Simulator._execute_drained,
            (self, task, first, inbox, limit, key, start, event_time, machine_id),
        )

    # ----------------------------------------------- the overlapping frontier

    def _concurrent_execute(self, record: _InflightHandler) -> None:
        """Worker-side body of a concurrently-dispatched handler.

        Machine-local state (busy chain, stores, inbox pulls, drain windows,
        the machine's RNG stream, recovery journaling) mutates live — the
        affinity rule guarantees exclusive access; globally-visible effects
        (sends, metric records) are journaled on ``record`` for commit-time
        replay in oracle order.
        """
        task = record.task
        ctx = Context(_HandlerProxy(self, record.journal), task, record.start)
        if record.limit:
            ctx.drain_boundaries = []
            machine_id = record.machine_id
            event_time = record.event_time
            ctx.drain_horizon = lambda: self._drain_horizon(machine_id, event_time)
        if task.name not in self._started:
            self._started.add(task.name)
            task.on_start(ctx)
        if record.limit:
            record.count = task.handle_drained(
                record.message, record.inbox, record.limit, record.key, ctx
            )
            machine = task.hosted_machine
            if ctx.charged > 0:  # defensive: close an unrotated run tail
                machine.occupy(ctx.now, ctx.charged)
                ctx.drain_boundaries.append(machine.busy_until)
            machine.record_drain_window(record.start, ctx.drain_boundaries)
        else:
            task.handle(record.message, ctx)
            machine = task.hosted_machine
            if ctx.charged > 0:
                machine.occupy(record.start, ctx.charged)
                machine.clear_drain_window()

    def _commit_oldest(self) -> None:
        """Commit the window's oldest handler: await completion, replay its
        journaled effects in call order, then run the tick tail the oracle
        would have run right after the handler."""
        record = self._inflight.popleft()
        machine_id = record.machine_id
        self._inflight_machines.discard(machine_id)
        self._await_worker(machine_id, record.worker)
        metrics = self.metrics
        for entry in record.journal:
            tag = entry[0]
            if tag == "m":
                getattr(metrics, entry[1])(*entry[2], **entry[3])
            elif tag == "post":
                self._post_at(entry[1], entry[2], entry[3], entry[4], entry[5])
            else:
                self._post_fanout_at(entry[1], entry[2], entry[3], entry[4], entry[5])
        if record.limit:
            metrics.record_drained_run(record.count)
        self.events_processed += 1
        self._tick_tail(machine_id, record.start)

    def _tick_tail(self, machine_id: int, start: float) -> None:
        """The tail of the oracle's ``_tick``: reschedule or go idle."""
        inbox = self._inboxes[machine_id]
        if inbox:
            machine = self.machines[machine_id]
            self._schedule_tick(machine_id, max(machine.busy_until, start))
        else:
            if self._merge_wire and self._pending_wire[machine_id]:
                self._rearm_wire(machine_id)
            self._tick_scheduled[machine_id] = False

    def _closing_settle_ahead(self, machine_id: int, time: float) -> bool:
        """Whether a tick for ``machine_id`` popped at ``time`` could
        *exhaust* (and close) an open delivery-merge run.

        The close decision — and with it the wire histogram and the arming
        of the channel's next run as a fresh heap event — depends on whether
        an append reached the run before the settle that drains its last
        member, i.e. on the *exact* global pop order, not merely on
        commuting-class order.  An in-flight handler hides its machine's
        tick reschedule (pushed only at commit), and that reschedule's chain
        can carry the append the oracle applied first.  A tick facing an
        exhaustible run therefore must not pop while the window is
        non-empty: the loop commits the oldest handler and re-peeks, which
        surfaces the hidden reschedules in exact key order.  The gate
        guarantees no append can be dated ``<= time`` (sends of in-flight
        handlers deliver beyond the horizon), so commits can only clear this
        condition, never create it.
        """
        for entry in self._pending_wire[machine_id]:
            run = entry[2]
            if run is not None and not run.closed and run.times[-1] <= time:
                return True
        return False

    def _tick_frontier(self, machine_id: int, time: float) -> None:
        """Process one machine tick on the frontier.

        The *prepare* half (settle, inbox pop, drain-controller sizing) runs
        on the coordinator exactly as the oracle's ``_tick`` — it touches
        only this machine's state, which the affinity rule has made
        exclusive.  The handler then either dispatches concurrently, or —
        for barrier tasks and while event-anchored faults are armed — runs
        live with the window flushed.
        """
        if self._crashed_count and machine_id in self._crashed:
            # Stale tick popping during an outage: swallow it and leave
            # _tick_scheduled True — the restart pushes the reviving tick.
            return
        merging = self._merge_wire
        if merging and self._pending_wire[machine_id]:
            # The loop's _closing_settle_ahead gate guarantees this settle
            # cannot exhaust an open run while handlers are still in flight,
            # so the close bookkeeping below is oracle-exact.
            self._settle(machine_id, time)
        inbox = self._inboxes[machine_id]
        if not inbox:
            if merging and self._pending_wire[machine_id]:
                self._rearm_wire(machine_id)
            self._tick_scheduled[machine_id] = False
            return
        machine = self.machines[machine_id]
        start = max(time, machine.busy_until)
        entry = inbox.popleft()
        if entry.__class__ is tuple:
            task, message = entry
        else:
            task = entry.task
            message = entry.messages[entry.index]
            entry.index += 1
            if entry.index < entry.end:
                inbox.appendleft(entry)
        limit = 0
        key = None
        if self._drain_controllers is not None:
            key = task.drain_key(message)
            if key is not None:
                # Backlog estimate for the drain controller: the exact member
                # count of the inbox, counting every member still inside a
                # settled segment — identical to the unmerged plane's
                # per-member inbox length.
                backlog = 1 + len(inbox)
                if merging:
                    for pending_entry in inbox:
                        if pending_entry.__class__ is not tuple:
                            backlog += pending_entry.end - pending_entry.index - 1
                sized = self._drain_controllers[machine_id].next_batch_size(backlog)
                if sized > 1 and inbox:
                    limit = sized
                else:
                    # Histogram increments commute, so recording the
                    # single-member run at prepare time (possibly ahead of
                    # older uncommitted handlers' buffered records) is exact.
                    self.metrics.record_drained_run(1)
        if task.reads_global_state or self._after_event_faults:
            # Barrier handler (or lock-step while an event-anchored fault is
            # armed): every pending effect must be visible before it runs.
            while self._inflight:
                self._commit_oldest()
            if limit:
                self._execute_drained(
                    task, message, inbox, limit, key, start, time, machine_id
                )
            else:
                self._execute(task, message, start)
            self._tick_tail(machine_id, start)
            return
        if limit:
            # Drain-horizon safety (see the module docstring): the run reads
            # its machine's in-flight priority deliveries mid-handler, so
            # every older handler's sends must be replayed before it starts.
            # The run still dispatches concurrently — younger events may
            # overlap with it; they commit (and thus take effect) after it.
            while self._inflight:
                self._commit_oldest()
        record = _InflightHandler(
            machine_id, task, message, start, time, inbox, limit, key
        )
        if self._inflight:
            self.overlap_dispatches += 1
        self._inflight.append(record)
        self._inflight_machines.add(machine_id)
        if len(self._inflight) > self.peak_inflight:
            self.peak_inflight = len(self._inflight)
        worker = self._workers[self._owner[machine_id]]
        record.worker = worker
        worker.inbound.put((self._concurrent_execute, (record,)))

    def _run_frontier(self, max_events: int | None) -> float:
        """The coordinator loop: peek-gate-dispatch with in-order commits."""
        queue_heap = self._queue
        inflight = self._inflight
        inflight.clear()
        self._inflight_machines.clear()
        heap_events = self.heap_events
        after_faults = self._after_event_faults
        latency = self.cost_model.network_latency
        wall_start = time.perf_counter()
        try:
            while queue_heap or inflight:
                if not queue_heap:
                    self._commit_oldest()
                    continue
                event_time, rank, target, message = queue_heap[0]
                if message is None:
                    barrier = False
                    event_machine = target
                elif message is _DELIVERY_RUN:
                    barrier = False
                    event_machine = target.task.machine_id
                elif message.__class__ is _FaultEvent:
                    barrier = True
                    event_machine = -1
                else:
                    machine = target.hosted_machine
                    if machine is None or message.kind in PRIORITY_KINDS:
                        barrier = True
                        event_machine = -1
                    else:
                        barrier = False
                        event_machine = machine.machine_id
                if inflight:
                    if barrier or after_faults:
                        # Barrier events and lock-step mode drain the window
                        # completely before the event processes.
                        self._commit_oldest()
                        continue
                    # The lookahead gate: the head must lie below every
                    # in-flight handler's horizon (start + latency, in the
                    # send band) — below it, no uncommitted effect can create
                    # or perturb the head event.  Sub-send-band ranks at the
                    # horizon instant (pre-run feed entries) are still safe:
                    # sends at that exact time rank above them.
                    safe = True
                    for pending in inflight:
                        horizon = pending.start + latency
                        if event_time > horizon or (
                            event_time == horizon and rank >= _SEND_RANK_BASE
                        ):
                            safe = False
                            break
                    if not safe or event_machine in self._inflight_machines:
                        # Commit the oldest and re-peek: commits push tick
                        # reschedules / replayed sends, which can change the
                        # heap head (and must order before any event of the
                        # committed machine).
                        self._commit_oldest()
                        continue
                    if (
                        message is None
                        and self._merge_wire
                        and self._closing_settle_ahead(target, event_time)
                    ):
                        # Order-sensitive settle: the tick could exhaust (and
                        # close) an open delivery-merge run, and an in-flight
                        # handler's hidden reschedule chain may carry the
                        # append the oracle applied first.  Drain the window
                        # one commit at a time, re-peeking so surfaced
                        # reschedules pop in exact key order.
                        self._commit_oldest()
                        continue
                heapq.heappop(queue_heap)
                heap_events += 1
                if event_time > self.now:
                    self.now = event_time
                if message is None:
                    self._tick_frontier(target, event_time)
                elif message is _DELIVERY_RUN:
                    self._deliver_run(target, event_time)
                elif message.__class__ is _FaultEvent:
                    self._process_fault(target, message, event_time)
                else:
                    self._deliver(target, message, event_time, rank)
                if after_faults and self.events_processed >= after_faults[0][0]:
                    while after_faults and self.events_processed >= after_faults[0][0]:
                        fault = after_faults.pop(0)[1]
                        self._crash_machine(fault.machine, fault, self.now)
                if (
                    max_events is not None
                    and self.events_processed + len(inflight) > max_events
                ):
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        f"possible signalling loop"
                    )
        finally:
            # Written back even when a handler raises, so the counter stays
            # consistent with events_processed on error paths.
            self.heap_events = heap_events
            self.wall_time += time.perf_counter() - wall_start
        finish = self.now
        for machine in self.machines:
            finish = max(finish, machine.busy_until)
        self.metrics.finish_time = finish
        return finish

    # ----------------------------------------------------------------- running

    def run(self, max_events: int | None = None) -> float:
        """Run to quiescence with the worker fleet up.

        Workers live for the duration of one :meth:`run` call (streaming
        ingestion re-enters run() per push and gets a fresh fleet; the
        cumulative ``worker_wall`` / ``worker_events`` stats carry across).
        """
        self._start_workers()
        try:
            result = self._run_frontier(max_events)
        except BaseException:
            self._stop_workers(graceful=False)
            raise
        self._stop_workers(graceful=True)
        return result


class ThreadedExecutor(Executor):
    """``executor="threads"``: the real-clock worker-thread backend."""

    name = "threads"
    parallel = True

    def __init__(
        self,
        num_workers: int | None = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        self.num_workers = num_workers
        self.worker_timeout = worker_timeout

    @classmethod
    def from_config(cls, config) -> "ThreadedExecutor":
        worker_timeout = getattr(config, "worker_timeout", None)
        return cls(
            num_workers=config.num_workers,
            worker_timeout=(
                DEFAULT_WORKER_TIMEOUT if worker_timeout is None else worker_timeout
            ),
        )

    def build_simulator(
        self,
        *,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> ThreadedSimulator:
        return ThreadedSimulator(
            num_machines=num_machines,
            cost_model=cost_model,
            seed=seed,
            collect_outputs=collect_outputs,
            num_workers=self.num_workers,
            worker_timeout=self.worker_timeout,
        )


register_executor("simulated", SimulatedExecutor)
register_executor("threads", ThreadedExecutor)
