"""Task (actor) abstraction and message types.

The operator of Fig. 1c is composed of *reshuffler* tasks and *joiner* tasks,
one of each per machine, plus the data sources feeding the operator and a
collector consuming its output.  Tasks communicate exclusively through
messages; the engine delivers messages in virtual-time order and charges the
processing cost to the hosting machine.

Concrete task implementations live next to the operators that use them
(``repro.core.operator`` and ``repro.core.baselines``); this module provides
the base class, the message vocabulary and the :class:`Context` handed to a
task while it processes a message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any

from repro.engine.network import TrafficCategory
from repro.engine.stream import StreamTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.engine.simulator import Simulator


class MessageKind(enum.Enum):
    """The kinds of messages exchanged by tasks."""

    # Members are singletons; identity hashing keeps the hot per-message
    # dict/set operations (priority checks, traffic counters) at C speed
    # instead of going through Enum.__hash__.
    __hash__ = object.__hash__

    DATA = "data"                      # a stream tuple routed to a joiner
    SOURCE = "source"                  # a stream tuple arriving at a reshuffler
    MIGRATION = "migration"            # a relocated tuple during migration
    BATCH = "batch"                    # a TupleBatch; meta["inner"] is the member kind
    MIGRATION_END = "migration_end"    # sender finished relocating state to receiver
    MAPPING_CHANGE = "mapping_change"  # controller -> reshufflers: new mapping/epoch
    EPOCH_SIGNAL = "epoch_signal"      # reshuffler -> joiners: epoch change notice
    MIGRATION_ACK = "migration_ack"    # joiner -> controller: finished migration
    RESUME = "resume"                  # controller -> reshufflers: unblock buffered input
    FLUSH = "flush"                    # end-of-stream marker


@dataclass(slots=True)
class Message:
    """A message in flight between two tasks.

    Attributes:
        kind: message type.
        sender: name of the sending task.
        payload: a :class:`StreamTuple` for data/migration messages, a
            :class:`~repro.engine.stream.TupleBatch` for BATCH messages, or an
            arbitrary structure for control messages.
        epoch: epoch tag (meaningful for data, migration and control traffic).
        size: size units used for network accounting.  For BATCH messages this
            is the sum of the member sizes, so volume accounting stays exact.
        meta: extra key/value context (e.g. the new mapping of a
            MAPPING_CHANGE message, or ``"inner"`` — the per-member
            :class:`MessageKind` — of a BATCH message).
    """

    kind: MessageKind
    sender: str
    payload: Any = None
    epoch: int = 0
    size: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)


#: Shared immutable empty meta of every :class:`DataEnvelope` — data-plane
#: handlers never read per-message meta, so one read-only mapping serves all.
_EMPTY_META: Any = MappingProxyType({})


class DataEnvelope:
    """Slim envelope for hot-path data messages (DATA / SOURCE wire traffic).

    Duck-type compatible with :class:`Message` for everything the data plane
    reads (``kind``, ``sender``, ``payload``, ``epoch``, ``size``, and a
    read-only empty ``meta``), but without the dataclass machinery and —
    crucially — without allocating a fresh ``meta`` dict per tuple: on the
    per-tuple wire every input tuple becomes at least one envelope, so the
    saved allocation is paid once per tuple per hop.  Control-plane and batch
    messages (which do carry meta) keep using :class:`Message`.
    """

    __slots__ = ("kind", "sender", "payload", "epoch", "size")

    meta = _EMPTY_META

    def __init__(
        self,
        kind: MessageKind,
        sender: str,
        payload: Any,
        epoch: int = 0,
        size: float = 0.0,
    ) -> None:
        self.kind = kind
        self.sender = sender
        self.payload = payload
        self.epoch = epoch
        self.size = size


class Context:
    """Per-delivery context given to ``Task.handle``.

    It exposes the current virtual time, lets the task charge CPU work to its
    machine and send messages to other tasks, and gives access to the shared
    metrics collector.
    """

    __slots__ = ("_simulator", "_task", "now", "charged", "drain_boundaries", "drain_horizon")

    def __init__(self, simulator: "Simulator", task: "Task", now: float) -> None:
        self._simulator = simulator
        self._task = task
        self.now = now
        self.charged = 0.0
        # Member-completion times of a drained run (adaptive data plane);
        # allocated by the simulator before Task.handle_drained runs.
        self.drain_boundaries: list[float] | None = None
        # Zero-argument callable returning the current control-plane drain
        # horizon (see Simulator._drain_horizon); set for drained runs only.
        self.drain_horizon = None

    @property
    def metrics(self):
        """The run-wide :class:`repro.engine.metrics.MetricsCollector`."""
        return self._simulator.metrics

    @property
    def rng(self):
        """The deterministic random stream owned by the hosting machine.

        Streams are derived from ``(seed, machine_id)`` (see
        :meth:`repro.engine.simulator.Simulator.machine_rng`), so a task's
        draws depend only on its own machine's handler sequence — never on
        how handler executions of *other* machines interleave, which is what
        lets the threaded executor overlap handlers across workers.
        """
        return self._simulator.machine_rng(self._task.machine_id)

    @property
    def machine(self):
        """The machine hosting the current task (None for off-cluster tasks)."""
        return self._task.hosted_machine

    def cluster_peak_stored(self) -> float:
        """Largest peak per-machine stored size observed so far (measured ILF)."""
        return self._simulator.max_machine_storage()

    def cluster_current_max_stored(self) -> float:
        """Largest current per-machine stored size."""
        return max(
            (machine.stored_size for machine in self._simulator.machines), default=0.0
        )

    def charge(self, cost: float) -> None:
        """Charge ``cost`` units of CPU work to the hosting machine."""
        self.charged += cost

    def send(
        self,
        destination: str,
        message: Message,
        category: TrafficCategory = TrafficCategory.ROUTING,
    ) -> None:
        """Send ``message`` to the task named ``destination``."""
        self._simulator.post(self._task, destination, message, category, self)

    def send_fanout(
        self,
        destinations,
        message: Message,
        category: TrafficCategory = TrafficCategory.ROUTING,
    ) -> None:
        """Send one data message to every task name in ``destinations``.

        Identical to calling :meth:`send` per destination (same departures,
        same per-link transfers, same delivery order); data plane only.
        """
        self._simulator.post_fanout(self._task, destinations, message, category, self)

    def emit_output(self, left: StreamTuple, right: StreamTuple) -> None:
        """Record one join result tuple.

        The latency of the result follows the §5.2 definition: output time
        minus the arrival time of the more recent of the two matching inputs.

        Args:
            left: the R-side tuple of the match.
            right: the S-side tuple of the match.
        """
        self._simulator.metrics.record_output(
            left, right, self.now + self.charged, self._task.machine_id
        )

    def emit_outputs(self, matches: "list[tuple[StreamTuple, StreamTuple]]") -> None:
        """Record a batch of join results emitted at the same instant.

        Bulk counterpart of :meth:`emit_output` for the match loop of one
        handled tuple: every pair shares the output time ``now + charged``
        (the per-pair ``match_cost`` is charged *before* emission either
        way), so the recorded samples are identical to per-pair calls while
        the collector bookkeeping is paid once per tuple.
        """
        self._simulator.metrics.record_outputs(
            matches, self.now + self.charged, self._task.machine_id
        )

    def boundary(self) -> None:
        """Close the current member of a drained run (adaptive data plane).

        Commits the member's accumulated charge to the hosting machine —
        exactly the ``occupy`` a per-tuple handler completion performs — and
        starts the next member at the resulting busy time, so a drained run
        reproduces the per-tuple busy chain float-for-float.  The completion
        time is appended to :attr:`drain_boundaries` for control-plane
        message scheduling (see :meth:`repro.engine.machine.Machine.priority_start`).
        """
        if self.charged > 0:
            machine = self._task.hosted_machine
            self.now = machine.occupy(self.now, self.charged)
            self.charged = 0.0
        if self.drain_boundaries is not None:
            self.drain_boundaries.append(self.now)


class Task:
    """Base class for all actors in the dataflow.

    Attributes:
        name: globally unique task name.
        machine_id: machine hosting the task (``-1`` for off-cluster tasks
            such as sources and collectors, which are not charged CPU time).
        reads_global_state: class flag a task sets when its handlers read
            cluster-wide state mid-handler (e.g. the migration controller
            sampling ``ctx.cluster_peak_stored()`` and run-wide metrics).
            Parallel backends treat such handlers as *barriers* — every
            in-flight handler is committed before one runs, and it runs with
            direct (unbuffered) simulator access — because the values it
            reads depend on all prior handlers' effects being applied.
            Machine-local handlers (the default) may overlap freely.
    """

    #: See the class docstring; the conservative default is machine-local.
    reads_global_state = False

    def __init__(self, name: str, machine_id: int = -1) -> None:
        self.name = name
        self.machine_id = machine_id
        # The hosting Machine object, resolved once at registration by the
        # simulator (None for off-cluster tasks); avoids per-message lookups.
        self.hosted_machine = None

    def handle(self, message: Message, ctx: Context) -> None:
        """Process one message.  Implemented by subclasses."""
        raise NotImplementedError

    def drain_key(self, message: Message):
        """Coalescing key of ``message`` on the adaptive data plane.

        The simulator drains consecutive inbox messages for the same task
        while their keys are equal and not None; a ``None`` marks the message
        as per-tuple-only.  Keys must only be returned for messages whose
        handling (a) sends nothing over the network and charges work
        identically when processed back-to-back, or (b) is a pure function of
        the task's own state — so that draining cannot perturb the virtual
        clock or cross-machine message interleaving.  The default is
        conservative: nothing is drainable.
        """
        return None

    def handle_drained(self, first: Message, inbox, limit: int, key, ctx: Context) -> int:
        """Process one drained run: ``first`` plus same-key followers pulled
        from the head of ``inbox`` (up to ``limit`` members total).

        Implementations MUST call :meth:`Context.boundary` after each member
        so per-member charges land on the machine's busy chain exactly as
        per-tuple handling would, MUST only pull inbox heads belonging to
        this task whose :meth:`drain_key` equals ``key``, and return the
        member count.  Inbox entries are either ``(task, message)`` tuples or
        ``SettledSegment`` cursor windows over a merged delivery run (see the
        simulator module); implementations must consume both shapes.  The
        default processes members through :meth:`handle` one by one —
        bit-identical to per-tuple delivery, saving only simulator events;
        subclasses may batch the member work itself (see ``JoinerTask``) or
        stop pulling early (e.g. at the control-plane drain horizon, see
        ``ReshufflerTask``) as long as per-member accounting is preserved.
        """
        self.handle(first, ctx)
        ctx.boundary()
        count = 1
        while count < limit and inbox:
            head = inbox[0]
            if head.__class__ is tuple:
                task, message = head
                if task is not self or self.drain_key(message) != key:
                    break
                inbox.popleft()
            else:
                if head.task is not self:
                    break
                message = head.messages[head.index]
                if self.drain_key(message) != key:
                    break
                head.index += 1
                if head.index == head.end:
                    inbox.popleft()
            self.handle(message, ctx)
            ctx.boundary()
            count += 1
        return count

    def on_start(self, ctx: Context) -> None:
        """Hook invoked once before the first message is delivered."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} on machine {self.machine_id}>"
