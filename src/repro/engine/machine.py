"""Machines and CPU/storage cost models.

Each machine in the simulated shared-nothing cluster hosts one reshuffler task
and one joiner task (Fig. 1c of the paper).  A machine accumulates *busy
time*: every message handled by one of its tasks charges processing cost to
the machine, and the machine can only start handling the next message after it
finished the previous one.  This reproduces the paper's observation that the
input-load factor (amount of data a machine receives and stores) directly
drives per-machine processing time and, through the slowest machine, operator
completion time.

Storage is tracked in abstract units (tuple sizes).  When a machine's stored
state exceeds ``CostModel.memory_capacity``, subsequent storage-touching work
is multiplied by ``CostModel.spill_penalty``, modelling the BerkeleyDB
out-of-core behaviour of §5: overflowing machines become an order of magnitude
slower and dominate execution time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Abstract per-operation costs, in virtual time units.

    The defaults are calibrated so that receiving/storing an input tuple
    dominates probe cost per *comparison* but not per *match*, matching the
    paper's discussion in §3.3 of input-side overhead (demarshalling, index
    maintenance, probing) being the mapping-dependent cost.

    Attributes:
        receive_cost: cost to demarshal and ingest one incoming tuple.
        store_cost: cost to append a tuple to local storage and its index.
        probe_cost: cost per index probe of the opposite relation.
        match_cost: cost per produced output tuple.
        migration_cost: cost to ingest one migrated tuple.  The paper
            processes migrated tuples at twice the rate of new tuples, hence
            the default of half the receive+store cost.
        reshuffle_cost: cost for a reshuffler to route one tuple.
        memory_capacity: per-machine storage budget (in tuple size units)
            before the spill penalty applies; ``None`` means unbounded.
        spill_penalty: multiplier applied to storage-touching costs once a
            machine exceeds its memory capacity.
        network_latency: one-way message latency.
        per_tuple_network_cost: network transfer cost per unit of tuple size.
    """

    receive_cost: float = 1.0
    store_cost: float = 0.5
    probe_cost: float = 0.02
    match_cost: float = 0.05
    migration_cost: float = 0.75
    reshuffle_cost: float = 0.05
    memory_capacity: float | None = None
    spill_penalty: float = 10.0
    network_latency: float = 0.25
    per_tuple_network_cost: float = 0.01

    def with_memory(self, capacity: float | None) -> "CostModel":
        """Return a copy of this cost model with a different memory capacity."""
        return CostModel(
            receive_cost=self.receive_cost,
            store_cost=self.store_cost,
            probe_cost=self.probe_cost,
            match_cost=self.match_cost,
            migration_cost=self.migration_cost,
            reshuffle_cost=self.reshuffle_cost,
            memory_capacity=capacity,
            spill_penalty=self.spill_penalty,
            network_latency=self.network_latency,
            per_tuple_network_cost=self.per_tuple_network_cost,
        )


@dataclass
class Machine:
    """One physical machine of the simulated cluster.

    Attributes:
        machine_id: index of the machine within the cluster.
        cost_model: the cluster-wide cost model.
        busy_until: virtual time until which the machine's CPU is occupied.
        busy_time: total accumulated processing time.
        stored_size: total size of tuples currently stored on the machine.
        peak_stored_size: maximum of ``stored_size`` over the run — this is
            the measured per-machine input-load factor.
        received_size: total size of tuples ever received (inputs and
            migrations), which corresponds to the paper's ILF definition of
            "input size = semi-perimeter of the region".
        spilled: whether the machine ever exceeded its memory capacity.
    """

    machine_id: int
    cost_model: CostModel
    busy_until: float = 0.0
    busy_time: float = 0.0
    stored_size: float = 0.0
    peak_stored_size: float = 0.0
    received_size: float = 0.0
    spilled: bool = field(default=False)
    #: Member-completion boundaries of the most recent *drained* handler run
    #: (adaptive data plane), or None, with the run's start time.  See
    #: :meth:`priority_start`.
    drain_boundaries: list[float] | None = field(default=None, repr=False)
    drain_window_start: float = field(default=0.0, repr=False)

    @property
    def is_over_memory(self) -> bool:
        """True once the machine's stored state exceeds its memory budget."""
        capacity = self.cost_model.memory_capacity
        return capacity is not None and self.stored_size > capacity

    def storage_factor(self) -> float:
        """Cost multiplier for storage-touching work (1.0 in memory, else spill penalty)."""
        if self.is_over_memory:
            self.spilled = True
            return self.cost_model.spill_penalty
        return 1.0

    def add_stored(self, size: float) -> None:
        """Account for ``size`` units of newly stored tuple data.

        NOTE: ``JoinerTask.handle_drained`` inlines this arithmetic in its
        member loop (adaptive data plane hot path) — keep the two in sync.
        """
        self.stored_size += size
        self.received_size += size
        self.peak_stored_size = max(self.peak_stored_size, self.stored_size)

    def remove_stored(self, size: float) -> None:
        """Account for ``size`` units of discarded tuple data."""
        self.stored_size = max(0.0, self.stored_size - size)

    def occupy(self, start: float, duration: float) -> float:
        """Charge ``duration`` of work starting no earlier than ``start``.

        Returns the completion time.  Work is serialised per machine: if the
        machine is still busy at ``start`` the work begins when it frees up.
        """
        begin = max(start, self.busy_until)
        end = begin + duration
        self.busy_until = end
        self.busy_time += duration
        return end

    def record_drain_window(self, start: float, boundaries: list[float]) -> None:
        """Remember the member boundaries of the drained run that just executed.

        ``boundaries`` are the per-member completion times (ascending); they
        replace any previous record — by the time a later run executes, every
        event dated inside the earlier window has already left the queue.
        ``start`` bounds the window from below: a later event dated *before*
        the run (possible only across streaming pushes, which restart the
        virtual clock at zero) must not be mapped into it.
        """
        self.drain_window_start = start
        self.drain_boundaries = boundaries

    def clear_drain_window(self) -> None:
        """Invalidate the drain window (a plain single-message handler ran)."""
        if self.drain_boundaries is not None:
            self.drain_boundaries = None

    def priority_start(self, time: float) -> float:
        """Start time of a control-plane handler delivered at ``time``.

        On the per-tuple plane this is ``max(time, busy_until)``.  When the
        last work on this machine was a *drained* run, ``busy_until`` already
        covers the whole run even though the per-tuple plane would only have
        processed the members whose ticks precede ``time`` — so a delivery
        dated inside the drained window starts at the first member boundary
        after it, exactly where the per-tuple plane would have slotted it.
        """
        boundaries = self.drain_boundaries
        if boundaries and self.drain_window_start <= time <= boundaries[-1]:
            return boundaries[bisect_left(boundaries, time)]
        return max(time, self.busy_until)

    def reset_clock(self) -> None:
        """Clear busy/idle accounting (used between benchmark repetitions)."""
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.drain_boundaries = None
