"""Shared-nothing dataflow engine substrate.

The paper evaluates its operator inside Squall, a distributed online query
processing engine built on Storm, running on a 220-VM cluster.  This package
provides the equivalent substrate as a deterministic discrete-event
simulation: a cluster of machines with CPU cost models, memory budgets and
disk-spill penalties, a network with per-message costs and traffic counters,
and an actor-style task abstraction (sources, reshufflers, joiners, sinks)
exchanging messages in virtual time.

The simulation is deterministic given a seed, which makes every experiment in
``benchmarks/`` exactly reproducible.
"""

from repro.engine.batching import (
    AdaptiveBatchController,
    BatchController,
    FixedBatchController,
)
from repro.engine.executor import (
    Executor,
    SimulatedExecutor,
    ThreadedExecutor,
    ThreadedSimulator,
)
from repro.engine.machine import CostModel, Machine
from repro.engine.metrics import LatencySample, MetricsCollector
from repro.engine.network import Network, TrafficCategory
from repro.engine.simulator import DeliveryRun, Simulator
from repro.engine.stream import ArrivalSchedule, StreamTuple, interleave_streams
from repro.engine.task import Context, DataEnvelope, Message, MessageKind, Task

__all__ = [
    "AdaptiveBatchController",
    "ArrivalSchedule",
    "BatchController",
    "Context",
    "CostModel",
    "DataEnvelope",
    "DeliveryRun",
    "Executor",
    "FixedBatchController",
    "LatencySample",
    "Machine",
    "Message",
    "MessageKind",
    "MetricsCollector",
    "Network",
    "SimulatedExecutor",
    "Simulator",
    "StreamTuple",
    "Task",
    "ThreadedExecutor",
    "ThreadedSimulator",
    "TrafficCategory",
    "interleave_streams",
]
