"""Network model and traffic accounting.

The network connects every pair of machines.  Each message incurs a fixed
latency plus a size-proportional transfer cost, and all traffic is counted per
category so that experiments can report routing traffic, replicated storage
traffic and migration (adaptivity) traffic separately — the quantities behind
Fig. 6b and the amortised-communication claims of §4.2.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.engine.machine import CostModel


class TrafficCategory(enum.Enum):
    """Categories of simulated network traffic."""

    # Identity hashing: members are singletons and the per-message traffic
    # counters key dicts on them (see MessageKind for the same pattern).
    __hash__ = object.__hash__

    ROUTING = "routing"          # reshuffler -> joiner data tuples
    MIGRATION = "migration"      # joiner -> joiner state relocation
    CONTROL = "control"          # signals, acks, mapping changes
    SOURCE = "source"            # source -> reshuffler ingest
    OUTPUT = "output"            # joiner -> collector results


@dataclass
class Network:
    """Cluster interconnect with per-category traffic counters.

    Attributes:
        cost_model: supplies latency and per-size transfer costs.
        messages: number of messages sent per category.  A micro-batch counts
            as one message — the messages/tuples gap is the batching win.
        tuples: number of logical tuples carried per category (batch members
            are counted individually).
        volume: total size units transferred per category.
    """

    cost_model: CostModel
    messages: dict[TrafficCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    tuples: dict[TrafficCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    volume: dict[TrafficCategory, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _last_delivery: dict[tuple[int, int], float] = field(default_factory=dict)

    def transfer(
        self,
        sender: int,
        receiver: int,
        size: float,
        category: TrafficCategory,
        now: float,
        units: int = 1,
    ) -> float:
        """Record a message and return its delivery time.

        Messages between tasks co-located on the same machine still pay the
        (small) local-delivery latency — Storm delivers through queues either
        way — but are not counted in network volume.  Each (sender, receiver)
        link is FIFO: a message never overtakes an earlier message on the same
        link, which the epoch protocol of §4.3.1 relies on (epoch-change
        signals must not be overtaken by tuples sent before them).
        """
        local = sender == receiver
        if not local:
            self.messages[category] += 1
            self.tuples[category] += units
            self.volume[category] += size
        latency = self.cost_model.network_latency
        transfer_cost = 0.0 if local else self.cost_model.per_tuple_network_cost * size
        delivery = now + latency + transfer_cost
        link = (sender, receiver)
        # NOTE: the monotone per-link clamp below is load-bearing beyond the
        # epoch protocol — the wire-level delivery-merging layer
        # (``Simulator.enable_delivery_merging``) relies on a channel's
        # delivery times never decreasing so an open ``DeliveryRun``'s
        # parallel arrays stay sorted for its bisect-based settling.
        delivery = max(delivery, self._last_delivery.get(link, 0.0))
        self._last_delivery[link] = delivery
        return delivery

    def total_volume(self) -> float:
        """Total size units moved over the network (all categories)."""
        return float(sum(self.volume.values()))

    def data_volume(self) -> float:
        """Size units of data traffic (routing + migration), excluding control/output."""
        return float(
            self.volume[TrafficCategory.ROUTING] + self.volume[TrafficCategory.MIGRATION]
        )

    def migration_volume(self) -> float:
        """Size units moved due to state relocation (adaptivity cost)."""
        return float(self.volume[TrafficCategory.MIGRATION])

    def routing_volume(self) -> float:
        """Size units moved by regular tuple routing."""
        return float(self.volume[TrafficCategory.ROUTING])

    def snapshot(self) -> dict[str, float]:
        """A plain-dict summary of traffic volumes, keyed by category name."""
        return {category.value: float(self.volume[category]) for category in TrafficCategory}


class ReliableWire:
    """Reliable-delivery sublayer over an unreliable (fault-injected) wire.

    Holds the fault schedule (indexed for O(1) per-send lookup), the
    per-link sequencer/dedup state, and the degradation counters.  The
    simulator owns the event mechanics (frame arrival events, retransmit
    timers); this object owns the *policy*: which sends fault, what the
    receiver's expected sequence number is, and how the counters reconcile.

    Sequencing model (MillWheel-style sequencer/dedup): every original send
    on a directed link gets the next monotone sequence number; the receiver
    releases frames to the task layer strictly in sequence order, buffering
    early arrivals and discarding duplicates.  Because sequence order equals
    send order, release order equals the fault-free wire's per-link FIFO
    order — the epoch protocol's FIFO assumption survives any fault mix.

    Counter invariants (asserted by the conformance suite):
    ``frames_sent == frames_delivered + frames_dropped`` (every frame
    instance either arrives or is dropped) and
    ``frames_applied == frames_delivered - frames_deduped`` (every arrival
    is either released to the task layer — possibly after reorder
    buffering — or discarded as a duplicate).
    """

    def __init__(self, faults, retry_base: float, retry_max_attempts: int) -> None:
        self.retry_base = retry_base
        self.retry_max_attempts = retry_max_attempts
        # (link, nth) -> [specs]: per-send faults, looked up on each send.
        self._actions: dict[tuple, list] = {}
        # (frozenset_a, frozenset_b, from_time, until_time) partition windows.
        self._partitions: list[tuple] = []
        for spec in faults:
            if spec.kind == "partition":
                self._partitions.append(
                    (
                        frozenset(spec.machines_a),
                        frozenset(spec.machines_b),
                        spec.from_time,
                        spec.until_time,
                    )
                )
            else:
                self._actions.setdefault((spec.link, spec.nth), []).append(spec)
        # Per-link sequencer (sender side) and dedup/in-order state (receiver
        # side).  `recv_next[link]` is the next sequence number the receiver
        # will release; `reorder[link]` buffers early arrivals by sequence.
        self._send_seq: dict[tuple, int] = {}
        self.recv_next: dict[tuple, int] = {}
        self.reorder: dict[tuple, dict] = {}
        # Degradation counters: frame *instances* (a duplicate or retransmit
        # counts as another sent frame).
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_retransmitted = 0
        self.frames_reordered = 0
        self.frames_deduped = 0
        self.frames_applied = 0
        # attempts -> count: how many retransmits fired on their nth attempt.
        self.retransmit_histogram: dict[int, int] = {}

    def on_send(self, link: tuple) -> tuple[int, bool, bool, float]:
        """Assign the next sequence number and look up per-send faults.

        Returns ``(seq, dropped, duplicated, delay_by)`` for the original
        send; ``seq`` is 0-based, so spec ``nth`` (1-based) matches
        ``seq + 1``.
        """
        seq = self._send_seq.get(link, 0)
        self._send_seq[link] = seq + 1
        if not self._actions:
            return seq, False, False, 0.0
        dropped = duplicated = False
        delay_by = 0.0
        for spec in self._actions.get((link, seq + 1), ()):
            if spec.kind == "drop":
                dropped = True
            elif spec.kind == "duplicate":
                duplicated = True
            else:
                delay_by += spec.by
        return seq, dropped, duplicated, delay_by

    def partitioned(self, sender: int, receiver: int, now: float) -> bool:
        """True when a partition window currently severs ``sender -> receiver``."""
        if not self._partitions:
            return False
        for side_a, side_b, from_time, until_time in self._partitions:
            if not from_time <= now < until_time:
                continue
            if (sender in side_a and receiver in side_b) or (
                sender in side_b and receiver in side_a
            ):
                return True
        return False

    def counters(self) -> dict[str, int]:
        """The degradation counters as a plain dict (RunResult.wire_counters)."""
        return {
            "sent": self.frames_sent,
            "delivered": self.frames_delivered,
            "dropped": self.frames_dropped,
            "duplicated": self.frames_duplicated,
            "retransmitted": self.frames_retransmitted,
            "reordered": self.frames_reordered,
            "deduped": self.frames_deduped,
            "applied": self.frames_applied,
        }
