"""Network model and traffic accounting.

The network connects every pair of machines.  Each message incurs a fixed
latency plus a size-proportional transfer cost, and all traffic is counted per
category so that experiments can report routing traffic, replicated storage
traffic and migration (adaptivity) traffic separately — the quantities behind
Fig. 6b and the amortised-communication claims of §4.2.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.engine.machine import CostModel


class TrafficCategory(enum.Enum):
    """Categories of simulated network traffic."""

    # Identity hashing: members are singletons and the per-message traffic
    # counters key dicts on them (see MessageKind for the same pattern).
    __hash__ = object.__hash__

    ROUTING = "routing"          # reshuffler -> joiner data tuples
    MIGRATION = "migration"      # joiner -> joiner state relocation
    CONTROL = "control"          # signals, acks, mapping changes
    SOURCE = "source"            # source -> reshuffler ingest
    OUTPUT = "output"            # joiner -> collector results


@dataclass
class Network:
    """Cluster interconnect with per-category traffic counters.

    Attributes:
        cost_model: supplies latency and per-size transfer costs.
        messages: number of messages sent per category.  A micro-batch counts
            as one message — the messages/tuples gap is the batching win.
        tuples: number of logical tuples carried per category (batch members
            are counted individually).
        volume: total size units transferred per category.
    """

    cost_model: CostModel
    messages: dict[TrafficCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    tuples: dict[TrafficCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    volume: dict[TrafficCategory, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _last_delivery: dict[tuple[int, int], float] = field(default_factory=dict)

    def transfer(
        self,
        sender: int,
        receiver: int,
        size: float,
        category: TrafficCategory,
        now: float,
        units: int = 1,
    ) -> float:
        """Record a message and return its delivery time.

        Messages between tasks co-located on the same machine still pay the
        (small) local-delivery latency — Storm delivers through queues either
        way — but are not counted in network volume.  Each (sender, receiver)
        link is FIFO: a message never overtakes an earlier message on the same
        link, which the epoch protocol of §4.3.1 relies on (epoch-change
        signals must not be overtaken by tuples sent before them).
        """
        local = sender == receiver
        if not local:
            self.messages[category] += 1
            self.tuples[category] += units
            self.volume[category] += size
        latency = self.cost_model.network_latency
        transfer_cost = 0.0 if local else self.cost_model.per_tuple_network_cost * size
        delivery = now + latency + transfer_cost
        link = (sender, receiver)
        # NOTE: the monotone per-link clamp below is load-bearing beyond the
        # epoch protocol — the wire-level delivery-merging layer
        # (``Simulator.enable_delivery_merging``) relies on a channel's
        # delivery times never decreasing so an open ``DeliveryRun``'s
        # parallel arrays stay sorted for its bisect-based settling.
        delivery = max(delivery, self._last_delivery.get(link, 0.0))
        self._last_delivery[link] = delivery
        return delivery

    def total_volume(self) -> float:
        """Total size units moved over the network (all categories)."""
        return float(sum(self.volume.values()))

    def data_volume(self) -> float:
        """Size units of data traffic (routing + migration), excluding control/output."""
        return float(
            self.volume[TrafficCategory.ROUTING] + self.volume[TrafficCategory.MIGRATION]
        )

    def migration_volume(self) -> float:
        """Size units moved due to state relocation (adaptivity cost)."""
        return float(self.volume[TrafficCategory.MIGRATION])

    def routing_volume(self) -> float:
        """Size units moved by regular tuple routing."""
        return float(self.volume[TrafficCategory.ROUTING])

    def snapshot(self) -> dict[str, float]:
        """A plain-dict summary of traffic volumes, keyed by category name."""
        return {category.value: float(self.volume[category]) for category in TrafficCategory}
