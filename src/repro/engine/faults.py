"""Deterministic fault injection: crash specifications for the simulator.

A fault schedule is a tuple of :class:`FaultSpec` entries carried on
:class:`~repro.api.config.RunConfig`.  The simulator executes time-anchored
faults as ordinary heap events (in a dedicated rank band above machine
ticks, so equal-time ordering is plane-invariant) and event-anchored faults
by watching its own event counter — either way, the same schedule under the
same seed reproduces the same run bit for bit, which is what lets crash
scenarios live in the conformance suite like any other cell.

The crash model is **fail-stop at handler boundaries**: a crash lands
between simulator events, so every handler either ran to completion (its
state mutations are journaled, its sends are durably on the wire) or not at
all.  A crashed machine loses its in-memory epoch stores and its inbox;
traffic addressed to it is buffered and retried by the link layer (see
``Simulator``) rather than silently dropped.

On the threaded executor the same model holds on the dispatch frontier:
fault events are full barriers (every in-flight handler commits before the
crash processes, so fail-stop-at-handler-boundaries is preserved verbatim),
and an armed event-anchored trigger degrades the frontier to lock-step —
the oracle checks the trigger after *every* heap event, so
``events_processed`` must be exact at each pop.  Overlap resumes once the
schedule drains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSpec:
    """One injected machine crash.

    Exactly one of ``at_time`` (virtual-time anchor) and ``after_events``
    (simulator event-count anchor) must be set.

    Attributes:
        machine: id of the machine to crash.
        at_time: virtual time at which the crash fires (as a heap event).
        after_events: crash as soon as the simulator has processed this many
            handler events.
        restart_after: delay, in virtual time after the crash, before a blank
            replacement machine comes up and recovery starts.  ``None`` means
            the replacement appears when the coordinator detects the failure,
            i.e. after one ack timeout (``RunConfig.ack_timeout``).
    """

    machine: int
    at_time: float | None = None
    after_events: int | None = None
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.machine, int) or isinstance(self.machine, bool):
            raise ValueError(f"fault machine must be an int, got {self.machine!r}")
        if self.machine < 0:
            raise ValueError(f"fault machine must be >= 0, got {self.machine}")
        anchors = (self.at_time is not None) + (self.after_events is not None)
        if anchors != 1:
            raise ValueError(
                "exactly one of at_time= and after_events= must be set "
                f"(got at_time={self.at_time!r}, after_events={self.after_events!r})"
            )
        if self.at_time is not None:
            if isinstance(self.at_time, bool) or not isinstance(self.at_time, (int, float)):
                raise ValueError(f"at_time must be a number, got {self.at_time!r}")
            if self.at_time < 0:
                raise ValueError(f"at_time must be >= 0, got {self.at_time}")
        if self.after_events is not None:
            if isinstance(self.after_events, bool) or not isinstance(self.after_events, int):
                raise ValueError(
                    f"after_events must be an int, got {self.after_events!r}"
                )
            if self.after_events < 1:
                raise ValueError(f"after_events must be >= 1, got {self.after_events}")
        if self.restart_after is not None:
            if isinstance(self.restart_after, bool) or not isinstance(
                self.restart_after, (int, float)
            ):
                raise ValueError(
                    f"restart_after must be a number, got {self.restart_after!r}"
                )
            if self.restart_after <= 0:
                raise ValueError(
                    f"restart_after must be > 0, got {self.restart_after}"
                )

    def to_dict(self) -> dict:
        """Plain-dict form (used by RunConfig JSON round-tripping)."""
        return {
            "machine": self.machine,
            "at_time": self.at_time,
            "after_events": self.after_events,
            "restart_after": self.restart_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        unknown = set(data) - {"machine", "at_time", "after_events", "restart_after"}
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        return cls(**data)


def crash(
    machine: int, at_virtual_time: float, restart_after: float | None = None
) -> FaultSpec:
    """Crash ``machine`` at a virtual-time instant."""
    return FaultSpec(machine=machine, at_time=at_virtual_time, restart_after=restart_after)


def crash_after_events(
    machine: int, events: int, restart_after: float | None = None
) -> FaultSpec:
    """Crash ``machine`` as soon as ``events`` simulator events have run."""
    return FaultSpec(machine=machine, after_events=events, restart_after=restart_after)


def normalize_fault_schedule(schedule) -> tuple[FaultSpec, ...]:
    """Coerce a fault-schedule value into a tuple of :class:`FaultSpec`.

    Accepts FaultSpec instances and plain dicts (the JSON round-trip form);
    anything else raises with the accepted shapes listed.
    """
    if schedule is None:
        return ()
    if isinstance(schedule, FaultSpec):
        schedule = (schedule,)
    if not isinstance(schedule, (tuple, list)):
        raise ValueError(
            "fault_schedule must be a sequence of FaultSpec entries "
            f"(build them with crash()/crash_after_events()), got {schedule!r}"
        )
    normalized = []
    for entry in schedule:
        if isinstance(entry, FaultSpec):
            normalized.append(entry)
        elif isinstance(entry, dict):
            normalized.append(FaultSpec.from_dict(entry))
        else:
            raise ValueError(
                "fault_schedule entries must be FaultSpec objects or dicts, "
                f"got {entry!r}"
            )
    return tuple(normalized)
