"""Deterministic fault injection: crash specifications for the simulator.

A fault schedule is a tuple of :class:`FaultSpec` entries carried on
:class:`~repro.api.config.RunConfig`.  The simulator executes time-anchored
faults as ordinary heap events (in a dedicated rank band above machine
ticks, so equal-time ordering is plane-invariant) and event-anchored faults
by watching its own event counter — either way, the same schedule under the
same seed reproduces the same run bit for bit, which is what lets crash
scenarios live in the conformance suite like any other cell.

The crash model is **fail-stop at handler boundaries**: a crash lands
between simulator events, so every handler either ran to completion (its
state mutations are journaled, its sends are durably on the wire) or not at
all.  A crashed machine loses its in-memory epoch stores and its inbox;
traffic addressed to it is buffered and retried by the link layer (see
``Simulator``) rather than silently dropped.

On the threaded executor the same model holds on the dispatch frontier:
fault events are full barriers (every in-flight handler commits before the
crash processes, so fail-stop-at-handler-boundaries is preserved verbatim),
and an armed event-anchored trigger degrades the frontier to lock-step —
the oracle checks the trigger after *every* heap event, so
``events_processed`` must be exact at each pop.  Overlap resumes once the
schedule drains.

The module also defines the **network fault plane**: :class:`NetworkFaultSpec`
entries carried on ``RunConfig.network_faults`` describe wire-level faults —
dropping, duplicating, or delaying the nth original send on a directed link,
or partitioning two machine groups for a virtual-time window.  They are
injected below the task layer by the simulator's reliable-delivery sublayer
(``ReliableWire`` in :mod:`repro.engine.network`), which masks them with
per-link sequence numbers, receiver-side dedup/in-order release, and sender
retransmit timers with exponential backoff.  Retry exhaustion surfaces as
:class:`UnreachableLinkError` naming the link and attempt count — never a
hang.  Like crash faults, the schedule is deterministic: the same specs under
the same seed reproduce the same run bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSpec:
    """One injected machine crash.

    Exactly one of ``at_time`` (virtual-time anchor) and ``after_events``
    (simulator event-count anchor) must be set.

    Attributes:
        machine: id of the machine to crash.
        at_time: virtual time at which the crash fires (as a heap event).
        after_events: crash as soon as the simulator has processed this many
            handler events.
        restart_after: delay, in virtual time after the crash, before a blank
            replacement machine comes up and recovery starts.  ``None`` means
            the replacement appears when the coordinator detects the failure,
            i.e. after one ack timeout (``RunConfig.ack_timeout``).
    """

    machine: int
    at_time: float | None = None
    after_events: int | None = None
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.machine, int) or isinstance(self.machine, bool):
            raise ValueError(f"fault machine must be an int, got {self.machine!r}")
        if self.machine < 0:
            raise ValueError(f"fault machine must be >= 0, got {self.machine}")
        anchors = (self.at_time is not None) + (self.after_events is not None)
        if anchors != 1:
            raise ValueError(
                "exactly one of at_time= and after_events= must be set "
                f"(got at_time={self.at_time!r}, after_events={self.after_events!r})"
            )
        if self.at_time is not None:
            if isinstance(self.at_time, bool) or not isinstance(self.at_time, (int, float)):
                raise ValueError(f"at_time must be a number, got {self.at_time!r}")
            if self.at_time < 0:
                raise ValueError(f"at_time must be >= 0, got {self.at_time}")
        if self.after_events is not None:
            if isinstance(self.after_events, bool) or not isinstance(self.after_events, int):
                raise ValueError(
                    f"after_events must be an int, got {self.after_events!r}"
                )
            if self.after_events < 1:
                raise ValueError(f"after_events must be >= 1, got {self.after_events}")
        if self.restart_after is not None:
            if isinstance(self.restart_after, bool) or not isinstance(
                self.restart_after, (int, float)
            ):
                raise ValueError(
                    f"restart_after must be a number, got {self.restart_after!r}"
                )
            if self.restart_after <= 0:
                raise ValueError(
                    f"restart_after must be > 0, got {self.restart_after}"
                )

    def to_dict(self) -> dict:
        """Plain-dict form (used by RunConfig JSON round-tripping)."""
        return {
            "machine": self.machine,
            "at_time": self.at_time,
            "after_events": self.after_events,
            "restart_after": self.restart_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        unknown = set(data) - {"machine", "at_time", "after_events", "restart_after"}
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        return cls(**data)


def crash(
    machine: int, at_virtual_time: float, restart_after: float | None = None
) -> FaultSpec:
    """Crash ``machine`` at a virtual-time instant."""
    return FaultSpec(machine=machine, at_time=at_virtual_time, restart_after=restart_after)


def crash_after_events(
    machine: int, events: int, restart_after: float | None = None
) -> FaultSpec:
    """Crash ``machine`` as soon as ``events`` simulator events have run."""
    return FaultSpec(machine=machine, after_events=events, restart_after=restart_after)


class UnreachableLinkError(RuntimeError):
    """A link stayed lossy past the retransmit budget.

    Raised by the reliable-delivery sublayer when a frame has been
    retransmitted ``retry_max_attempts`` times without getting through
    (e.g. a partition window longer than the exponential-backoff budget).
    Surfacing a named error — instead of retrying forever — is what
    guarantees every faulty run terminates.

    Attributes:
        link: the ``(sender, receiver)`` machine pair that stayed dark.
        attempts: how many retransmit attempts were spent before giving up.
    """

    def __init__(self, link: tuple, attempts: int) -> None:
        self.link = link
        self.attempts = attempts
        super().__init__(
            f"link {link[0]}->{link[1]} unreachable after "
            f"{attempts} retransmit attempts"
        )


_NETWORK_FAULT_KINDS = ("drop", "duplicate", "delay", "partition")
_NETWORK_FAULT_FIELDS = (
    "kind", "link", "nth", "by",
    "machines_a", "machines_b", "from_time", "until_time",
)


def _check_number(name: str, value, *, minimum=None, strict=False) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if minimum is not None:
        if strict and value <= minimum:
            raise ValueError(f"{name} must be > {minimum}, got {value}")
        if not strict and value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")


def _check_machine_tuple(name: str, value) -> tuple:
    if not isinstance(value, tuple) or not value:
        raise ValueError(
            f"{name} must be a non-empty sequence of machine ids, got {value!r}"
        )
    for machine in value:
        if isinstance(machine, bool) or not isinstance(machine, int) or machine < 0:
            raise ValueError(
                f"{name} entries must be ints >= 0, got {machine!r}"
            )
    if len(set(value)) != len(value):
        raise ValueError(f"{name} contains duplicate machine ids: {value!r}")
    return value


@dataclass(frozen=True)
class NetworkFaultSpec:
    """One injected wire-level fault.

    Per-send faults (``drop``/``duplicate``/``delay``) target the ``nth``
    *original* send (1-based; retransmits and duplicates do not advance the
    count) on a directed ``link = (sender, receiver)`` machine pair.
    ``partition`` severs all traffic between two machine groups (both
    directions) for the virtual-time window ``[from_time, until_time)``.

    Attributes:
        kind: one of ``"drop"``, ``"duplicate"``, ``"delay"``, ``"partition"``.
        link: ``(sender_machine, receiver_machine)`` for per-send kinds.
        nth: 1-based index of the targeted original send on the link.
        by: virtual-time delay added to the frame's arrival (``delay`` only).
        machines_a: one side of the partition (``partition`` only).
        machines_b: the other side of the partition.
        from_time: virtual time at which the partition starts (inclusive).
        until_time: virtual time at which the partition heals (exclusive).
    """

    kind: str
    link: tuple | None = None
    nth: int | None = None
    by: float | None = None
    machines_a: tuple | None = None
    machines_b: tuple | None = None
    from_time: float | None = None
    until_time: float | None = None

    def __post_init__(self) -> None:
        # Coerce JSON round-trip lists back to tuples before validating.
        for field in ("link", "machines_a", "machines_b"):
            value = getattr(self, field)
            if isinstance(value, list):
                object.__setattr__(self, field, tuple(value))
        if self.kind not in _NETWORK_FAULT_KINDS:
            raise ValueError(
                f"network fault kind must be one of {_NETWORK_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "partition":
            for field in ("link", "nth", "by"):
                if getattr(self, field) is not None:
                    raise ValueError(
                        f"partition faults take machines_a/machines_b/"
                        f"from_time/until_time, not {field}="
                    )
            a = _check_machine_tuple("machines_a", self.machines_a)
            b = _check_machine_tuple("machines_b", self.machines_b)
            common = set(a) & set(b)
            if common:
                raise ValueError(
                    "partition sides must be disjoint; machines "
                    f"{sorted(common)} appear on both"
                )
            _check_number("from_time", self.from_time, minimum=0)
            _check_number("until_time", self.until_time)
            if not self.until_time > self.from_time:
                raise ValueError(
                    "partition window must be non-empty: from_time="
                    f"{self.from_time} until_time={self.until_time}"
                )
            return
        for field in ("machines_a", "machines_b", "from_time", "until_time"):
            if getattr(self, field) is not None:
                raise ValueError(
                    f"{self.kind} faults take link=/nth=, not {field}="
                )
        link = self.link
        if (
            not isinstance(link, tuple)
            or len(link) != 2
            or any(
                isinstance(m, bool) or not isinstance(m, int) or m < 0
                for m in link
            )
        ):
            raise ValueError(
                "link must be a (sender, receiver) pair of machine ids, "
                f"got {link!r}"
            )
        if link[0] == link[1]:
            raise ValueError(f"link endpoints must differ, got {link!r}")
        if isinstance(self.nth, bool) or not isinstance(self.nth, int):
            raise ValueError(f"nth must be an int, got {self.nth!r}")
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.kind == "delay":
            _check_number("by", self.by, minimum=0, strict=True)
        elif self.by is not None:
            raise ValueError(f"by= is only valid for delay faults, got {self.by!r}")

    def machines(self) -> tuple:
        """Every machine id the spec references (for config-range checks)."""
        if self.kind == "partition":
            return tuple(self.machines_a) + tuple(self.machines_b)
        return tuple(self.link)

    def to_dict(self) -> dict:
        """Plain-dict form (used by RunConfig JSON round-tripping)."""
        return {
            "kind": self.kind,
            "link": list(self.link) if self.link is not None else None,
            "nth": self.nth,
            "by": self.by,
            "machines_a": (
                list(self.machines_a) if self.machines_a is not None else None
            ),
            "machines_b": (
                list(self.machines_b) if self.machines_b is not None else None
            ),
            "from_time": self.from_time,
            "until_time": self.until_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkFaultSpec":
        unknown = set(data) - set(_NETWORK_FAULT_FIELDS)
        if unknown:
            raise ValueError(f"unknown NetworkFaultSpec field(s): {sorted(unknown)}")
        return cls(**data)


def drop(link, nth: int) -> NetworkFaultSpec:
    """Drop the ``nth`` original send on directed ``link = (sender, receiver)``."""
    return NetworkFaultSpec(kind="drop", link=tuple(link), nth=nth)


def duplicate(link, nth: int) -> NetworkFaultSpec:
    """Deliver the ``nth`` original send on ``link`` twice."""
    return NetworkFaultSpec(kind="duplicate", link=tuple(link), nth=nth)


def delay(link, nth: int, by: float) -> NetworkFaultSpec:
    """Delay the ``nth`` original send on ``link`` by ``by`` virtual time."""
    return NetworkFaultSpec(kind="delay", link=tuple(link), nth=nth, by=by)


def partition(machines_a, machines_b, from_time: float, until_time: float) -> NetworkFaultSpec:
    """Sever all traffic between two machine groups for ``[from_time, until_time)``."""
    return NetworkFaultSpec(
        kind="partition",
        machines_a=tuple(machines_a),
        machines_b=tuple(machines_b),
        from_time=from_time,
        until_time=until_time,
    )


def normalize_network_faults(faults) -> tuple[NetworkFaultSpec, ...]:
    """Coerce a network-fault value into a tuple of :class:`NetworkFaultSpec`.

    Accepts NetworkFaultSpec instances and plain dicts (the JSON round-trip
    form); anything else raises with the accepted shapes listed.
    """
    if faults is None:
        return ()
    if isinstance(faults, NetworkFaultSpec):
        faults = (faults,)
    if not isinstance(faults, (tuple, list)):
        raise ValueError(
            "network_faults must be a sequence of NetworkFaultSpec entries "
            "(build them with drop()/duplicate()/delay()/partition()), "
            f"got {faults!r}"
        )
    normalized = []
    for entry in faults:
        if isinstance(entry, NetworkFaultSpec):
            normalized.append(entry)
        elif isinstance(entry, dict):
            normalized.append(NetworkFaultSpec.from_dict(entry))
        else:
            raise ValueError(
                "network_faults entries must be NetworkFaultSpec objects or "
                f"dicts, got {entry!r}"
            )
    return tuple(normalized)


def normalize_fault_schedule(schedule) -> tuple[FaultSpec, ...]:
    """Coerce a fault-schedule value into a tuple of :class:`FaultSpec`.

    Accepts FaultSpec instances and plain dicts (the JSON round-trip form);
    anything else raises with the accepted shapes listed.
    """
    if schedule is None:
        return ()
    if isinstance(schedule, FaultSpec):
        schedule = (schedule,)
    if not isinstance(schedule, (tuple, list)):
        raise ValueError(
            "fault_schedule must be a sequence of FaultSpec entries "
            f"(build them with crash()/crash_after_events()), got {schedule!r}"
        )
    normalized = []
    for entry in schedule:
        if isinstance(entry, FaultSpec):
            normalized.append(entry)
        elif isinstance(entry, dict):
            normalized.append(FaultSpec.from_dict(entry))
        else:
            raise ValueError(
                "fault_schedule entries must be FaultSpec objects or dicts, "
                f"got {entry!r}"
            )
    return tuple(normalized)
