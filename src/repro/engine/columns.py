"""Array-backed column primitives of the columnar tuple plane.

The columnar probe engine (``probe_engine="columnar"``, see
``repro.joins.columnar``) replaces the per-candidate Python loops of the
vectorized engine with set-at-a-time NumPy kernels.  This module holds the
engine-level building blocks, kept free of any join/protocol knowledge:

* the guarded NumPy import (``HAS_NUMPY``) — NumPy is an *optional* extra;
  the ``scalar``/``vectorized`` engines never touch this module's array
  types, and entry points that need the columnar engine fail eagerly with
  the registered choices listed (see ``RunConfig``),
* :class:`Column` — a growable, append-only NumPy buffer whose length-``n``
  views are stable snapshots (appends write past ``n``; a capacity-doubling
  realloc leaves old buffers to the views that reference them),
* :class:`MatchBlock` — the columnar match set of one probed tuple: the
  candidate run as parallel arrival-time / tuple-id arrays instead of a list
  of ``(left, right)`` pairs.  ``MetricsCollector.record_outputs`` consumes
  blocks with one vectorised latency kernel, replacing the per-pair
  ``LatencySample`` loop — sample values are bit-identical (same float64
  ``max``/subtract per pair, applied elementwise).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised both ways across environments
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: Human-readable hint appended to errors raised when the columnar engine is
#: requested without NumPy installed.
NUMPY_HINT = (
    "the columnar probe engine requires NumPy "
    "(install the 'columnar' extra: pip install repro[columnar])"
)


class Column:
    """Growable, append-only NumPy buffer with stable snapshot views.

    ``view()`` returns ``data[:n]`` without copying.  Because appends only
    ever write at positions ``>= n`` and a capacity-doubling reallocation
    swaps in a *new* buffer (the old one stays alive for as long as any view
    references it), a view taken now is a stable snapshot of the first ``n``
    elements forever — the property the equi probe kernel relies on to hand
    out zero-copy match blocks over live hash-bucket columns.
    """

    __slots__ = ("data", "n")

    def __init__(self, dtype, capacity: int = 8) -> None:
        self.data = np.empty(capacity, dtype=dtype)
        self.n = 0

    def append(self, value) -> None:
        data = self.data
        n = self.n
        if n == data.shape[0]:
            grown = np.empty(n * 2, dtype=data.dtype)
            grown[:n] = data
            self.data = data = grown
        data[n] = value
        self.n = n + 1

    def extend(self, values) -> None:
        incoming = np.asarray(values, dtype=self.data.dtype)
        needed = self.n + incoming.shape[0]
        if needed > self.data.shape[0]:
            capacity = self.data.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=self.data.dtype)
            grown[: self.n] = self.data[: self.n]
            self.data = grown
        self.data[self.n : needed] = incoming
        self.n = needed

    def view(self):
        """Zero-copy snapshot of the current contents (stable, see class doc)."""
        return self.data[: self.n]


class MatchBlock:
    """Columnar match set of one probed tuple.

    Carries the probing ``item``, its orientation (``item_is_left``: whether
    it is the R-side of every emitted pair) and the matched candidates as
    parallel ``arrivals``/``ids`` arrays — everything emission needs, with no
    per-pair tuples materialised.  Duck-type compatible with the list-of-pairs
    ``TupleActions.matches`` for the operations the joiner hot path performs
    (``len`` for the match cost, truthiness for the emission guard); the
    metrics collector dispatches on the type to run the bulk emission kernel.
    """

    __slots__ = ("item", "item_is_left", "arrivals", "ids", "count")

    def __init__(self, item, item_is_left: bool, arrivals, ids) -> None:
        self.item = item
        self.item_is_left = item_is_left
        self.arrivals = arrivals
        self.ids = ids
        self.count = arrivals.shape[0]

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def pairs(self, left=None, right=None):
        """The matches as ``(left_id, right_id)`` tuple-id pairs (tests/debug)."""
        item_id = self.item.tuple_id
        ids = self.ids.tolist()
        if self.item_is_left:
            return [(item_id, candidate) for candidate in ids]
        return [(candidate, item_id) for candidate in ids]
