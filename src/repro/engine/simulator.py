"""Deterministic discrete-event simulator.

The simulator owns the cluster (machines + network), the task registry and a
priority queue of pending events.  Two kinds of events exist:

* **deliveries** — a message arrives at a task.  For tasks hosted on a
  machine the message is appended to the machine's FIFO inbox (a machine
  handles one message at a time); off-cluster tasks (sources, collectors)
  handle it immediately.  Small control-plane messages (mapping changes,
  migration acks, resume signals) bypass the data backlog, reflecting the
  dedicated control channel of real deployments; data-plane ordering per link
  is still FIFO, which the epoch protocol relies on.
* **machine ticks** — a machine becomes free and handles the next message in
  its inbox.  The handler's CPU charge extends the machine's busy time and
  any messages it sends are scheduled after the work completes plus network
  latency/transfer time.

This yields the two quantities the paper's evaluation is built on:

* **execution time** — the virtual time at which the last piece of work
  finishes, dominated by the most loaded machine, and
* **tuple latency** — output emission time minus the arrival time of the more
  recent matching input tuple.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time as _time
from bisect import bisect_left, bisect_right
from collections import deque
from typing import Iterable

from repro.engine.faults import UnreachableLinkError
from repro.engine.machine import CostModel, Machine
from repro.engine.metrics import MetricsCollector
from repro.engine.network import Network, TrafficCategory
from repro.engine.stream import ArrivalSchedule, StreamTuple, TupleBatch
from repro.engine.task import Context, DataEnvelope, Message, MessageKind, Task

#: Control-plane message kinds that are not queued behind the data backlog.
PRIORITY_KINDS = frozenset(
    {MessageKind.MAPPING_CHANGE, MessageKind.MIGRATION_ACK, MessageKind.RESUME}
)

#: Kinds the wire-level delivery-merging layer may coalesce into a
#: :class:`DeliveryRun`: every inbox-bound kind, i.e. everything except the
#: priority control plane (which executes at delivery rather than queueing).
#: Merging is exact — a run's members settle into the receiving inbox in
#: per-tuple ``(time, rank)`` order — so eligibility is purely about *where*
#: a delivery lands, not what it carries.
MERGEABLE_KINDS = frozenset(MessageKind) - PRIORITY_KINDS

# Pending events are plain ``(time, rank, target, message)`` tuples so the
# heap compares at C speed.  A delivery carries the destination Task and its
# Message; a machine tick carries the machine id with ``message=None``.
#
# ``rank`` breaks time ties *plane-invariantly*: equal-time events order as
# source-feed deliveries (in feed order) < task sends (by sender machine,
# destination machine, then the per-link FIFO sequence) < machine ticks (by
# machine id).  Because the rank is a pure function of the message flow —
# never of the wall-clock order in which handlers happened to run — the event
# order, and with it every virtual-time quantity, is identical whether
# handlers execute one message per event or as coalesced drained runs (the
# adaptive data plane's bit-exactness relies on this).
_SEND_RANK_BASE = 1 << 59
_TICK_RANK_BASE = 1 << 62
_LINK_SPAN = 1 << 34
_MACHINE_SPAN = 1 << 12  # > max machines + off-cluster sentinel

# Fault-plane events (crash / restart / link retry) rank above machine ticks:
# at an equal instant every ordinary event of that time completes first, so a
# crash always lands *between* handler events (fail-stop at handler
# boundaries, see repro.engine.faults).  Within the band, restarts order
# before retries — a retry popping at the restart instant must see the
# machine alive — and a per-simulator serial breaks remaining ties so heap
# entries never compare the _FaultEvent payloads themselves.  The unreliable
# wire's frame arrivals and retransmit timers ride the same band (offsets 3
# and 4): they too land between handler events, and on the threaded executor
# they inherit the fault plane's full-barrier treatment on the dispatch
# frontier for free.
_FAULT_RANK_BASE = 1 << 63
_FAULT_ACTION_OFFSETS = {"crash": 0, "restart": 1, "retry": 2, "frame": 3, "retransmit": 4}

#: Heap marker distinguishing a DeliveryRun event from a plain delivery
#: (``message`` slot) — identity-checked once per pop, like the tick's None.
_DELIVERY_RUN = object()


class DeliveryRun:
    """A merged sequence of same-channel inbox deliveries — one heap event.

    One run carries the open traffic of one wire channel: a (sender machine,
    destination task) FIFO link.  It enters the global event heap once, keyed
    by its *first* member's ``(delivery time, rank)``, and stays open — later
    sends on the same channel (from subsequent handler invocations of the
    sending machine) append to the parallel ``times``/``ranks``/``messages``
    arrays, never creating another heap event.  Appends are always dated
    beyond every settle bound the receiver has already passed (a send created
    at virtual time ``T`` delivers no earlier than ``T`` plus the network
    latency, and the link itself is FIFO), so the run's members still settle
    into the receiving inbox in exact per-tuple ``(time, rank)`` order (see
    ``Simulator._settle``).  ``start`` is the cursor of the next unsettled
    member; when the receiver exhausts the run it is ``closed`` and the next
    send on the channel arms a fresh one.
    """

    __slots__ = ("task", "times", "ranks", "messages", "start", "closed")

    def __init__(self, task: Task, times: list, ranks: list, messages: list) -> None:
        self.task = task
        self.times = times
        self.ranks = ranks
        self.messages = messages
        self.start = 0
        self.closed = False


class SettledSegment:
    """A settled multi-member slice of a :class:`DeliveryRun` — one inbox entry.

    The settle pass used to append one ``(task, message)`` tuple per member;
    a segment instead hands the run's message list to the consumer with a
    ``[index, end)`` cursor window — no per-member allocation on the settle
    path.  Inbox entries are therefore either ``(task, message)`` tuples or
    segments (``entry.__class__ is tuple`` distinguishes them); consumers
    (the tick loop and every ``Task.handle_drained`` implementation) take the
    member at ``index``, advance it in place, and drop the segment once
    ``index`` reaches ``end``.  Per-tuple inbox order is preserved because
    the settle pass cuts segments exactly at the ``(time, rank)`` boundaries
    where per-member appends would have interleaved other deliveries.
    """

    __slots__ = ("task", "messages", "index", "end")

    def __init__(self, task: Task, messages: list, index: int, end: int) -> None:
        self.task = task
        self.messages = messages
        self.index = index
        self.end = end


class _FaultEvent:
    """Heap payload of one fault-plane action targeting a machine id.

    ``action`` is ``"crash"`` (carries the originating
    :class:`~repro.engine.faults.FaultSpec`), ``"restart"`` or ``"retry"``
    for the crash plane, or ``"frame"`` / ``"retransmit"`` (carrying a
    :class:`_WireFrame`) for the unreliable-wire plane.
    """

    __slots__ = ("action", "fault")

    def __init__(self, action: str, fault=None) -> None:
        self.action = action
        self.fault = fault


class _WireFrame:
    """One link-layer frame: a message instance in flight on the unreliable wire.

    The reliable-delivery sublayer never mutates the wrapped message (data
    envelopes are shared across fan-out destinations), so the per-link
    sequence number, original send rank and retransmit state live on this
    wrapper instead.  ``rank`` is the send-band rank the message was assigned
    at its original send — the receiver releases with it, so crashed-machine
    diversion and pending-heap ordering behave exactly as a direct delivery
    would have.
    """

    __slots__ = ("link", "seq", "task", "message", "category", "rank", "units", "attempts")

    def __init__(self, link, seq, task, message, category, rank, units) -> None:
        self.link = link
        self.seq = seq
        self.task = task
        self.message = message
        self.category = category
        self.rank = rank
        self.units = units
        self.attempts = 0


class Simulator:
    """Discrete-event simulation of a shared-nothing cluster.

    Args:
        num_machines: number of machines in the cluster.
        cost_model: the CPU/network/storage cost model shared by all machines.
        seed: seed of the simulation's random sources.  Every machine gets
            its own stream, derived deterministically from
            ``(seed, machine_id)`` — see :meth:`machine_rng` — so a parallel
            backend can run handlers of different machines concurrently
            without sharing RNG state (and without changing a single draw:
            the simulated oracle uses the same derivation).
        collect_outputs: if True, the metrics collector retains every output
            pair (needed for correctness tests; disabled for large benchmark
            runs to bound memory).
    """

    def __init__(
        self,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        if num_machines + 2 >= _MACHINE_SPAN:
            raise ValueError(
                f"at most {_MACHINE_SPAN - 3} machines are supported: the "
                "plane-invariant event rank packs machine ids into "
                f"{_MACHINE_SPAN}-wide bands"
            )
        self.machines = [Machine(machine_id=i, cost_model=self.cost_model) for i in range(num_machines)]
        self.network = Network(cost_model=self.cost_model)
        self.metrics = MetricsCollector(collect_outputs=collect_outputs)
        self.seed = seed
        # Per-machine RNG streams (index [machine_id + 1]; slot 0 is the
        # shared off-cluster stream).  String seeding hashes through SHA-512,
        # so the streams are deterministic across processes and independent
        # of each other — each machine's draws depend only on (seed,
        # machine_id) and its own handler sequence, never on what other
        # machines drew in between.
        self._machine_rngs = [random.Random(f"{seed}/off-cluster")] + [
            random.Random(f"{seed}/{i}") for i in range(num_machines)
        ]
        self.tasks: dict[str, Task] = {}
        self._queue: list[tuple] = []
        self._schedule_rank = itertools.count()
        # Per-link FIFO sequence counters, owned by the *sender* machine
        # (index [sender_machine + 1], keyed by destination machine id): a
        # machine's sends touch only its own counter dict, so handlers of
        # different machines can post concurrently without sharing counter
        # state.  The rank formula itself is unchanged.
        self._link_rank: list[dict[int, int]] = [
            {} for _ in range(num_machines + 1)
        ]
        self._started: set[str] = set()
        self._inboxes: list[deque] = [deque() for _ in range(num_machines)]
        self._tick_scheduled: list[bool] = [False] * num_machines
        self._drain_controllers: list | None = None
        # In-flight control-plane (priority) delivery times per machine;
        # drained runs on the adaptive plane use them to stop before the
        # point where a control message would take effect (drain horizon).
        self._pending_priority: list[list[float]] = [[] for _ in range(num_machines)]
        # Wire-level delivery merging (see enable_delivery_merging): the open
        # channel runs, indexed [sender machine + 1] → {destination task:
        # DeliveryRun}, and the per-machine heaps of delivered-but-unsettled
        # run cursors / singles.
        self._merge_wire = False
        self._open_channels: list[dict[Task, DeliveryRun]] = [
            {} for _ in range(num_machines + 1)
        ]
        self._pending_wire: list[list] = [[] for _ in range(num_machines)]
        # Fault plane (install_faults): the recovery manager, the machines
        # currently down, their buffered-during-outage deliveries, and the
        # link-layer retry state.  All empty/None on fault-free runs.
        self._recovery = None
        self._crashed: set[int] = set()
        self._crashed_count = 0
        self._outage: dict[int, list] = {}
        self._retry_attempts: dict[int, int] = {}
        self._after_event_faults: list = []
        self._fault_serial = itertools.count()
        # Unreliable-wire plane (install_network_faults): the ReliableWire
        # policy object, or None.  Every wire hook below is strictly gated on
        # it, so fault-free runs take the exact pre-existing code paths —
        # zero extra heap events, allocations or counter touches.
        self._wire = None
        self.now = 0.0
        self.events_processed = 0
        self.heap_events = 0
        # Cumulative real seconds spent inside run() — the only wall-clock
        # quantity the virtual-time backend reports (executor backends add
        # per-worker breakdowns on top).  Pure stats: never read by handlers.
        self.wall_time = 0.0

    def install_batching(self, controllers: list) -> None:
        """Enable the adaptive data plane: one drain controller per machine.

        Each controller sizes the runs of drainable inbox messages (see
        :meth:`repro.engine.task.Task.drain_key`) its machine may coalesce
        per tick.  Without this call every message is handled individually —
        the fixed/per-tuple planes.
        """
        if len(controllers) != len(self.machines):
            raise ValueError(
                f"need one batch controller per machine: got {len(controllers)} "
                f"for {len(self.machines)} machines"
            )
        self._drain_controllers = list(controllers)

    def enable_delivery_merging(self) -> None:
        """Enable wire-level delivery merging.

        Inbox-bound messages (:data:`MERGEABLE_KINDS`) merge per FIFO channel
        — (sender machine, destination task) — into :class:`DeliveryRun` heap
        events: a channel's run is armed in the heap at its first member and
        absorbs every later send on the channel until the receiver exhausts
        it, instead of one heap event per message.  A run's members are
        *settled* into the receiving machine's inbox strictly in per-tuple
        ``(delivery time, rank)`` order — the per-machine pending heap
        interleaves runs, competing links and individual messages exactly as
        the unmerged heap would — so every observable quantity stays
        bit-identical to the unmerged wire while the global event heap
        processes a fraction of the events.
        """
        self._merge_wire = True

    def install_faults(self, recovery) -> None:
        """Attach the fault-tolerant plane: a recovery manager plus the
        crash schedule it carries (see :mod:`repro.core.recovery`).

        Time-anchored crashes become heap events in the fault rank band;
        event-anchored crashes are watched against ``events_processed`` in
        the run loop.  Installing a manager with an empty schedule is valid —
        it enables journaling/checkpointing without injecting any fault.
        """
        self._recovery = recovery
        after = []
        for fault in recovery.schedule:
            if fault.at_time is not None:
                self._schedule_fault(fault.at_time, "crash", fault.machine, fault)
            else:
                after.append((fault.after_events, fault))
        after.sort(key=lambda pair: pair[0])
        self._after_event_faults = after

    def install_network_faults(self, wire) -> None:
        """Attach the unreliable-wire plane: a :class:`~repro.engine.network.ReliableWire`.

        Every on-cluster task send is then framed with a per-link sequence
        number and routed through the wire's fault schedule (drop, duplicate,
        delay, partition) before the receiver's dedup/in-order sublayer
        releases it to the normal delivery path.  Frame arrivals and
        retransmit timers are heap events in the fault rank band, so the
        faulty run stays fully deterministic under its seed.
        """
        self._wire = wire

    # ------------------------------------------------------------------ setup

    def register(self, task: Task) -> Task:
        """Add ``task`` to the topology.  Task names must be unique."""
        if task.name in self.tasks:
            raise ValueError(f"duplicate task name: {task.name}")
        if task.machine_id >= len(self.machines):
            raise ValueError(
                f"task {task.name} placed on machine {task.machine_id} "
                f"but the cluster has only {len(self.machines)} machines"
            )
        task.hosted_machine = (
            self.machines[task.machine_id] if task.machine_id >= 0 else None
        )
        self.tasks[task.name] = task
        return task

    def register_all(self, tasks: Iterable[Task]) -> None:
        """Register every task in ``tasks``."""
        for task in tasks:
            self.register(task)

    def machine_of(self, task_name: str) -> Machine | None:
        """The machine hosting ``task_name`` (None for off-cluster tasks)."""
        return self.tasks[task_name].hosted_machine

    def machine_rng(self, machine_id: int) -> random.Random:
        """The RNG stream owned by ``machine_id``.

        Derived deterministically from ``(seed, machine_id)``; off-cluster
        tasks (``machine_id < 0``) share one dedicated stream.  Handlers
        reach it through :attr:`repro.engine.task.Context.rng`, so a task's
        draws are a pure function of its own machine's handler sequence —
        the property that lets a parallel backend overlap handlers of
        different machines without perturbing anyone's stream.
        """
        return self._machine_rngs[machine_id + 1 if machine_id >= 0 else 0]

    # ------------------------------------------------------------- scheduling

    def schedule(self, time: float, destination: str, message: Message) -> None:
        """Schedule ``message`` for delivery to ``destination`` at ``time``."""
        task = self.tasks.get(destination)
        if task is None:
            raise KeyError(f"unknown task: {destination}")
        if message.kind in PRIORITY_KINDS and task.machine_id >= 0:
            self._pending_priority[task.machine_id].append(time)
        heapq.heappush(self._queue, (time, next(self._schedule_rank), task, message))

    def _send_rank(self, sender_machine: int, dest_machine: int) -> int:
        """Plane-invariant rank of one task send (see the module comment)."""
        links = self._link_rank[sender_machine + 1]
        sequence = links.get(dest_machine, 0)
        links[dest_machine] = sequence + 1
        return (
            _SEND_RANK_BASE
            + ((sender_machine + 2) * _MACHINE_SPAN + dest_machine + 2) * _LINK_SPAN
            + sequence
        )

    def _schedule_tick(self, machine_id: int, time: float) -> None:
        heapq.heappush(self._queue, (time, _TICK_RANK_BASE + machine_id, machine_id, None))

    def feed_schedule(
        self, schedule: ArrivalSchedule, destination_picker, batch_size: int = 1
    ) -> None:
        """Feed an arrival schedule into the topology.

        Args:
            schedule: the interleaved input streams.
            destination_picker: callable ``tuple -> task name`` choosing the
                reshuffler each tuple is sent to (the paper routes incoming
                tuples to a random reshuffler).
            batch_size: with ``batch_size=1`` (the legacy data plane) every
                tuple becomes one SOURCE message; larger values coalesce up to
                ``batch_size`` consecutive same-destination arrivals into one
                BATCH message.  The picker is still called once per tuple in
                arrival order, so routing decisions are identical either way.
        """
        if batch_size > 1:
            for emit_time, destination, batch in schedule.batched_arrivals(
                batch_size, destination_picker
            ):
                message = Message(
                    kind=MessageKind.BATCH,
                    sender="__source__",
                    payload=batch,
                    size=batch.size,
                    meta={"inner": MessageKind.SOURCE},
                )
                self.schedule_data(emit_time, destination, message)
            return
        tasks = self.tasks
        queue = self._queue
        schedule_rank = self._schedule_rank
        source_kind = MessageKind.SOURCE
        if self._merge_wire:
            # Merged feed: one DeliveryRun per reshuffler covers the whole
            # schedule (members keep their exact arrival times/ranks).  The
            # feed channels cannot have open runs mid-schedule interference
            # (nothing settles before run()), so the runs are built with
            # plain list appends and armed once per destination.
            feed_channels = self._open_channels[0]
            channel_get = feed_channels.get
            heappush = heapq.heappush
            queue = self._queue
            for arrival_time, item in schedule.arrivals():
                item.arrival_time = arrival_time
                task = tasks[destination_picker(item)]
                rank = next(schedule_rank)
                envelope = DataEnvelope(source_kind, "__source__", item, 0, item.size)
                run = channel_get(task)
                if run is None or run.closed:
                    run = feed_channels[task] = DeliveryRun(
                        task, [arrival_time], [rank], [envelope]
                    )
                    heappush(queue, (arrival_time, rank, run, _DELIVERY_RUN))
                else:
                    run.times.append(arrival_time)
                    run.ranks.append(rank)
                    run.messages.append(envelope)
            return
        for arrival_time, item in schedule.arrivals():
            item.arrival_time = arrival_time
            message = DataEnvelope(source_kind, "__source__", item, 0, item.size)
            heapq.heappush(
                queue,
                (arrival_time, next(schedule_rank), tasks[destination_picker(item)], message),
            )

    def schedule_data(self, time: float, destination: str, message) -> None:
        """Schedule a data-plane message, merging consecutive same-destination
        sends into the feed channel's :class:`DeliveryRun` when delivery
        merging is enabled (streaming ingestion, batched feeds).

        Non-mergeable kinds and off-cluster destinations fall back to
        :meth:`schedule`.
        """
        task = self.tasks.get(destination)
        if task is None:
            raise KeyError(f"unknown task: {destination}")
        if (
            not self._merge_wire
            or task.hosted_machine is None
            or message.kind not in MERGEABLE_KINDS
        ):
            self.schedule(time, destination, message)
            return
        self._buffer_send(
            self._open_channels[0], task, time, next(self._schedule_rank), message
        )

    def _buffer_send(
        self, channels: dict, task: Task, time: float, rank: int, message
    ) -> None:
        """Append one send to its channel's open run, arming a fresh run
        (= one heap event, keyed by this first member) when the channel has
        none open."""
        run = channels.get(task)
        if run is None or run.closed:
            run = channels[task] = DeliveryRun(task, [time], [rank], [message])
            heapq.heappush(self._queue, (time, rank, run, _DELIVERY_RUN))
        else:
            run.times.append(time)
            run.ranks.append(rank)
            run.messages.append(message)

    def post(
        self,
        sender_task: Task,
        destination: str,
        message: Message,
        category: TrafficCategory,
        ctx: Context,
    ) -> None:
        """Send a message from a task while it is processing (called via Context)."""
        self._post_at(sender_task, destination, message, category, ctx.now + ctx.charged)

    def _post_at(
        self,
        sender_task: Task,
        destination: str,
        message: Message,
        category: TrafficCategory,
        departure: float,
    ) -> None:
        """The body of :meth:`post` with the departure time made explicit.

        A parallel backend buffers a concurrently-running handler's sends
        (capturing ``ctx.now + ctx.charged`` at call time) and replays them
        here at commit, so the network transfer, rank assignment and heap
        push run through the identical code path — in oracle order — that a
        live send would have taken.
        """
        dest_task = self.tasks[destination]
        sender_machine = sender_task.machine_id
        dest_machine = dest_task.machine_id
        if self._wire is not None and sender_machine >= 0 and dest_machine >= 0:
            # Unreliable wire installed: on-cluster sends become link-layer
            # frames (off-cluster endpoints — sources, collectors — keep the
            # ideal wire: they model ingest/egress, not the cluster fabric).
            units = len(message.payload) if isinstance(message.payload, TupleBatch) else 1
            self._wire_send(sender_machine, dest_task, message, category, departure, units)
            return
        if sender_machine < 0 or dest_machine < 0:
            delivery = departure + self.cost_model.network_latency
        else:
            units = len(message.payload) if isinstance(message.payload, TupleBatch) else 1
            delivery = self.network.transfer(
                sender_machine, dest_machine, message.size, category, departure, units=units
            )
        if message.kind in PRIORITY_KINDS and dest_machine >= 0:
            self._pending_priority[dest_machine].append(delivery)
        rank = self._send_rank(sender_machine, dest_machine)
        # Off-cluster endpoints are excluded from merging (as in post_fanout):
        # their deliveries skip the link-FIFO clamp, so an open channel's key
        # arrays could lose the sortedness _settle's bisects rely on.
        if (
            self._merge_wire
            and sender_machine >= 0
            and dest_machine >= 0
            and message.kind in MERGEABLE_KINDS
        ):
            self._buffer_send(
                self._open_channels[sender_machine + 1],
                dest_task,
                delivery,
                rank,
                message,
            )
            return
        heapq.heappush(self._queue, (delivery, rank, dest_task, message))

    def post_fanout(
        self,
        sender_task: Task,
        destinations,
        message: Message,
        category: TrafficCategory,
        ctx: Context,
    ) -> None:
        """Replicate one data message to several destinations (routing fan-out).

        Equivalent to calling :meth:`post` once per destination — the shared
        departure time, sender machine and per-link transfers are identical —
        with the per-send bookkeeping hoisted out of the loop.  Data plane
        only: single-tuple payloads, non-priority kinds.
        """
        self._post_fanout_at(
            sender_task, destinations, message, category, ctx.now + ctx.charged
        )

    def _post_fanout_at(
        self,
        sender_task: Task,
        destinations,
        message: Message,
        category: TrafficCategory,
        departure: float,
    ) -> None:
        """:meth:`post_fanout` with the departure explicit (commit replay)."""
        tasks = self.tasks
        transfer = self.network.transfer
        queue = self._queue
        sender_machine = sender_task.machine_id
        link_rank = self._link_rank[sender_machine + 1]
        size = message.size
        latency = self.cost_model.network_latency
        sender_base = _SEND_RANK_BASE + (sender_machine + 2) * _MACHINE_SPAN * _LINK_SPAN
        heappush = heapq.heappush
        if self._wire is not None:
            # Unreliable wire installed: each on-cluster replica becomes its
            # own link-layer frame (fan-out is data plane, single-tuple,
            # non-priority); off-cluster replicas keep the ideal wire.
            for destination in destinations:
                dest_task = tasks[destination]
                dest_machine = dest_task.machine_id
                if sender_machine < 0 or dest_machine < 0:
                    heappush(queue, (
                        departure + latency,
                        self._send_rank(sender_machine, dest_machine),
                        dest_task,
                        message,
                    ))
                else:
                    self._wire_send(
                        sender_machine, dest_task, message, category, departure, 1
                    )
            return
        if self._merge_wire:
            # One shared envelope, one open-channel append per destination;
            # the per-link delivery times and ranks are computed exactly as
            # below.  The channel-append bookkeeping is inlined (this is the
            # hottest send path of the merged wire).
            channels = self._open_channels[sender_machine + 1]
            channel_get = channels.get
            for destination in destinations:
                dest_task = tasks[destination]
                dest_machine = dest_task.machine_id
                if sender_machine < 0 or dest_machine < 0:
                    heappush(queue, (
                        departure + latency,
                        self._send_rank(sender_machine, dest_machine),
                        dest_task,
                        message,
                    ))
                    continue
                delivery = transfer(sender_machine, dest_machine, size, category, departure)
                sequence = link_rank.get(dest_machine, 0)
                link_rank[dest_machine] = sequence + 1
                rank = sender_base + (dest_machine + 2) * _LINK_SPAN + sequence
                run = channel_get(dest_task)
                if run is None or run.closed:
                    run = channels[dest_task] = DeliveryRun(
                        dest_task, [delivery], [rank], [message]
                    )
                    heappush(queue, (delivery, rank, run, _DELIVERY_RUN))
                else:
                    run.times.append(delivery)
                    run.ranks.append(rank)
                    run.messages.append(message)
            return
        for destination in destinations:
            dest_task = tasks[destination]
            dest_machine = dest_task.machine_id
            if sender_machine < 0 or dest_machine < 0:
                delivery = departure + latency
            else:
                delivery = transfer(sender_machine, dest_machine, size, category, departure)
            sequence = link_rank.get(dest_machine, 0)
            link_rank[dest_machine] = sequence + 1
            rank = sender_base + (dest_machine + 2) * _LINK_SPAN + sequence
            heappush(queue, (delivery, rank, dest_task, message))

    # ---------------------------------------------------------------- running

    def _execute(self, task: Task, message: Message, start: float) -> None:
        """Run one handler at logical time ``start`` and account its work."""
        ctx = Context(self, task, start)
        if task.name not in self._started:
            self._started.add(task.name)
            task.on_start(ctx)
        task.handle(message, ctx)
        machine = task.hosted_machine
        if machine is not None and ctx.charged > 0:
            machine.occupy(start, ctx.charged)
            machine.clear_drain_window()
        self.events_processed += 1

    def _drain_horizon(self, machine_id: int, event_time: float) -> float:
        """Earliest virtual time a control-plane message could land on ``machine_id``.

        In-flight priority deliveries are known exactly; any priority message
        not yet sent must be created by an event popping no earlier than the
        current tick, so its delivery is at least one network latency away.
        A drained run that stops before this horizon can never swallow a
        member the per-tuple plane would have processed *after* a control
        message took effect.
        """
        horizon = event_time + self.cost_model.network_latency
        pending = self._pending_priority[machine_id]
        if pending:
            earliest = min(pending)
            if earliest < horizon:
                horizon = earliest
        return horizon

    def _execute_drained(
        self,
        task: Task,
        first: Message,
        inbox: deque,
        limit: int,
        key,
        start: float,
        event_time: float,
        machine_id: int,
    ) -> None:
        """Run one drained run of same-key messages in a single invocation.

        The task pulls same-key followers straight off its inbox (up to
        ``limit``) and closes every member with :meth:`Context.boundary`, so
        the machine's busy chain, every member's send departure and every
        output timestamp are bit-identical to per-tuple delivery; the
        recorded boundaries let later control-plane messages dated inside
        this window start exactly where the per-tuple plane would have
        slotted them.  Tasks that must re-check the control-plane horizon
        between members (adaptive reshufflers) simply stop pulling.
        """
        ctx = Context(self, task, start)
        ctx.drain_boundaries = []
        ctx.drain_horizon = lambda: self._drain_horizon(machine_id, event_time)
        if task.name not in self._started:
            self._started.add(task.name)
            task.on_start(ctx)
        count = task.handle_drained(first, inbox, limit, key, ctx)
        machine = task.hosted_machine
        if ctx.charged > 0:  # defensive: close a run whose tail was not rotated
            machine.occupy(ctx.now, ctx.charged)
            ctx.drain_boundaries.append(machine.busy_until)
        machine.record_drain_window(start, ctx.drain_boundaries)
        self.metrics.record_drained_run(count)
        self.events_processed += 1

    # ------------------------------------------------------------ fault plane

    def _schedule_fault(
        self, time: float, action: str, machine_id: int, fault=None
    ) -> None:
        rank = _FAULT_RANK_BASE + (
            (_FAULT_ACTION_OFFSETS[action] * _MACHINE_SPAN + machine_id) * (1 << 30)
            + next(self._fault_serial)
        )
        heapq.heappush(
            self._queue, (time, rank, machine_id, _FaultEvent(action, fault))
        )

    def _process_fault(self, machine_id: int, event: _FaultEvent, time: float) -> None:
        action = event.action
        if action == "crash":
            self._crash_machine(machine_id, event.fault, time)
        elif action == "restart":
            self._restart_machine(machine_id, time)
        elif action == "frame":
            self._wire_arrive(event.fault, time)
        elif action == "retransmit":
            self._wire_retransmit(event.fault, time)
        else:
            self._retry_machine(machine_id, time)

    def _crash_machine(self, machine_id: int, fault, time: float) -> None:
        """Fail-stop ``machine_id``: drop its volatile state, start the outage.

        The inbox (including members inside settled segments) moves to the
        outage buffer for redelivery at restart; pending wire entries and open
        channels stay put — the restart tick settles them — and work already
        accepted (``busy_until``) counts as completed, per the
        handler-boundary crash model.
        """
        if machine_id in self._crashed:
            raise RuntimeError(
                f"machine {machine_id} crashed while already down "
                "(overlapping faults in the schedule)"
            )
        self._crashed.add(machine_id)
        self._crashed_count += 1
        buffer = self._outage.setdefault(machine_id, [])
        inbox = self._inboxes[machine_id]
        for entry in inbox:
            if entry.__class__ is tuple:
                buffer.append(("d", entry[0], entry[1]))
            else:
                for index in range(entry.index, entry.end):
                    buffer.append(("d", entry.task, entry.messages[index]))
        inbox.clear()
        # Suppress tick scheduling for the duration of the outage; the
        # restart pushes its own tick.
        self._tick_scheduled[machine_id] = True
        recovery = self._recovery
        recovery.on_crash(machine_id, time)
        delay = fault.restart_after
        if delay is None:
            # Coordinator detects the failure at the ack timeout and brings
            # up the blank replacement immediately.
            delay = recovery.ack_timeout
        self._schedule_fault(time + delay, "restart", machine_id)
        self._retry_attempts[machine_id] = 0
        self._schedule_fault(time + recovery.ack_timeout, "retry", machine_id)

    def _restart_machine(self, machine_id: int, time: float) -> None:
        """Blank replacement up: restore from the checkpoint store, replay the
        journal, redeliver the outage buffer, resume normal ticking."""
        self._crashed.discard(machine_id)
        self._crashed_count -= 1
        machine = self.machines[machine_id]
        restore_cost, _replayed = self._recovery.on_restart(machine_id, time)
        if restore_cost > 0:
            machine.occupy(time, restore_cost)
        buffer = self._outage.get(machine_id)
        if buffer:
            inbox = self._inboxes[machine_id]
            for kind, task, message in buffer:
                if kind == "p":
                    # Buffered control-plane messages execute first (they
                    # never queue behind data), serialized after the restore
                    # work via the machine's busy chain.
                    self._execute(task, message, max(time, machine.busy_until))
                else:
                    inbox.append((task, message))
            buffer.clear()
        # _tick_scheduled stayed True through the outage; this tick settles
        # any wire traffic dated <= now and restarts the normal cycle.
        self._schedule_tick(machine_id, time)

    def _retry_machine(self, machine_id: int, time: float) -> None:
        """Link-layer retry timer for traffic addressed to a dead machine."""
        if machine_id not in self._crashed:
            return  # machine came back; the timer dissolves
        attempts = self._retry_attempts.get(machine_id, 0) + 1
        self._retry_attempts[machine_id] = attempts
        recovery = self._recovery
        waiting = bool(self._outage.get(machine_id)) or bool(
            self._pending_wire[machine_id]
        )
        if attempts > recovery.max_retries and waiting:
            raise RuntimeError(
                f"machine {machine_id} unreachable after "
                f"{recovery.max_retries} retries"
            )
        self._schedule_fault(
            time + recovery.ack_timeout * (2 ** attempts), "retry", machine_id
        )

    def _divert_crashed(
        self, task: Task, message: Message, time: float, rank: int, machine_id: int
    ) -> None:
        """Buffer a delivery addressed to a crashed machine.

        Priority kinds wait in the outage buffer (redelivered first at
        restart); in-band kinds keep their exact ``(time, rank)`` position —
        on the merged wire by joining the pending heap next to any parked
        runs, on the unmerged wire by outage-buffer order, which *is* global
        ``(time, rank)`` pop order.
        """
        if message.kind in PRIORITY_KINDS:
            self._pending_priority[machine_id].remove(time)
            self._outage[machine_id].append(("p", task, message))
        elif self._merge_wire:
            heapq.heappush(
                self._pending_wire[machine_id], (time, rank, None, task, message)
            )
        else:
            self._outage[machine_id].append(("d", task, message))

    # -------------------------------------------------------- unreliable wire

    def _wire_send(
        self,
        sender_machine: int,
        dest_task: Task,
        message: Message,
        category: TrafficCategory,
        departure: float,
        units: int,
    ) -> None:
        """Frame one on-cluster send and push it through the fault schedule.

        The frame gets the link's next monotone sequence number and the
        message's normal send-band rank (so its eventual release orders like
        a direct delivery).  A dropped or partitioned frame never charges the
        network — its bytes were lost before crossing — and instead arms the
        sender's retransmit timer.  A duplicated frame is charged and
        scheduled twice with the *same* frame object: the receiver dedups on
        the shared sequence number.
        """
        wire = self._wire
        dest_machine = dest_task.machine_id
        link = (sender_machine, dest_machine)
        seq, dropped, duplicated, delay_by = wire.on_send(link)
        rank = self._send_rank(sender_machine, dest_machine)
        frame = _WireFrame(link, seq, dest_task, message, category, rank, units)
        wire.frames_sent += 1
        if dropped or wire.partitioned(sender_machine, dest_machine, departure):
            wire.frames_dropped += 1
            self._wire_arm_retransmit(frame, departure)
            return
        arrival = self.network.transfer(
            sender_machine, dest_machine, message.size, category, departure, units=units
        )
        # The per-send delay is added *after* the link's FIFO clamp, so later
        # sends can genuinely overtake the delayed frame on the wire; the
        # receiver's in-order sublayer restores release order.
        self._schedule_fault(arrival + delay_by, "frame", dest_machine, frame)
        if duplicated:
            wire.frames_sent += 1
            wire.frames_duplicated += 1
            dup_arrival = self.network.transfer(
                sender_machine, dest_machine, message.size, category, departure, units=units
            )
            # Same frame object = same sequence number: the copy that loses
            # the race (the fault serial orders the original first at equal
            # times) is discarded by the receiver's dedup.
            self._schedule_fault(dup_arrival + delay_by, "frame", dest_machine, frame)

    def _wire_arm_retransmit(self, frame: _WireFrame, now: float) -> None:
        """Arm the sender's retransmit timer for a lost frame.

        Exponential backoff from ``retry_base``; once ``retry_max_attempts``
        transmissions have been lost the link is declared dead with a named
        error — the faulty run terminates either way, never hangs.  Timers
        are armed only for frames known lost (a deterministic-simulation
        shortcut: behaviourally equivalent to per-frame ack timeouts without
        modelling the ack traffic).
        """
        wire = self._wire
        if frame.attempts >= wire.retry_max_attempts:
            raise UnreachableLinkError(frame.link, frame.attempts)
        frame.attempts += 1
        backoff = wire.retry_base * (2 ** (frame.attempts - 1))
        self._schedule_fault(now + backoff, "retransmit", frame.link[1], frame)

    def _wire_retransmit(self, frame: _WireFrame, time: float) -> None:
        """A retransmit timer fired: resend the frame unless it got through."""
        wire = self._wire
        link = frame.link
        if frame.seq < wire.recv_next.get(link, 0) or frame.seq in wire.reorder.get(
            link, ()
        ):
            return  # a copy already reached the receiver; the timer dissolves
        wire.frames_sent += 1
        wire.frames_retransmitted += 1
        wire.retransmit_histogram[frame.attempts] = (
            wire.retransmit_histogram.get(frame.attempts, 0) + 1
        )
        if wire.partitioned(link[0], link[1], time):
            # Still dark: this attempt is lost too.  Re-arming chains the
            # backoff until the window heals or the budget raises.
            wire.frames_dropped += 1
            self._wire_arm_retransmit(frame, time)
            return
        arrival = self.network.transfer(
            link[0], link[1], frame.message.size, frame.category, time, units=frame.units
        )
        self._schedule_fault(arrival, "frame", link[1], frame)

    def _wire_arrive(self, frame: _WireFrame, time: float) -> None:
        """A frame reached its receiver: dedup, reorder-buffer or release.

        Release is strictly in sequence order per link — equal to send order,
        so the fault-free wire's per-link FIFO (which the epoch protocol
        relies on) is preserved under any fault mix.  Dedup state is *not*
        reset when the receiving machine crashes: the sequencer is durable
        (MillWheel-style), so a retransmitted-then-crashed message is either
        discarded here or redelivered exactly once from the outage buffer.
        """
        wire = self._wire
        link = frame.link
        wire.frames_delivered += 1
        expected = wire.recv_next.get(link, 0)
        if frame.seq < expected:
            wire.frames_deduped += 1
            return
        if frame.seq > expected:
            buffer = wire.reorder.setdefault(link, {})
            if frame.seq in buffer:
                wire.frames_deduped += 1
            else:
                wire.frames_reordered += 1
                buffer[frame.seq] = frame
            return
        next_seq = expected + 1
        wire.recv_next[link] = next_seq
        self._wire_release(frame, time)
        buffer = wire.reorder.get(link)
        if buffer:
            # Cascade: the gap just closed may free buffered successors.
            while next_seq in buffer:
                follower = buffer.pop(next_seq)
                next_seq += 1
                wire.recv_next[link] = next_seq
                self._wire_release(follower, time)

    def _wire_release(self, frame: _WireFrame, time: float) -> None:
        """Hand a frame to the normal delivery path, in sequence order.

        Priority-kind bookkeeping is done here (not at send) because only
        now is the effective delivery instant known; ``_deliver`` and
        ``_divert_crashed`` remove the same ``time`` they always have.
        """
        wire = self._wire
        wire.frames_applied += 1
        message = frame.message
        if message.kind in PRIORITY_KINDS:
            self._pending_priority[frame.link[1]].append(time)
        self._deliver(frame.task, message, time, frame.rank)

    def _deliver(self, task: Task, message: Message, time: float, rank: int = 0) -> None:
        machine = task.hosted_machine
        if machine is None:
            # Off-cluster tasks are handled at delivery time.
            self._execute(task, message, time)
            return
        if self._crashed_count and machine.machine_id in self._crashed:
            self._divert_crashed(task, message, time, rank, machine.machine_id)
            return
        if message.kind in PRIORITY_KINDS:
            # Control-plane messages skip the data backlog but still need the
            # CPU: they start once the machine finishes the handler it is
            # currently running — on the adaptive plane, the per-tuple-
            # equivalent boundary of the last drained run.
            self._pending_priority[machine.machine_id].remove(time)
            self._execute(task, message, machine.priority_start(time))
            return
        machine_id = machine.machine_id
        if self._merge_wire:
            pending = self._pending_wire[machine_id]
            if pending:
                # Unsettled run members exist for this machine; enqueue the
                # single behind/between them by its own (time, rank) key so
                # the settle pass reproduces the per-tuple inbox order.
                heapq.heappush(pending, (time, rank, None, task, message))
                if not self._tick_scheduled[machine_id]:
                    self._tick_scheduled[machine_id] = True
                    self._schedule_tick(machine_id, max(time, machine.busy_until))
                return
        inbox = self._inboxes[machine_id]
        inbox.append((task, message))
        if not self._tick_scheduled[machine_id]:
            self._tick_scheduled[machine_id] = True
            self._schedule_tick(machine_id, max(time, machine.busy_until))

    def _deliver_run(self, run: DeliveryRun, time: float) -> None:
        """A :class:`DeliveryRun` popped: park it on the receiver's pending heap.

        Members do not enter the inbox yet — they *settle* in exact
        ``(time, rank)`` order when the machine next ticks — so the run pop is
        O(1) regardless of length.  Tick scheduling mirrors what the first
        member's individual delivery would have done.
        """
        machine = run.task.hosted_machine
        machine_id = machine.machine_id
        heapq.heappush(
            self._pending_wire[machine_id], (time, run.ranks[run.start], run)
        )
        if not self._tick_scheduled[machine_id]:
            self._tick_scheduled[machine_id] = True
            self._schedule_tick(machine_id, max(time, machine.busy_until))

    def _settle(self, machine_id: int, time: float) -> None:
        """Move pending wire deliveries dated ``<= time`` into the inbox.

        Called at the start of a tick popped at ``time``: on the per-tuple
        wire, exactly the deliveries with ``(delivery, rank) < (time,
        tick rank)`` would have been appended before this tick — and message
        ranks are always below the tick band, so the bound reduces to the
        delivery time.  Members are drained in global ``(time, rank)`` order
        across runs, competing links and singles (the pending heap is the
        per-machine merge front), reproducing the unmerged inbox exactly.
        """
        pending = self._pending_wire[machine_id]
        inbox = self._inboxes[machine_id]
        heappop = heapq.heappop
        heappush = heapq.heappush
        wire_histogram = self.metrics.wire_histogram
        while pending and pending[0][0] <= time:
            entry = heappop(pending)
            run = entry[2]
            if run is None:
                inbox.append((entry[3], entry[4]))
                continue
            times = run.times
            task = run.task
            index = run.start
            count = len(times)
            # Settle-bound cut: members dated <= the tick time.  Within a run
            # both times and ranks are strictly increasing, so the segment
            # boundaries are binary searches instead of per-member compares.
            end = bisect_right(times, time, index, count)
            if pending:
                # A competing pending delivery may cut the segment short: only
                # members strictly below the head's (time, rank) key settle now.
                head = pending[0]
                head_time = head[0]
                if head_time <= time:
                    below = bisect_left(times, head_time, index, end)
                    ties_end = bisect_right(times, head_time, below, end)
                    end = (
                        bisect_left(run.ranks, head[1], below, ties_end)
                        if ties_end > below
                        else below
                    )
            # The popped entry was the pending minimum and is inside the
            # bound, so at least one member always settles (progress).
            if end - index == 1:
                inbox.append((task, run.messages[index]))
            else:
                inbox.append(SettledSegment(task, run.messages, index, end))
            if end < count:
                run.start = end
                heappush(pending, (times[end], run.ranks[end], run))
            else:
                # Exhausted: close the channel's run (the next send on the
                # channel arms a fresh one) and record its final length.
                run.start = end
                run.closed = True
                wire_histogram[count] = wire_histogram.get(count, 0) + 1

    def _rearm_wire(self, machine_id: int) -> None:
        """Return the earliest pending wire delivery to the global heap.

        Reached when a tick leaves the inbox empty while future-dated members
        remain pending: their runs already left the heap, so nothing else
        would wake the machine.  The re-armed entry pops at its own key and
        re-enters the normal delivery path (scheduling the wake-up tick at
        ``max(time, busy_until)`` exactly as its individual delivery would).
        """
        entry = heapq.heappop(self._pending_wire[machine_id])
        run = entry[2]
        if run is None:
            heapq.heappush(self._queue, (entry[0], entry[1], entry[3], entry[4]))
        else:
            heapq.heappush(self._queue, (entry[0], entry[1], run, _DELIVERY_RUN))

    def _tick(self, machine_id: int, time: float) -> None:
        if self._crashed_count and machine_id in self._crashed:
            # Stale tick popping during an outage: swallow it and leave
            # _tick_scheduled True — the restart pushes the reviving tick.
            return
        merging = self._merge_wire
        if merging and self._pending_wire[machine_id]:
            self._settle(machine_id, time)
        inbox = self._inboxes[machine_id]
        if not inbox:
            if merging and self._pending_wire[machine_id]:
                self._rearm_wire(machine_id)
            self._tick_scheduled[machine_id] = False
            return
        machine = self.machines[machine_id]
        start = max(time, machine.busy_until)
        if self._drain_controllers is not None:
            entry = inbox.popleft()
            if entry.__class__ is tuple:
                task, message = entry
            else:
                task = entry.task
                message = entry.messages[entry.index]
                entry.index += 1
                if entry.index < entry.end:
                    inbox.appendleft(entry)
            key = task.drain_key(message)
            if key is None:
                self._execute(task, message, start)
            else:
                # Backlog estimate for the drain controller: the exact member
                # count of the inbox, counting every member still inside a
                # settled segment — identical to the unmerged plane's
                # per-member inbox length.
                backlog = 1 + len(inbox)
                if merging:
                    for pending_entry in inbox:
                        if pending_entry.__class__ is not tuple:
                            backlog += pending_entry.end - pending_entry.index - 1
                limit = self._drain_controllers[machine_id].next_batch_size(backlog)
                if limit > 1 and inbox:
                    self._execute_drained(
                        task, message, inbox, limit, key, start, time, machine_id
                    )
                else:
                    self.metrics.record_drained_run(1)
                    self._execute(task, message, start)
        else:
            entry = inbox.popleft()
            if entry.__class__ is tuple:
                task, message = entry
            else:
                task = entry.task
                message = entry.messages[entry.index]
                entry.index += 1
                if entry.index < entry.end:
                    inbox.appendleft(entry)
            self._execute(task, message, start)
        if inbox:
            self._schedule_tick(machine_id, max(machine.busy_until, start))
        else:
            if merging and self._pending_wire[machine_id]:
                self._rearm_wire(machine_id)
            self._tick_scheduled[machine_id] = False

    def run(self, max_events: int | None = None) -> float:
        """Run until the event queue drains.  Returns the completion time.

        Completion time is the larger of the last event's time and the
        busiest machine's final ``busy_until``.
        """
        queue = self._queue
        heap_events = self.heap_events
        after_faults = self._after_event_faults
        wall_start = _time.perf_counter()
        try:
            while queue:
                time, rank, target, message = heapq.heappop(queue)
                heap_events += 1
                if time > self.now:
                    self.now = time
                if message is None:
                    self._tick(target, time)
                elif message is _DELIVERY_RUN:
                    self._deliver_run(target, time)
                elif message.__class__ is _FaultEvent:
                    self._process_fault(target, message, time)
                else:
                    self._deliver(target, message, time, rank)
                if after_faults and self.events_processed >= after_faults[0][0]:
                    while after_faults and self.events_processed >= after_faults[0][0]:
                        fault = after_faults.pop(0)[1]
                        self._crash_machine(fault.machine, fault, self.now)
                if max_events is not None and self.events_processed > max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; possible signalling loop"
                    )
        finally:
            # Written back even when a handler raises, so the counter stays
            # consistent with events_processed on error paths.
            self.heap_events = heap_events
            self.wall_time += _time.perf_counter() - wall_start
        finish = self.now
        for machine in self.machines:
            finish = max(finish, machine.busy_until)
        self.metrics.finish_time = finish
        return finish

    # ---------------------------------------------------------------- results

    def execution_time(self) -> float:
        """Virtual completion time of the run."""
        return self.metrics.finish_time

    def max_machine_storage(self) -> float:
        """Peak stored size over all machines (the measured per-machine ILF)."""
        return max((machine.peak_stored_size for machine in self.machines), default=0.0)

    def total_storage(self) -> float:
        """Total stored size across the cluster at the end of the run."""
        return sum(machine.stored_size for machine in self.machines)

    def any_spilled(self) -> bool:
        """Whether any machine exceeded its memory budget during the run."""
        return any(machine.spilled for machine in self.machines)
