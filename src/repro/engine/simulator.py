"""Deterministic discrete-event simulator.

The simulator owns the cluster (machines + network), the task registry and a
priority queue of pending events.  Two kinds of events exist:

* **deliveries** — a message arrives at a task.  For tasks hosted on a
  machine the message is appended to the machine's FIFO inbox (a machine
  handles one message at a time); off-cluster tasks (sources, collectors)
  handle it immediately.  Small control-plane messages (mapping changes,
  migration acks, resume signals) bypass the data backlog, reflecting the
  dedicated control channel of real deployments; data-plane ordering per link
  is still FIFO, which the epoch protocol relies on.
* **machine ticks** — a machine becomes free and handles the next message in
  its inbox.  The handler's CPU charge extends the machine's busy time and
  any messages it sends are scheduled after the work completes plus network
  latency/transfer time.

This yields the two quantities the paper's evaluation is built on:

* **execution time** — the virtual time at which the last piece of work
  finishes, dominated by the most loaded machine, and
* **tuple latency** — output emission time minus the arrival time of the more
  recent matching input tuple.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.engine.machine import CostModel, Machine
from repro.engine.metrics import MetricsCollector
from repro.engine.network import Network, TrafficCategory
from repro.engine.stream import ArrivalSchedule, StreamTuple, TupleBatch
from repro.engine.task import Context, Message, MessageKind, Task

#: Control-plane message kinds that are not queued behind the data backlog.
PRIORITY_KINDS = frozenset(
    {MessageKind.MAPPING_CHANGE, MessageKind.MIGRATION_ACK, MessageKind.RESUME}
)


@dataclass(order=True, slots=True)
class Event:
    """A pending simulation event, ordered by (time, sequence number)."""

    time: float
    sequence: int
    kind: str = field(compare=False)              # "deliver" or "tick"
    destination: str = field(compare=False, default="")
    message: Message | None = field(compare=False, default=None)
    machine_id: int = field(compare=False, default=-1)


class Simulator:
    """Discrete-event simulation of a shared-nothing cluster.

    Args:
        num_machines: number of machines in the cluster.
        cost_model: the CPU/network/storage cost model shared by all machines.
        seed: seed of the simulation-wide random source.
        collect_outputs: if True, the metrics collector retains every output
            pair (needed for correctness tests; disabled for large benchmark
            runs to bound memory).
    """

    def __init__(
        self,
        num_machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        collect_outputs: bool = False,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.machines = [Machine(machine_id=i, cost_model=self.cost_model) for i in range(num_machines)]
        self.network = Network(cost_model=self.cost_model)
        self.metrics = MetricsCollector(collect_outputs=collect_outputs)
        self.rng = random.Random(seed)
        self.tasks: dict[str, Task] = {}
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._started: set[str] = set()
        self._inboxes: list[deque] = [deque() for _ in range(num_machines)]
        self._tick_scheduled: list[bool] = [False] * num_machines
        self.now = 0.0
        self.events_processed = 0

    # ------------------------------------------------------------------ setup

    def register(self, task: Task) -> Task:
        """Add ``task`` to the topology.  Task names must be unique."""
        if task.name in self.tasks:
            raise ValueError(f"duplicate task name: {task.name}")
        if task.machine_id >= len(self.machines):
            raise ValueError(
                f"task {task.name} placed on machine {task.machine_id} "
                f"but the cluster has only {len(self.machines)} machines"
            )
        task.hosted_machine = (
            self.machines[task.machine_id] if task.machine_id >= 0 else None
        )
        self.tasks[task.name] = task
        return task

    def register_all(self, tasks: Iterable[Task]) -> None:
        """Register every task in ``tasks``."""
        for task in tasks:
            self.register(task)

    def machine_of(self, task_name: str) -> Machine | None:
        """The machine hosting ``task_name`` (None for off-cluster tasks)."""
        return self.tasks[task_name].hosted_machine

    # ------------------------------------------------------------- scheduling

    def schedule(self, time: float, destination: str, message: Message) -> None:
        """Schedule ``message`` for delivery to ``destination`` at ``time``."""
        if destination not in self.tasks:
            raise KeyError(f"unknown task: {destination}")
        heapq.heappush(
            self._queue,
            Event(time, next(self._sequence), "deliver", destination=destination, message=message),
        )

    def _schedule_tick(self, machine_id: int, time: float) -> None:
        heapq.heappush(
            self._queue,
            Event(time, next(self._sequence), "tick", machine_id=machine_id),
        )

    def feed_schedule(
        self, schedule: ArrivalSchedule, destination_picker, batch_size: int = 1
    ) -> None:
        """Feed an arrival schedule into the topology.

        Args:
            schedule: the interleaved input streams.
            destination_picker: callable ``tuple -> task name`` choosing the
                reshuffler each tuple is sent to (the paper routes incoming
                tuples to a random reshuffler).
            batch_size: with ``batch_size=1`` (the legacy data plane) every
                tuple becomes one SOURCE message; larger values coalesce up to
                ``batch_size`` consecutive same-destination arrivals into one
                BATCH message.  The picker is still called once per tuple in
                arrival order, so routing decisions are identical either way.
        """
        if batch_size > 1:
            for emit_time, destination, batch in schedule.batched_arrivals(
                batch_size, destination_picker
            ):
                message = Message(
                    kind=MessageKind.BATCH,
                    sender="__source__",
                    payload=batch,
                    size=batch.size,
                    meta={"inner": MessageKind.SOURCE},
                )
                self.schedule(emit_time, destination, message)
            return
        for arrival_time, item in schedule.arrivals():
            item.arrival_time = arrival_time
            message = Message(
                kind=MessageKind.SOURCE,
                sender="__source__",
                payload=item,
                size=item.size,
            )
            self.schedule(arrival_time, destination_picker(item), message)

    def post(
        self,
        sender_name: str,
        destination: str,
        message: Message,
        category: TrafficCategory,
        ctx: Context,
    ) -> None:
        """Send a message from a task while it is processing (called via Context)."""
        sender_task = self.tasks[sender_name]
        dest_task = self.tasks[destination]
        departure = ctx.now + ctx.charged
        sender_machine = sender_task.machine_id
        dest_machine = dest_task.machine_id
        if sender_machine < 0 or dest_machine < 0:
            delivery = departure + self.cost_model.network_latency
        else:
            units = len(message.payload) if isinstance(message.payload, TupleBatch) else 1
            delivery = self.network.transfer(
                sender_machine, dest_machine, message.size, category, departure, units=units
            )
        self.schedule(delivery, destination, message)

    # ---------------------------------------------------------------- running

    def _execute(self, task: Task, message: Message, start: float) -> None:
        """Run one handler at logical time ``start`` and account its work."""
        ctx = Context(self, task, start)
        if task.name not in self._started:
            self._started.add(task.name)
            task.on_start(ctx)
        task.handle(message, ctx)
        machine = task.hosted_machine
        if machine is not None and ctx.charged > 0:
            machine.occupy(start, ctx.charged)
        self.events_processed += 1

    def _deliver(self, event: Event) -> None:
        task = self.tasks[event.destination]
        machine = task.hosted_machine
        message = event.message
        assert message is not None
        if machine is None or message.kind in PRIORITY_KINDS:
            # Off-cluster tasks are handled at delivery time.  Control-plane
            # messages skip the data backlog but still need the CPU: they start
            # once the machine finishes the handler it is currently running.
            start = event.time if machine is None else max(event.time, machine.busy_until)
            self._execute(task, message, start)
            return
        inbox = self._inboxes[machine.machine_id]
        inbox.append((task, message))
        if not self._tick_scheduled[machine.machine_id]:
            self._tick_scheduled[machine.machine_id] = True
            self._schedule_tick(machine.machine_id, max(event.time, machine.busy_until))

    def _tick(self, event: Event) -> None:
        machine_id = event.machine_id
        inbox = self._inboxes[machine_id]
        if not inbox:
            self._tick_scheduled[machine_id] = False
            return
        task, message = inbox.popleft()
        machine = self.machines[machine_id]
        start = max(event.time, machine.busy_until)
        self._execute(task, message, start)
        if inbox:
            self._schedule_tick(machine_id, max(machine.busy_until, start))
        else:
            self._tick_scheduled[machine_id] = False

    def run(self, max_events: int | None = None) -> float:
        """Run until the event queue drains.  Returns the completion time.

        Completion time is the larger of the last event's time and the
        busiest machine's final ``busy_until``.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            if event.kind == "deliver":
                self._deliver(event)
            else:
                self._tick(event)
            if max_events is not None and self.events_processed > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; possible signalling loop"
                )
        finish = self.now
        for machine in self.machines:
            finish = max(finish, machine.busy_until)
        self.metrics.finish_time = finish
        return finish

    # ---------------------------------------------------------------- results

    def execution_time(self) -> float:
        """Virtual completion time of the run."""
        return self.metrics.finish_time

    def max_machine_storage(self) -> float:
        """Peak stored size over all machines (the measured per-machine ILF)."""
        return max((machine.peak_stored_size for machine in self.machines), default=0.0)

    def total_storage(self) -> float:
        """Total stored size across the cluster at the end of the run."""
        return sum(machine.stored_size for machine in self.machines)

    def any_spilled(self) -> bool:
        """Whether any machine exceeded its memory budget during the run."""
        return any(machine.spilled for machine in self.machines)
