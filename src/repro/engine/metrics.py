"""Run-wide metrics collection.

The collector gathers everything the paper's evaluation reports:

* output cardinality and (optionally) the full output for correctness checks,
* per-output tuple latency (output time minus arrival of the newer input),
* a time series of the maximum per-machine stored size (the ILF of Fig. 6a),
* migration events with their start/end times and traffic,
* the ILF competitive-ratio series of Fig. 8c.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.engine.columns import np
from repro.engine.stream import StreamTuple


@dataclass(slots=True)
class LatencySample:
    """Latency of one output tuple."""

    output_time: float
    latency: float
    machine_id: int


@dataclass
class MigrationEvent:
    """One adaptivity event (mapping change) and its observed cost."""

    epoch: int
    decided_at: float
    old_mapping: tuple[int, int]
    new_mapping: tuple[int, int]
    completed_at: float | None = None
    migrated_volume: float = 0.0


@dataclass
class MetricsCollector:
    """Accumulates observations during a simulation run."""

    collect_outputs: bool = False
    output_count: int = 0
    outputs: list[tuple[int, int]] = field(default_factory=list)
    latencies: list[LatencySample] = field(default_factory=list)
    ilf_series: list[tuple[float, float]] = field(default_factory=list)
    competitive_series: list[tuple[int, float]] = field(default_factory=list)
    ratio_series: list[tuple[int, float]] = field(default_factory=list)
    migrations: list[MigrationEvent] = field(default_factory=list)
    processed_inputs: int = 0
    finish_time: float = 0.0
    progress_times: list[tuple[int, float]] = field(default_factory=list)
    probe_work: float = 0.0
    #: Drained-run size → count (adaptive data plane only; empty otherwise).
    drain_histogram: dict[int, int] = field(default_factory=dict)
    #: Per-link merged delivery-run length → count (wire-level delivery
    #: merging only; empty otherwise).  Complements drain_histogram: this one
    #: localises coalescing wins/regressions to the *wire* (sender-side run
    #: lengths per FIFO link) versus the *receiver* (drained-run sizes).
    #: Written inline by ``Simulator._settle`` when a run is exhausted (the
    #: settle loop is the hottest merged-wire path, so there is no
    #: ``record_*`` wrapper — keep any future writers consistent with it).
    wire_histogram: dict[int, int] = field(default_factory=dict)
    #: Columnar emission storage: ``(output_time, machine_id, latency_array)``
    #: per recorded :class:`~repro.engine.columns.MatchBlock`.  Latency values
    #: are bit-identical to the scalar samples (same float64 max/subtract per
    #: pair, applied elementwise); they are only *stored* in bulk.  Consumers
    #: wanting flat samples use :meth:`latency_samples`.
    latency_blocks: list[tuple[float, int, object]] = field(default_factory=list)

    # ------------------------------------------------------------ recording

    def record_output(
        self,
        left: StreamTuple,
        right: StreamTuple,
        output_time: float,
        machine_id: int,
    ) -> None:
        """Record one join result (called by joiner tasks via the context)."""
        self.output_count += 1
        if self.collect_outputs:
            self.outputs.append((left.tuple_id, right.tuple_id))
        newer_arrival = max(left.arrival_time, right.arrival_time)
        self.latencies.append(
            LatencySample(
                output_time=output_time,
                latency=max(0.0, output_time - newer_arrival),
                machine_id=machine_id,
            )
        )

    def record_outputs(
        self,
        matches: list[tuple[StreamTuple, StreamTuple]],
        output_time: float,
        machine_id: int,
    ) -> None:
        """Record several join results sharing one emission instant.

        Bulk path for the per-tuple match loop: identical samples to calling
        :meth:`record_output` per pair, with the collector overhead paid once.

        Columnar match sets (:class:`~repro.engine.columns.MatchBlock`) are
        dispatched on type to the vectorised block kernel — call sites stay
        oblivious to which engine produced the matches.
        """
        if matches.__class__ is not list:
            self._record_block(matches, output_time, machine_id)
            return
        self.output_count += len(matches)
        if self.collect_outputs:
            self.outputs.extend(
                (left.tuple_id, right.tuple_id) for left, right in matches
            )
        append = self.latencies.append
        for left, right in matches:
            newer_arrival = max(left.arrival_time, right.arrival_time)
            append(
                LatencySample(
                    output_time=output_time,
                    latency=max(0.0, output_time - newer_arrival),
                    machine_id=machine_id,
                )
            )

    def _record_block(self, block, output_time: float, machine_id: int) -> None:
        """Record a columnar :class:`MatchBlock` with one latency kernel.

        ``max(left.arrival_time, right.arrival_time)`` / subtract / clamp-at-0
        per pair, run elementwise over the block's arrival column — each value
        is the bit-identical float64 result of the scalar sample arithmetic.
        The block's arrays are never mutated (they may be zero-copy snapshots
        of live index columns); every kernel output is a fresh array.
        """
        self.output_count += block.count
        if self.collect_outputs:
            item_id = block.item.tuple_id
            ids = block.ids.tolist()
            if block.item_is_left:
                self.outputs.extend((item_id, candidate) for candidate in ids)
            else:
                self.outputs.extend((candidate, item_id) for candidate in ids)
        newer = np.maximum(block.arrivals, block.item.arrival_time)
        latencies = output_time - newer
        np.maximum(latencies, 0.0, out=latencies)
        self.latency_blocks.append((output_time, machine_id, latencies))

    def record_probe_work(self, amount: float) -> None:
        """Accumulate joiner probe work units (index candidates inspected,
        floored at one unit per probe — see ``LocalJoiner.probe``)."""
        self.probe_work += amount

    def record_drained_run(self, size: int) -> None:
        """Count one drain-eligible run of ``size`` coalesced messages."""
        histogram = self.drain_histogram
        histogram[size] = histogram.get(size, 0) + 1

    def record_input_processed(self, now: float) -> None:
        """Count an input tuple having been routed by a reshuffler."""
        self.processed_inputs += 1
        self.progress_times.append((self.processed_inputs, now))

    def record_ilf(self, now: float, max_machine_ilf: float) -> None:
        """Append one point to the ILF-versus-time series (Fig. 6a)."""
        self.ilf_series.append((now, max_machine_ilf))

    def record_competitive_ratio(self, processed: int, ratio: float) -> None:
        """Append one point to the ILF/ILF* ratio series (Fig. 8c)."""
        self.ratio_series.append((processed, ratio))

    def record_cardinality_ratio(self, processed: int, ratio: float) -> None:
        """Append one |R|/|S| sample (also plotted in Fig. 8c)."""
        self.competitive_series.append((processed, ratio))

    def start_migration(
        self,
        epoch: int,
        now: float,
        old_mapping: tuple[int, int],
        new_mapping: tuple[int, int],
    ) -> MigrationEvent:
        """Open a migration event record."""
        event = MigrationEvent(
            epoch=epoch, decided_at=now, old_mapping=old_mapping, new_mapping=new_mapping
        )
        self.migrations.append(event)
        return event

    def complete_migration(self, epoch: int, now: float) -> None:
        """Mark the migration that opened epoch ``epoch`` as completed."""
        for event in reversed(self.migrations):
            if event.epoch == epoch and event.completed_at is None:
                event.completed_at = now
                return

    # ------------------------------------------------------- derived series

    def progress_fraction_series(
        self, total_inputs: int, max_points: int = 200
    ) -> list[tuple[float, float]]:
        """The progress series as (fraction of input processed, virtual time).

        The raw ``progress_times`` series has one point per input tuple;
        it is downsampled to at most ~``max_points`` evenly spaced points so
        results stay small on large runs.
        """
        total = max(total_inputs, 1)
        step = max(1, len(self.progress_times) // max_points)
        return [(count / total, time) for count, time in self.progress_times[::step]]

    def ilf_fraction_series(self, total_inputs: int) -> list[tuple[float, float]]:
        """The ILF series re-indexed by fraction of input processed.

        The controller samples every ``sample_every`` of *its own* tuples and
        stores the global processed count as the x coordinate, so this only
        rescales x to a fraction (clamped at 1.0 for late samples).
        """
        total = max(total_inputs, 1)
        return [(min(1.0, count / total), value) for count, value in self.ilf_series]

    # ------------------------------------------------------------ summaries

    def latency_samples(self):
        """Iterate every output latency as :class:`LatencySample`.

        Flattens the bulk-stored columnar blocks into the scalar sample shape;
        ordering is scalar samples first, then blocks in recording order.
        """
        yield from self.latencies
        for output_time, machine_id, latencies in self.latency_blocks:
            for latency in latencies.tolist():
                yield LatencySample(
                    output_time=output_time, latency=latency, machine_id=machine_id
                )

    def average_latency(self) -> float:
        """Mean output-tuple latency (0 when no output was produced).

        Uses exact summation (:func:`math.fsum`) so the mean does not depend
        on the order outputs were recorded in — joiners on different machines
        interleave their emissions differently across data planes even when
        every individual sample is bit-identical.  Scalar samples and columnar
        block arrays feed one *single* fsum pass (a sum of per-group fsums
        would not be exactly rounded, so it would not be order-independent).
        """
        blocks = self.latency_blocks
        count = len(self.latencies)
        if blocks:
            count += sum(latencies.shape[0] for _, _, latencies in blocks)
        if not count:
            return 0.0
        values = (sample.latency for sample in self.latencies)
        if blocks:
            values = itertools.chain(
                values,
                itertools.chain.from_iterable(
                    latencies.tolist() for _, _, latencies in blocks
                ),
            )
        return math.fsum(values) / count

    def throughput(self) -> float:
        """Input tuples processed per unit of virtual time."""
        if self.finish_time <= 0:
            return 0.0
        return self.processed_inputs / self.finish_time

    def output_throughput(self) -> float:
        """Output tuples produced per unit of virtual time."""
        if self.finish_time <= 0:
            return 0.0
        return self.output_count / self.finish_time

    def max_competitive_ratio(self) -> float:
        """Largest observed ILF/ILF* ratio (1.0 when never recorded)."""
        if not self.ratio_series:
            return 1.0
        return max(ratio for _, ratio in self.ratio_series)

    def migration_count(self) -> int:
        """Number of mapping changes triggered during the run."""
        return len(self.migrations)
