"""Stream tuples and arrival schedules.

A :class:`StreamTuple` is the unit of data flowing through the operator.  It
carries the relation name, the record payload (a plain dict), a stable
``salt`` drawn uniformly in ``[0, 1)`` when the tuple enters the system, and
bookkeeping fields (arrival time, epoch tag) filled in by the engine.

The salt implements the paper's random, content-insensitive routing: under an
``(n, m)``-mapping an ``R`` tuple belongs to row partition ``floor(salt * n)``
and an ``S`` tuple to column partition ``floor(salt * m)``.  Because
``floor(salt * n)`` refines dyadically as ``n`` doubles and coarsens as ``n``
halves, partition assignments stay consistent across migrations, which is what
makes the locality-aware migration of §4.2.1 possible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

_tuple_ids = itertools.count()


@dataclass(slots=True)
class StreamTuple:
    """A single tuple of one of the two input streams.

    Attributes:
        relation: logical relation name, e.g. ``"R"`` or ``"LINEITEM_1"``.
        record: the attribute payload.
        salt: uniform random value in ``[0, 1)`` used for content-insensitive
            partition assignment; assigned once, never changed.
        size: size of the tuple in abstract storage units (the paper's
            ``size_R`` / ``size_S``).
        tuple_id: unique id, used for output verification in tests.
        arrival_time: virtual time at which the tuple entered the operator.
        epoch: epoch tag assigned by the reshuffler that routed it.
    """

    relation: str
    record: dict[str, Any]
    salt: float = 0.0
    size: float = 1.0
    tuple_id: int = field(default_factory=lambda: next(_tuple_ids))
    arrival_time: float = 0.0
    epoch: int = 0

    def partition(self, parts: int) -> int:
        """Partition index of this tuple when its relation is split ``parts`` ways."""
        index = int(self.salt * parts)
        # Guard against salt == 1.0 - epsilon rounding up at large ``parts``.
        return min(index, parts - 1)

    def with_epoch(self, epoch: int) -> "StreamTuple":
        """Return a shallow copy tagged with ``epoch`` (the record is shared)."""
        return StreamTuple(
            relation=self.relation,
            record=self.record,
            salt=self.salt,
            size=self.size,
            tuple_id=self.tuple_id,
            arrival_time=self.arrival_time,
            epoch=epoch,
        )


@dataclass(slots=True)
class TupleBatch:
    """A micro-batch of stream tuples moving through the data plane as one unit.

    Batching is purely a transport optimisation: every member keeps its own
    arrival time, epoch tag and size, so per-tuple latency and the epoch
    protocol's semantics are unchanged.  A batch's :attr:`size` is the sum of
    its members' sizes, which keeps network volume accounting exact.
    """

    items: list[StreamTuple]

    @property
    def size(self) -> float:
        """Total size of the batch (sum of member sizes)."""
        return sum(item.size for item in self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self.items)


@dataclass
class ArrivalSchedule:
    """Arrival plan for the two input streams.

    ``items`` is the interleaved sequence of tuples in arrival order, and
    ``inter_arrival`` the virtual-time gap between consecutive arrivals.  The
    paper sets input rates "such that joiners are fully utilized"; a small
    constant gap achieves the same effect because the joiner cost per tuple
    dominates.
    """

    items: Sequence[StreamTuple]
    inter_arrival: float = 0.0

    def __len__(self) -> int:
        return len(self.items)

    def arrivals(self) -> Iterator[tuple[float, StreamTuple]]:
        """Yield ``(arrival_time, tuple)`` pairs."""
        for index, item in enumerate(self.items):
            yield index * self.inter_arrival, item

    def batched_arrivals(
        self, batch_size: int, destination_picker: Callable[[StreamTuple], str]
    ) -> Iterator[tuple[float, str, TupleBatch]]:
        """Coalesce arrivals into per-destination micro-batches.

        The destination of every tuple is chosen individually (in arrival
        order, so a randomised picker draws exactly the same sequence as the
        per-tuple path) and up to ``batch_size`` consecutive tuples bound for
        the same destination are coalesced.  A batch is emitted at the arrival
        time of its newest member — a batch can never be delivered before its
        last tuple exists — and partially filled batches are flushed at
        end-of-stream.  Each member's ``arrival_time`` is stamped here, as
        :meth:`Simulator.feed_schedule` does on the per-tuple path.

        Yields:
            ``(emit_time, destination, batch)`` triples.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        buffers: dict[str, list[StreamTuple]] = {}
        end_time = 0.0
        for arrival_time, item in self.arrivals():
            item.arrival_time = arrival_time
            end_time = arrival_time
            destination = destination_picker(item)
            buffer = buffers.setdefault(destination, [])
            buffer.append(item)
            if len(buffer) >= batch_size:
                yield arrival_time, destination, TupleBatch(items=buffers.pop(destination))
        for destination, buffer in buffers.items():
            yield end_time, destination, TupleBatch(items=buffer)


def assign_salts(tuples: Iterable[StreamTuple], rng: random.Random) -> list[StreamTuple]:
    """Assign fresh uniform salts to ``tuples`` (in place) and return them as a list."""
    result = []
    for item in tuples:
        item.salt = rng.random()
        result.append(item)
    return result


def interleave_streams(
    r_tuples: Sequence[StreamTuple],
    s_tuples: Sequence[StreamTuple],
    rng: random.Random | None = None,
    pattern: str = "uniform",
) -> list[StreamTuple]:
    """Interleave two relations into a single arrival order.

    Args:
        r_tuples: tuples of the first relation.
        s_tuples: tuples of the second relation.
        rng: randomness source; required for ``pattern="uniform"``.
        pattern: ``"uniform"`` shuffles both relations together (the paper's
            default online setting), ``"r_first"`` / ``"s_first"`` stream one
            relation completely before the other, and ``"alternate"``
            interleaves them round-robin.

    Returns:
        A list of all tuples in arrival order.
    """
    if pattern == "uniform":
        if rng is None:
            raise ValueError("pattern='uniform' requires an rng")
        combined = list(r_tuples) + list(s_tuples)
        rng.shuffle(combined)
        return combined
    if pattern == "r_first":
        return list(r_tuples) + list(s_tuples)
    if pattern == "s_first":
        return list(s_tuples) + list(r_tuples)
    if pattern == "alternate":
        combined = []
        for r_item, s_item in itertools.zip_longest(r_tuples, s_tuples):
            if r_item is not None:
                combined.append(r_item)
            if s_item is not None:
                combined.append(s_item)
        return combined
    raise ValueError(f"unknown interleaving pattern: {pattern!r}")


def make_tuples(
    relation: str,
    records: Iterable[dict[str, Any]],
    rng: random.Random,
    size: float = 1.0,
) -> list[StreamTuple]:
    """Wrap raw records into :class:`StreamTuple` objects with fresh salts."""
    tuples = [StreamTuple(relation=relation, record=record, size=size) for record in records]
    return assign_salts(tuples, rng)


def fluctuating_order(
    r_tuples: Sequence[StreamTuple],
    s_tuples: Sequence[StreamTuple],
    fluctuation_factor: float,
    warmup: int = 0,
) -> list[StreamTuple]:
    """Arrival order with alternating cardinality-ratio fluctuations (§5.4).

    Data from the first relation streams in until its cardinality is ``k``
    times the second relation's, then the roles swap, and so on until both
    streams are exhausted.  ``warmup`` tuples (alternating) are emitted first
    so the operator has a minimal amount of state before fluctuations start,
    mirroring the paper's "initiate adaptivity after 500K tuples" setting.

    Args:
        r_tuples: tuples of the first relation.
        s_tuples: tuples of the second relation.
        fluctuation_factor: the ratio ``k`` between the leading and the
            trailing relation at each swap point.
        warmup: number of tuples (total, alternating R/S) emitted round-robin
            before the fluctuation pattern begins.

    Returns:
        The full arrival order containing every input tuple exactly once.
    """
    if fluctuation_factor <= 1:
        raise ValueError("fluctuation_factor must be > 1")
    r_queue = list(r_tuples)
    s_queue = list(s_tuples)
    order: list[StreamTuple] = []
    sent_r = 0
    sent_s = 0

    warmup = min(warmup, len(r_queue) + len(s_queue))
    while warmup > 0 and (r_queue or s_queue):
        if r_queue and (sent_r <= sent_s or not s_queue):
            order.append(r_queue.pop(0))
            sent_r += 1
        elif s_queue:
            order.append(s_queue.pop(0))
            sent_s += 1
        warmup -= 1

    # ``leading`` is the relation currently streaming in.
    leading = "R"
    while r_queue or s_queue:
        if leading == "R":
            if not r_queue:
                leading = "S"
                continue
            order.append(r_queue.pop(0))
            sent_r += 1
            if sent_r >= fluctuation_factor * max(sent_s, 1) and s_queue:
                leading = "S"
        else:
            if not s_queue:
                leading = "R"
                continue
            order.append(s_queue.pop(0))
            sent_s += 1
            if sent_s >= fluctuation_factor * max(sent_r, 1) and r_queue:
                leading = "R"
    return order
