"""Batch-sizing strategies of the data plane.

Two batching planes exist:

* the **fixed** plane (PR 1) coalesces tuples into ``batch_size``-sized
  ``BATCH`` messages at the *sender* (source feeder, reshuffler route groups).
  It is the fastest plane but it changes message timing: a batch is delivered
  at its newest member's arrival time and an epoch edge can only fall between
  batches, so virtual times drift from the per-tuple reference by up to
  ``batch_size`` tuples per reshuffler.

* the **adaptive** plane keeps the wire per-tuple — every message is sent,
  transferred and delivered exactly as under ``batch_size=1`` — and instead
  coalesces at the *receiver*: when a machine starts working and its inbox
  holds a backlog of drainable messages (same task, same kind, same epoch),
  the simulator drains a controller-sized run of them into one handler
  invocation.  Each member is still charged at its own virtual-time boundary
  (see :meth:`repro.engine.task.Context.boundary`), so busy chains, output
  timestamps, migration decisions and network traffic are *bit-identical* to
  the per-tuple plane — batching degrades into a pure simulator-event and
  probe-vectorisation optimisation.  Under paced arrivals the inbox never
  backs up and the plane naturally degenerates to per-tuple processing;
  around epoch edges the drain key changes and the run is force-flushed.

A :class:`BatchController` decides how many drainable messages one machine
may coalesce per invocation, given its current inbox backlog.  Controllers
are registered in :data:`repro.api.registry.batch_controllers` (names are the
``RunConfig.batching`` values) so new strategies plug in like probe engines.

Receiver draining governs *handler invocations*; the orthogonal wire-level
delivery merging (``RunConfig.delivery_merging``, default on for draining
planes) collapses the per-message *heap events* of the per-tuple wire into
per-channel ``DeliveryRun``s — see ``repro.engine.simulator`` and the
"wire plane" section of ARCHITECTURE.md.
"""

from __future__ import annotations

from repro.api.registry import register_batch_controller

#: Largest run the built-in adaptive controller will coalesce by default.
#: Matches the fixed plane's tuned ``DEFAULT_BATCH_SIZE`` so the two planes
#: amortise comparable per-event overhead at full backlog.
DEFAULT_BATCH_MAX = 64


class BatchController:
    """Per-machine strategy sizing the next drained run.

    Attributes:
        drains: whether this controller coalesces at the receiver at all.
            ``False`` marks a pure sender-side plane (the fixed plane); the
            simulator is not given drain controllers in that case.
    """

    drains = True

    def next_batch_size(self, backlog: int) -> int:
        """Upper bound on the next drained run, given ``backlog`` queued messages.

        Must return a value in ``[1, batch_max]``; ``1`` means per-tuple
        processing.  Called once per eligible machine invocation, in
        deterministic simulation order, so stateful ramps stay reproducible.
        """
        raise NotImplementedError


class FixedBatchController(BatchController):
    """The classic sender-side plane: no receiver draining at all.

    Registered as ``batching="fixed"`` — the default.  Batch sizing is static
    (``RunConfig.batch_size``) and happens where the batches are built: the
    source feeder and the reshuffler route groups.
    """

    drains = False

    def next_batch_size(self, backlog: int) -> int:
        return 1


class AdaptiveBatchController(BatchController):
    """Backlog-driven sizing: grow under pressure, collapse when paced.

    The ramp doubles while backlog persists (so a standing queue is drained
    in exponentially growing runs up to ``batch_max``) and snaps back to
    per-tuple the moment the inbox is (nearly) empty — which is exactly the
    state a paced source keeps the machine in.  The controller never asks
    for more than the observed backlog, so it cannot make a machine wait
    for input that has not arrived.

    Invariants (pinned by the Hypothesis suite in
    ``tests/test_adaptive_conformance.py``):

    * every returned size is in ``[1, batch_max]``,
    * a backlog of ``<= 1`` always returns 1 (paced collapse),
    * under a sustained backlog ``>= batch_max`` the returned sizes are
      non-decreasing and reach ``batch_max``.
    """

    def __init__(self, batch_max: int = DEFAULT_BATCH_MAX) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.batch_max = batch_max
        self._size = 1

    def next_batch_size(self, backlog: int) -> int:
        if backlog <= 1:
            self._size = 1
            return 1
        target = min(self.batch_max, backlog)
        if self._size < target:
            self._size = min(target, max(2, self._size * 2))
        else:
            self._size = target
        return self._size


register_batch_controller("fixed", FixedBatchController)
register_batch_controller("adaptive", AdaptiveBatchController)
