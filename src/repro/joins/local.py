"""Local non-blocking join algorithms.

A :class:`LocalJoiner` lives inside one joiner task.  It stores the tuples of
both relations assigned to that joiner and, for every newly arriving tuple,
immediately produces the joins with the stored tuples of the opposite
relation — the classic symmetric/pipelined evaluation scheme of SHJ, XJoin and
friends.  The operator is agnostic to which flavour runs locally (§3.2); the
flavours differ only in the index structures they maintain and therefore in
the CPU work a probe costs.

``insert`` and ``probe`` return *work units* (number of candidates touched)
so that the simulation engine can charge realistic, predicate-dependent CPU
costs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.engine.stream import StreamTuple
from repro.joins.index import JoinIndex, make_index
from repro.joins.predicates import JoinPredicate


class LocalJoiner:
    """Symmetric, index-backed local join over two relations.

    Args:
        predicate: the join condition; its ``kind`` selects the index type.
        left_relation: relation name treated as the left/"R" side.
        right_relation: relation name treated as the right/"S" side.
    """

    def __init__(self, predicate: JoinPredicate, left_relation: str, right_relation: str) -> None:
        self.predicate = predicate
        self.left_relation = left_relation
        self.right_relation = right_relation
        self._indexes: dict[str, JoinIndex] = {
            left_relation: self._build_index(side="left"),
            right_relation: self._build_index(side="right"),
        }

    # ------------------------------------------------------------ index setup

    def _key_func(self, side: str) -> Callable[[StreamTuple], object] | None:
        if self.predicate.kind not in ("equi", "band"):
            return None
        if side == "left":
            return lambda item: self.predicate.left_key(item.record)
        return lambda item: self.predicate.right_key(item.record)

    def _build_index(self, side: str) -> JoinIndex:
        return make_index(self.predicate.kind, self._key_func(side))

    # ---------------------------------------------------------------- storage

    def _check_relation(self, relation: str) -> None:
        if relation not in self._indexes:
            raise KeyError(
                f"unknown relation {relation!r}; expected "
                f"{self.left_relation!r} or {self.right_relation!r}"
            )

    def opposite(self, relation: str) -> str:
        """The other relation's name."""
        self._check_relation(relation)
        if relation == self.left_relation:
            return self.right_relation
        return self.left_relation

    def insert(self, item: StreamTuple) -> float:
        """Store ``item``; returns the work units spent."""
        self._check_relation(item.relation)
        self._indexes[item.relation].insert(item)
        return 1.0

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item`` from storage; returns True if it was stored."""
        self._check_relation(item.relation)
        return self._indexes[item.relation].remove(item)

    def count(self, relation: str) -> int:
        """Number of stored tuples of ``relation``."""
        self._check_relation(relation)
        return len(self._indexes[relation])

    def stored_size(self) -> float:
        """Total size units stored across both relations."""
        return sum(item.size for index in self._indexes.values() for item in index.items())

    def stored(self, relation: str) -> Iterator[StreamTuple]:
        """Iterate over stored tuples of ``relation``."""
        self._check_relation(relation)
        return self._indexes[relation].items()

    # ----------------------------------------------------------------- probes

    def probe(
        self,
        item: StreamTuple,
        restrict: Callable[[StreamTuple], bool] | None = None,
    ) -> tuple[list[StreamTuple], float]:
        """Join ``item`` against stored tuples of the opposite relation.

        Args:
            item: the newly arrived tuple (not yet inserted).
            restrict: optional filter over stored tuples; the epoch protocol
                of §4.3.1 uses it to join against specific tuple sets
                (``Keep(τ ∪ ∆)``, ``µ``, ``∆'``, ...).

        Returns:
            ``(matches, work_units)`` where ``matches`` are the stored tuples
            satisfying the predicate with ``item`` and ``work_units`` counts
            the candidates the index had to inspect.
        """
        self._check_relation(item.relation)
        item_is_left = item.relation == self.left_relation
        opposite_index = self._indexes[
            self.right_relation if item_is_left else self.left_relation
        ]

        candidates, inspected = self._candidates(opposite_index, item, item_is_left)
        matches = []
        record = item.record
        predicate_matches = self.predicate.matches
        for candidate in candidates:
            if restrict is not None and not restrict(candidate):
                continue
            if item_is_left:
                satisfied = predicate_matches(record, candidate.record)
            else:
                satisfied = predicate_matches(candidate.record, record)
            if satisfied:
                matches.append(candidate)
        return matches, float(max(inspected, 1))

    def _candidates(
        self, opposite_index: JoinIndex, item: StreamTuple, item_is_left: bool
    ) -> tuple[list[StreamTuple], int]:
        kind = self.predicate.kind
        if kind == "equi":
            key = (
                self.predicate.left_key(item.record)
                if item_is_left
                else self.predicate.right_key(item.record)
            )
            return opposite_index.probe(key)
        if kind == "band":
            key = (
                self.predicate.left_key(item.record)
                if item_is_left
                else self.predicate.right_key(item.record)
            )
            width = getattr(self.predicate, "width", None)
            if width is None:
                width = getattr(getattr(self.predicate, "primary", None), "width", 0.0)
            return opposite_index.probe_range(key - width, key + width)
        return opposite_index.probe(None)

    # -------------------------------------------------------------- reporting

    def describe(self) -> str:
        """Human-readable algorithm description."""
        return f"{type(self).__name__}({self.predicate.describe()})"


class SymmetricHashJoiner(LocalJoiner):
    """Symmetric hash join (Wilschut & Apers); requires an equi predicate."""

    def __init__(self, predicate: JoinPredicate, left_relation: str, right_relation: str) -> None:
        if predicate.kind != "equi":
            raise ValueError("SymmetricHashJoiner requires an equi-join predicate")
        super().__init__(predicate, left_relation, right_relation)


class SortedBandJoiner(LocalJoiner):
    """Sort/merge-flavoured local join with ordered indexes; for band predicates."""

    def __init__(self, predicate: JoinPredicate, left_relation: str, right_relation: str) -> None:
        if predicate.kind != "band":
            raise ValueError("SortedBandJoiner requires a band-join predicate")
        super().__init__(predicate, left_relation, right_relation)


class NestedLoopJoiner(LocalJoiner):
    """Block-nested-loop local join; handles arbitrary theta predicates."""


def make_local_joiner(
    predicate: JoinPredicate, left_relation: str, right_relation: str
) -> LocalJoiner:
    """Pick the local algorithm matching the predicate kind."""
    if predicate.kind == "equi":
        return SymmetricHashJoiner(predicate, left_relation, right_relation)
    if predicate.kind == "band":
        return SortedBandJoiner(predicate, left_relation, right_relation)
    return NestedLoopJoiner(predicate, left_relation, right_relation)
