"""Local non-blocking join algorithms.

A :class:`LocalJoiner` lives inside one joiner task.  It stores the tuples of
both relations assigned to that joiner and, for every newly arriving tuple,
immediately produces the joins with the stored tuples of the opposite
relation — the classic symmetric/pipelined evaluation scheme of SHJ, XJoin and
friends.  The operator is agnostic to which flavour runs locally (§3.2); the
flavours differ only in the index structures they maintain and therefore in
the CPU work a probe costs.

``insert`` and ``probe`` return *work units* (number of candidates touched)
so that the simulation engine can charge realistic, predicate-dependent CPU
costs.  :meth:`LocalJoiner.probe_batch` is the batch-aware engine: it
inserts+probes an entire micro-batch symmetrically — each member joins
against everything stored before it, including earlier batch members — while
probing the pre-batch index state in one grouped (hash) or sort-merge
(ordered) pass.

Probe engines are pluggable through the
:data:`repro.api.registry.probe_engines` registry; two ship built in:

* ``"vectorized"`` (default) — batch index passes, and the exact-key fast
  path: candidates from an exact-key hash bucket already satisfy the primary
  equality (the bucket key *is* the predicate), so only composite residuals
  are re-validated per pair.  Band predicates advertising ``range_complete``
  (integer-keyed / tolerance-safe bands — see
  :class:`~repro.joins.predicates.BandPredicate`) get the range analogue:
  ordered-window candidates skip the per-pair band re-validation.
* ``"scalar"`` — the per-member reference path that re-validates the full
  predicate on every candidate.  It defines the semantics ``probe_batch``
  must reproduce and serves as the differential-testing oracle and the
  pre-vectorization benchmark baseline.

Additional engines register via :func:`repro.api.register_probe_engine` with
a :class:`ProbeEngine` strategy; unknown engine names fail eagerly at joiner
(and, higher up, operator/config) construction with the registered choices
listed.  Likewise, :func:`make_local_joiner` dispatches on the predicate
``kind`` through the :data:`repro.api.registry.predicate_kinds` registry, so
new predicate families plug in their local algorithms without touching this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.api.registry import (
    predicate_kinds,
    probe_engines,
    register_predicate,
    register_probe_engine,
)
from repro.engine.columns import HAS_NUMPY, NUMPY_HINT
from repro.engine.stream import StreamTuple
from repro.joins.index import JoinIndex, make_index
from repro.joins.predicates import (
    BandPredicate,
    EquiPredicate,
    JoinPredicate,
    ThetaPredicate,
)


@dataclass(frozen=True)
class ProbeEngine:
    """Strategy object describing one probe-engine flavour.

    Attributes:
        name: registry name of the engine.
        batch_aware: whether joiner tasks should route NORMAL-phase DATA
            batches through :meth:`EpochJoinerState.handle_data_batch` →
            :meth:`LocalJoiner.probe_batch` (False keeps per-member dispatch).
        exact_key_fast_path: whether candidates the index already decides —
            exact-key hash buckets, and range windows of band predicates
            advertising ``range_complete`` — may skip per-pair re-validation
            of the primary predicate.
        probe_batch: callable ``(joiner, items) -> [(matches, work), ...]``
            implementing the batch insert+probe pass; must reproduce the
            scalar reference semantics exactly (same matches, same charged
            work).
        index_factory: optional ``(kind, key_func) -> JoinIndex`` override
            used instead of :func:`repro.joins.index.make_index`; lets an
            engine pair its kernels with matching index layouts (the columnar
            engine's array-mirrored indexes).
        requires: optional name of an extra this engine depends on (today
            only ``"numpy"``).  The engine always *registers* — it appears in
            the choice lists — but joiner/config construction raises an eager
            error when the extra is missing.
        bulk_commit: whether joiner tasks may replace the per-member Python
            cost/busy accumulation of a batch with the vectorised
            ``np.cumsum`` chain (``JoinerTask`` gates it further on the
            conditions that make the chain provably bit-identical: unbounded
            memory, every member stored, no relocations).  Only meaningful
            with ``batch_aware`` and a NumPy-backed engine.
    """

    name: str
    batch_aware: bool
    exact_key_fast_path: bool
    probe_batch: Callable[["LocalJoiner", Sequence[StreamTuple]], list]
    index_factory: Callable[[str, Callable | None], JoinIndex] | None = None
    requires: str | None = None
    bulk_commit: bool = False


class LocalJoiner:
    """Symmetric, index-backed local join over two relations.

    Args:
        predicate: the join condition; its ``kind`` selects the index type.
        left_relation: relation name treated as the left/"R" side.
        right_relation: relation name treated as the right/"S" side.
        engine: probe engine, ``"vectorized"`` (default) or ``"scalar"``
            (full per-candidate re-validation; reference semantics).
    """

    def __init__(
        self,
        predicate: JoinPredicate,
        left_relation: str,
        right_relation: str,
        engine: str = "vectorized",
    ) -> None:
        # Registry lookup raises eagerly with the registered choices listed.
        self._engine_spec: ProbeEngine = probe_engines.get(engine)
        if self._engine_spec.requires == "numpy" and not HAS_NUMPY:
            raise ValueError(f"probe engine {engine!r} unavailable: {NUMPY_HINT}")
        self.predicate = predicate
        self.left_relation = left_relation
        self.right_relation = right_relation
        self.engine = engine
        self._indexes: dict[str, JoinIndex] = {
            left_relation: self._build_index(side="left"),
            right_relation: self._build_index(side="right"),
        }
        # The index objects are stable for the joiner's lifetime; direct
        # references serve the keyed probe fast paths.
        self._left_index = self._indexes[left_relation]
        self._right_index = self._indexes[right_relation]
        kind = predicate.kind
        # Pre-resolved probe plumbing (avoids per-probe getattr chains).
        self._pred_left_key = predicate.left_key if kind in ("equi", "band") else None
        self._pred_right_key = predicate.right_key if kind in ("equi", "band") else None
        self._band_width = self._resolve_band_width() if kind == "band" else 0.0
        self._exact_key = (
            self._engine_spec.exact_key_fast_path and kind == "equi" and predicate.exact_key
        )
        # Band analogue of the exact-key fast path: the predicate asserts the
        # range window exactly decides the primary condition (integer-keyed /
        # tolerance-safe bands), so range candidates skip re-validation.  The
        # scalar engine ignores the fast path — it stays the full-validation
        # differential oracle.
        self._range_complete = (
            self._engine_spec.exact_key_fast_path
            and kind == "band"
            and predicate.range_complete
        )
        # Per-candidate validation, resolved once: None means exact-key hash
        # (or range-complete window) candidates need no validation at all;
        # fast-path predicates with residuals validate only the residual
        # part; everything else (and the scalar engine) runs the full
        # predicate.
        self._check = (
            predicate.residual_check()
            if self._exact_key or self._range_complete
            else predicate.matches
        )

    # ------------------------------------------------------------ index setup

    def _resolve_band_width(self) -> float:
        width = getattr(self.predicate, "width", None)
        if width is None:
            width = getattr(getattr(self.predicate, "primary", None), "width", 0.0)
        return width

    def _key_func(self, side: str) -> Callable[[StreamTuple], object] | None:
        if self.predicate.kind not in ("equi", "band"):
            return None
        if side == "left":
            return lambda item: self.predicate.left_key(item.record)
        return lambda item: self.predicate.right_key(item.record)

    def _build_index(self, side: str) -> JoinIndex:
        factory = self._engine_spec.index_factory
        if factory is not None:
            return factory(self.predicate.kind, self._key_func(side))
        return make_index(self.predicate.kind, self._key_func(side))

    def fresh(self) -> "LocalJoiner":
        """An empty joiner with the same predicate, relations and engine.

        Used by the epoch protocol to build tag-partitioned sub-stores.
        """
        return type(self)(self.predicate, self.left_relation, self.right_relation,
                          engine=self.engine)

    # ---------------------------------------------------------------- storage

    def _check_relation(self, relation: str) -> None:
        if relation not in self._indexes:
            raise KeyError(
                f"unknown relation {relation!r}; expected "
                f"{self.left_relation!r} or {self.right_relation!r}"
            )

    def opposite(self, relation: str) -> str:
        """The other relation's name."""
        self._check_relation(relation)
        if relation == self.left_relation:
            return self.right_relation
        return self.left_relation

    def insert(self, item: StreamTuple) -> float:
        """Store ``item``; returns the work units spent."""
        self._check_relation(item.relation)
        self._indexes[item.relation].insert(item)
        return 1.0

    def bulk_insert(self, relation: str, items: Sequence[StreamTuple]) -> None:
        """Bulk-load ``items`` of ``relation`` (amortised index construction)."""
        self._check_relation(relation)
        self._indexes[relation].bulk_insert(items)

    def absorb(self, other: "LocalJoiner") -> None:
        """Merge every tuple stored in ``other`` into this joiner."""
        for relation in (self.left_relation, self.right_relation):
            self._indexes[relation].bulk_insert(list(other.stored(relation)))

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item`` from storage; returns True if it was stored."""
        self._check_relation(item.relation)
        return self._indexes[item.relation].remove(item)

    def count(self, relation: str) -> int:
        """Number of stored tuples of ``relation``."""
        self._check_relation(relation)
        return len(self._indexes[relation])

    def total_count(self) -> int:
        """Number of stored tuples across both relations (O(1))."""
        return sum(len(index) for index in self._indexes.values())

    def stored_size(self) -> float:
        """Total size units stored across both relations (O(1)).

        Backed by counters the indexes maintain on insert/remove/bulk-load —
        never a re-scan of the stored tuples.
        """
        return sum(index.total_size for index in self._indexes.values())

    def stored(self, relation: str) -> Iterator[StreamTuple]:
        """Iterate over stored tuples of ``relation``."""
        self._check_relation(relation)
        return self._indexes[relation].items()

    # ----------------------------------------------------------------- probes

    def probe(
        self,
        item: StreamTuple,
        restrict: Callable[[StreamTuple], bool] | None = None,
    ) -> tuple[list[StreamTuple], float]:
        """Join ``item`` against stored tuples of the opposite relation.

        Args:
            item: the newly arrived tuple (not yet inserted).
            restrict: optional filter over stored tuples (tuple-set selection
                for callers not using the partitioned epoch stores).

        Returns:
            ``(matches, work_units)`` where ``matches`` are the stored tuples
            satisfying the predicate with ``item`` and ``work_units`` counts
            the candidates the index had to inspect.  Work units are floored
            at 1: every probe costs at least the index lookup itself.  This is
            the *single* place the floor is applied — indexes and
            :meth:`raw_probe` report raw candidate counts.
        """
        matches, inspected = self.raw_probe(item, restrict)
        return matches, float(max(inspected, 1))

    def raw_probe(
        self,
        item: StreamTuple,
        restrict: Callable[[StreamTuple], bool] | None = None,
    ) -> tuple[list[StreamTuple], int]:
        """Like :meth:`probe` but reporting the unfloored candidate count.

        The epoch protocol probes several tag-partitioned sub-stores per
        logical probe and applies the work floor once to the summed counts.
        """
        self._check_relation(item.relation)
        item_is_left = item.relation == self.left_relation
        opposite_index = self._indexes[
            self.right_relation if item_is_left else self.left_relation
        ]
        candidates, inspected = self._candidates(opposite_index, item, item_is_left)
        if not candidates:
            return [], inspected
        check = self._check
        if restrict is None:
            if check is None:
                # Exact-key fast path: the bucket is the match set.
                return list(candidates), inspected
            record = item.record
            if item_is_left:
                return [c for c in candidates if check(record, c.record)], inspected
            return [c for c in candidates if check(c.record, record)], inspected
        matches = []
        record = item.record
        for candidate in candidates:
            if not restrict(candidate):
                continue
            if check is not None:
                if item_is_left:
                    satisfied = check(record, candidate.record)
                else:
                    satisfied = check(candidate.record, record)
                if not satisfied:
                    continue
            matches.append(candidate)
        return matches, inspected

    # ------------------------------------------------------------ keyed probes
    #
    # The epoch protocol probes several tag-partitioned sub-stores per logical
    # probe; all partitions share one predicate, so the per-tuple inputs
    # (side, extracted key) are resolved once via probe_plan and reused by the
    # keyed variants below — identical results/work to raw_probe and
    # candidate_count, minus the repeated dispatch and key extraction.

    def probe_plan(self, item: StreamTuple) -> tuple[bool, object]:
        """Resolve one tuple's probe inputs: ``(is_left, key)``.

        ``key`` is None for scan-served (theta) predicates.  Valid for any
        joiner sharing this joiner's predicate and relation names (the epoch
        sub-stores), whose keyed probes can then skip re-extraction.
        """
        item_is_left = item.relation == self.left_relation
        left_key = self._pred_left_key
        if left_key is None:
            return item_is_left, None
        if item_is_left:
            return item_is_left, left_key(item.record)
        return item_is_left, self._pred_right_key(item.record)

    def keyed_raw_probe(
        self, item_is_left: bool, key, record
    ) -> tuple[list[StreamTuple], int]:
        """:meth:`raw_probe` with the inputs of :meth:`probe_plan` pre-resolved."""
        opposite_index = self._right_index if item_is_left else self._left_index
        kind = self.predicate.kind
        if kind == "equi":
            candidates, inspected = opposite_index.probe(key)
        elif kind == "band":
            width = self._band_width
            candidates, inspected = opposite_index.probe_range(key - width, key + width)
        else:
            candidates, inspected = opposite_index.probe(None)
        if not candidates:
            return [], inspected
        check = self._check
        if check is None:
            return list(candidates), inspected
        if item_is_left:
            return [c for c in candidates if check(record, c.record)], inspected
        return [c for c in candidates if check(c.record, record)], inspected

    def keyed_candidate_count(self, item_is_left: bool, key) -> int:
        """:meth:`candidate_count` with the probe inputs pre-resolved."""
        opposite_index = self._right_index if item_is_left else self._left_index
        kind = self.predicate.kind
        if kind == "equi":
            return opposite_index.count_key(key)
        if kind == "band":
            width = self._band_width
            return opposite_index.count_range(key - width, key + width)
        return len(opposite_index)

    def candidate_count(self, item: StreamTuple) -> int:
        """Candidates a probe of ``item`` would inspect, without materialising.

        O(1) for hash/scan stores, O(log n) for ordered stores; used for
        exact work accounting over unprobed epoch partitions.  Delegates to
        the keyed variant so the kind dispatch lives in one place.
        """
        item_is_left, key = self.probe_plan(item)
        return self.keyed_candidate_count(item_is_left, key)

    def _candidates(
        self, opposite_index: JoinIndex, item: StreamTuple, item_is_left: bool
    ) -> tuple[list[StreamTuple], int]:
        kind = self.predicate.kind
        if kind == "equi":
            key = (
                self._pred_left_key(item.record)
                if item_is_left
                else self._pred_right_key(item.record)
            )
            return opposite_index.probe(key)
        if kind == "band":
            key = (
                self._pred_left_key(item.record)
                if item_is_left
                else self._pred_right_key(item.record)
            )
            width = self._band_width
            return opposite_index.probe_range(key - width, key + width)
        return opposite_index.probe(None)

    # ------------------------------------------------------------ batch probe

    def probe_batch(
        self, items: Sequence[StreamTuple]
    ) -> list[tuple[list[StreamTuple], float]]:
        """Symmetrically insert+probe a whole micro-batch.

        Semantically equivalent to, for each member in order: ``probe(member)``
        then ``insert(member)`` — every member joins against everything stored
        before it, including earlier batch members of the opposite relation
        (intra-batch self-join semantics).  The vectorized engine runs one
        lean pass over the live indexes: zero-copy bucket walks with
        pre-extracted keys (hash), in-place band windows (ordered), and no
        per-candidate validation when the exact-key fast path applies —
        because the indexes are live, each member automatically sees every
        earlier member of the opposite relation.

        Returns:
            Per-member ``(matches, work_units)``, aligned with ``items``.
            Work accounting is identical to the per-member sequence: raw
            candidate counts (pre-batch + earlier intra-batch candidates),
            floored at 1 per member.
        """
        return self._engine_spec.probe_batch(self, items)

    def _probe_batch_equi(
        self, items: Sequence[StreamTuple]
    ) -> list[tuple[list[StreamTuple], float]]:
        # One lean pass over the live hash buckets: probing the opposite
        # bucket in place (zero-copy) and appending each member under its
        # already-extracted key.  Because the buckets are live, intra-batch
        # self-join semantics fall out for free — each member sees every
        # earlier member of the opposite relation.
        left_relation = self.left_relation
        right_relation = self.right_relation
        left_key = self._pred_left_key
        right_key = self._pred_right_key
        left_index = self._indexes[left_relation]
        right_index = self._indexes[right_relation]
        check = self._check
        results: list[tuple[list[StreamTuple], float]] = []
        append = results.append
        for item in items:
            record = item.record
            if item.relation == left_relation:
                is_left = True
                key = left_key(record)
                bucket = right_index.bucket_for(key)
            else:
                if item.relation != right_relation:
                    self._check_relation(item.relation)
                is_left = False
                key = right_key(record)
                bucket = left_index.bucket_for(key)
            if bucket:
                if check is None:
                    matches = list(bucket)
                elif is_left:
                    matches = [c for c in bucket if check(record, c.record)]
                else:
                    matches = [c for c in bucket if check(c.record, record)]
                append((matches, float(len(bucket))))
            else:
                append(([], 1.0))
            (left_index if is_left else right_index).insert_keyed(key, item)
        return results

    def _probe_batch_band(
        self, items: Sequence[StreamTuple]
    ) -> list[tuple[list[StreamTuple], float]]:
        # Lean pass over the live ordered indexes: each member bisects its
        # band window out of the opposite key list and is then inserted, so
        # later members see it — intra-batch semantics without side
        # structures.  (probe_range_batch's sort-merge cursor serves callers
        # probing a static snapshot; here the index mutates between probes.)
        left_relation = self.left_relation
        right_relation = self.right_relation
        left_key = self._pred_left_key
        right_key = self._pred_right_key
        width = self._band_width
        left_index = self._indexes[left_relation]
        right_index = self._indexes[right_relation]
        check = self._check
        results: list[tuple[list[StreamTuple], float]] = []
        append = results.append
        for item in items:
            record = item.record
            if item.relation == left_relation:
                is_left = True
                key = left_key(record)
                candidates, inspected = right_index.probe_range(key - width, key + width)
            else:
                if item.relation != right_relation:
                    self._check_relation(item.relation)
                is_left = False
                key = right_key(record)
                candidates, inspected = left_index.probe_range(key - width, key + width)
            if candidates:
                if check is None:
                    # Range-complete fast path: the window is the match set.
                    matches = list(candidates)
                elif is_left:
                    matches = [c for c in candidates if check(record, c.record)]
                else:
                    matches = [c for c in candidates if check(c.record, record)]
                append((matches, float(max(inspected, 1))))
            else:
                append(([], 1.0))
            (left_index if is_left else right_index).insert(item)
        return results

    def _probe_batch_scan(
        self, items: Sequence[StreamTuple]
    ) -> list[tuple[list[StreamTuple], float]]:
        left_relation = self.left_relation
        right_relation = self.right_relation
        left_index = self._indexes[left_relation]
        right_index = self._indexes[right_relation]
        check = self._check
        results: list[tuple[list[StreamTuple], float]] = []
        append = results.append
        for item in items:
            record = item.record
            if item.relation == left_relation:
                is_left = True
                candidates, inspected = right_index.probe(None)
            else:
                if item.relation != right_relation:
                    self._check_relation(item.relation)
                is_left = False
                candidates, inspected = left_index.probe(None)
            if candidates:
                if is_left:
                    matches = [c for c in candidates if check(record, c.record)]
                else:
                    matches = [c for c in candidates if check(c.record, record)]
                append((matches, float(max(inspected, 1))))
            else:
                append(([], 1.0))
            (left_index if is_left else right_index).insert(item)
        return results

    # -------------------------------------------------------------- reporting

    def describe(self) -> str:
        """Human-readable algorithm description."""
        return f"{type(self).__name__}({self.predicate.describe()})"


class SymmetricHashJoiner(LocalJoiner):
    """Symmetric hash join (Wilschut & Apers); requires an equi predicate."""

    def __init__(
        self,
        predicate: JoinPredicate,
        left_relation: str,
        right_relation: str,
        engine: str = "vectorized",
    ) -> None:
        if predicate.kind != "equi":
            raise ValueError("SymmetricHashJoiner requires an equi-join predicate")
        super().__init__(predicate, left_relation, right_relation, engine=engine)


class SortedBandJoiner(LocalJoiner):
    """Sort/merge-flavoured local join with ordered indexes; for band predicates.

    The band ``width`` is resolved once at construction (see
    ``LocalJoiner._resolve_band_width``), not per probe.
    """

    def __init__(
        self,
        predicate: JoinPredicate,
        left_relation: str,
        right_relation: str,
        engine: str = "vectorized",
    ) -> None:
        if predicate.kind != "band":
            raise ValueError("SortedBandJoiner requires a band-join predicate")
        super().__init__(predicate, left_relation, right_relation, engine=engine)


class NestedLoopJoiner(LocalJoiner):
    """Block-nested-loop local join; handles arbitrary theta predicates."""


def make_local_joiner(
    predicate: JoinPredicate,
    left_relation: str,
    right_relation: str,
    engine: str = "vectorized",
) -> LocalJoiner:
    """Build the local algorithm registered for the predicate's ``kind``."""
    spec = predicate_kinds.get(predicate.kind)
    return spec.joiner_factory(predicate, left_relation, right_relation, engine=engine)


# --------------------------------------------------------------------------
# Built-in registrations (the registries are the single dispatch authority;
# new engines/kinds plug in through repro.api.register_* without edits here).
# --------------------------------------------------------------------------

def _scalar_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[list[StreamTuple], float]]:
    """Reference semantics: the exact per-member probe-then-insert sequence."""
    results = []
    for item in items:
        results.append(joiner.probe(item))
        joiner.insert(item)
    return results


def _vectorized_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[list[StreamTuple], float]]:
    """One lean pass over the live indexes, dispatched on the predicate kind."""
    kind = joiner.predicate.kind
    if kind == "equi":
        return joiner._probe_batch_equi(items)
    if kind == "band":
        return joiner._probe_batch_band(items)
    return joiner._probe_batch_scan(items)


register_probe_engine(
    "vectorized",
    ProbeEngine(
        name="vectorized",
        batch_aware=True,
        exact_key_fast_path=True,
        probe_batch=_vectorized_probe_batch,
    ),
)
register_probe_engine(
    "scalar",
    ProbeEngine(
        name="scalar",
        batch_aware=False,
        exact_key_fast_path=False,
        probe_batch=_scalar_probe_batch,
    ),
)

register_predicate("equi", SymmetricHashJoiner, EquiPredicate)
register_predicate("band", SortedBandJoiner, BandPredicate)
register_predicate("theta", NestedLoopJoiner, ThetaPredicate)

# The columnar engine registers itself from its own module (it needs every
# name above, so the import sits after them — a deliberately resolvable
# circular import, same pattern as the registrations living at the bottom).
from repro.joins import columnar as _columnar  # noqa: E402,F401
