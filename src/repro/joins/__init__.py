"""Local non-blocking join algorithms and join predicates.

Each joiner task of the parallel operator runs a *local* non-blocking join on
its assigned data partition (§3.2): when a tuple arrives it is stored for
later use and immediately joined against the stored tuples of the opposite
relation.  The paper notes that any flavour of local online join (symmetric
hash join, XJoin, RPJ, PMJ, ripple join, ...) can be plugged in; this package
provides three such flavours built on top of a common index layer:

* :class:`SymmetricHashJoiner` — hash indexes on the join key (equi-joins),
* :class:`SortedBandJoiner` — ordered indexes with range probes (band joins),
* :class:`NestedLoopJoiner` — full scans (arbitrary theta predicates),
* :class:`RippleJoiner` — block ripple join producing early results and
  running aggregate estimates.

Predicates (:mod:`repro.joins.predicates`) describe the join condition and
advertise which index kind can serve them.
"""

from repro.joins.index import HashIndex, OrderedIndex, ScanIndex, make_index
from repro.joins.local import (
    LocalJoiner,
    NestedLoopJoiner,
    SortedBandJoiner,
    SymmetricHashJoiner,
    make_local_joiner,
)
from repro.joins.predicates import (
    BandPredicate,
    CompositePredicate,
    EquiPredicate,
    JoinPredicate,
    ThetaPredicate,
)
from repro.joins.ripple import RippleJoiner

__all__ = [
    "BandPredicate",
    "CompositePredicate",
    "EquiPredicate",
    "HashIndex",
    "JoinPredicate",
    "LocalJoiner",
    "NestedLoopJoiner",
    "OrderedIndex",
    "RippleJoiner",
    "ScanIndex",
    "SortedBandJoiner",
    "SymmetricHashJoiner",
    "ThetaPredicate",
    "make_index",
    "make_local_joiner",
]
