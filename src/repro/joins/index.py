"""In-memory join indexes.

The paper's joiners use hashmaps for equi-joins and balanced binary trees for
band joins (§5, "Operators").  This module provides the equivalent structures:

* :class:`HashIndex` — exact-key probes,
* :class:`OrderedIndex` — range probes over a sorted key list (``bisect``
  plays the role of the balanced tree),
* :class:`ScanIndex` — fallback full scans for arbitrary theta predicates.

Every probe reports the number of *candidates* inspected, which the engine
charges as CPU work; this is how index choice influences simulated
throughput, mirroring the real systems trade-off.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator

from repro.engine.stream import StreamTuple


class JoinIndex:
    """Common interface of the local join indexes."""

    def __init__(self, key_func: Callable[[StreamTuple], Any] | None = None) -> None:
        self._key_func = key_func
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, item: StreamTuple) -> None:
        """Add ``item`` to the index."""
        raise NotImplementedError

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item``; returns True if it was present."""
        raise NotImplementedError

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        """Return ``(candidates, candidates_inspected)`` for an exact key."""
        raise NotImplementedError

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        """Return ``(candidates, candidates_inspected)`` for a key range."""
        raise NotImplementedError

    def items(self) -> Iterator[StreamTuple]:
        """Iterate over every stored tuple."""
        raise NotImplementedError


class HashIndex(JoinIndex):
    """Hash index keyed by an extracted attribute (equi-join probes)."""

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._buckets: dict[Any, list[StreamTuple]] = defaultdict(list)

    def insert(self, item: StreamTuple) -> None:
        self._buckets[self._key_func(item)].append(item)
        self._count += 1

    def remove(self, item: StreamTuple) -> bool:
        bucket = self._buckets.get(self._key_func(item))
        if not bucket:
            return False
        for index, existing in enumerate(bucket):
            if existing.tuple_id == item.tuple_id:
                bucket.pop(index)
                self._count -= 1
                return True
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        candidates = self._buckets.get(key, [])
        return list(candidates), len(candidates)

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        # A hash index cannot serve ranges efficiently; fall back to a scan.
        candidates = [item for item in self.items() if low <= self._key_func(item) <= high]
        return candidates, self._count

    def items(self) -> Iterator[StreamTuple]:
        for bucket in self._buckets.values():
            yield from bucket


class OrderedIndex(JoinIndex):
    """Sorted index supporting range probes (band joins).

    Keys are kept in a sorted list with parallel payload storage; ``bisect``
    provides logarithmic lookups, standing in for the balanced binary tree the
    paper uses.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._keys: list[Any] = []
        self._values: list[StreamTuple] = []

    def insert(self, item: StreamTuple) -> None:
        key = self._key_func(item)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._values.insert(position, item)
        self._count += 1

    def remove(self, item: StreamTuple) -> bool:
        key = self._key_func(item)
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._values[position].tuple_id == item.tuple_id:
                self._keys.pop(position)
                self._values.pop(position)
                self._count -= 1
                return True
            position += 1
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        return self.probe_range(key, key)

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        start = bisect.bisect_left(self._keys, low)
        end = bisect.bisect_right(self._keys, high)
        candidates = self._values[start:end]
        return list(candidates), max(len(candidates), 1)

    def items(self) -> Iterator[StreamTuple]:
        return iter(list(self._values))


class ScanIndex(JoinIndex):
    """Unindexed storage; every probe scans everything (general theta joins)."""

    def __init__(self, key_func: Callable[[StreamTuple], Any] | None = None) -> None:
        super().__init__(key_func)
        self._items: list[StreamTuple] = []

    def insert(self, item: StreamTuple) -> None:
        self._items.append(item)
        self._count += 1

    def remove(self, item: StreamTuple) -> bool:
        for index, existing in enumerate(self._items):
            if existing.tuple_id == item.tuple_id:
                self._items.pop(index)
                self._count -= 1
                return True
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        return list(self._items), len(self._items)

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        return list(self._items), len(self._items)

    def items(self) -> Iterator[StreamTuple]:
        return iter(list(self._items))


def make_index(kind: str, key_func: Callable[[StreamTuple], Any] | None) -> JoinIndex:
    """Build the index matching a predicate ``kind`` (see :mod:`predicates`)."""
    if kind == "equi":
        if key_func is None:
            raise ValueError("equi indexes require a key function")
        return HashIndex(key_func)
    if kind == "band":
        if key_func is None:
            raise ValueError("band indexes require a key function")
        return OrderedIndex(key_func)
    return ScanIndex(key_func)
