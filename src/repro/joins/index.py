"""In-memory join indexes.

The paper's joiners use hashmaps for equi-joins and balanced binary trees for
band joins (§5, "Operators").  This module provides the equivalent structures:

* :class:`HashIndex` — exact-key probes,
* :class:`OrderedIndex` — range probes over a sorted key list (``bisect``
  plays the role of the balanced tree),
* :class:`ScanIndex` — fallback full scans for arbitrary theta predicates.

Every probe reports the number of *candidates* inspected, which the engine
charges as CPU work; this is how index choice influences simulated
throughput, mirroring the real systems trade-off.  Indexes report the **raw**
candidate count (possibly zero); the one-unit work floor per probe is applied
in exactly one place, :meth:`repro.joins.local.LocalJoiner.probe`.

Batch-aware probing: :meth:`probe_batch` serves a whole micro-batch of keys
with one grouped pass (hash) and :meth:`probe_range_batch` sort-merges a
batch of ranges against the ordered key list.  Probe results reference the
stored candidate runs without copying hash buckets; callers must treat the
returned lists as read-only snapshots that are valid until the next
``insert``/``remove``/``bulk_insert`` on the index.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.stream import StreamTuple

#: Shared empty probe result (read-only by convention, like live buckets).
_NO_CANDIDATES: list[StreamTuple] = []


class JoinIndex:
    """Common interface of the local join indexes.

    ``len(index)`` and :attr:`total_size` are maintained counters updated on
    every mutation, so size accounting is O(1) — never a re-scan.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any] | None = None) -> None:
        self._key_func = key_func
        self._count = 0
        self._total_size = 0.0

    def __len__(self) -> int:
        return self._count

    @property
    def total_size(self) -> float:
        """Total stored size units (sum of member ``size``), O(1)."""
        return self._total_size

    def insert(self, item: StreamTuple) -> None:
        """Add ``item`` to the index."""
        raise NotImplementedError

    def bulk_insert(self, items: Iterable[StreamTuple]) -> None:
        """Insert many items at once (amortised faster than repeated insert)."""
        for item in items:
            self.insert(item)

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item``; returns True if it was present."""
        raise NotImplementedError

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        """Return ``(candidates, candidates_inspected)`` for an exact key."""
        raise NotImplementedError

    def probe_batch(self, keys: Sequence[Any]) -> list[tuple[list[StreamTuple], int]]:
        """Exact-key probes for a whole batch; aligned with ``keys``."""
        return [self.probe(key) for key in keys]

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        """Return ``(candidates, candidates_inspected)`` for a key range."""
        raise NotImplementedError

    def probe_range_batch(
        self, ranges: Sequence[tuple[Any, Any]]
    ) -> list[tuple[list[StreamTuple], int]]:
        """Range probes for a whole batch; aligned with ``ranges``."""
        return [self.probe_range(low, high) for low, high in ranges]

    def count_key(self, key: Any) -> int:
        """Number of candidates an exact-key probe would inspect (no copy)."""
        raise NotImplementedError

    def count_range(self, low: Any, high: Any) -> int:
        """Number of candidates a range probe would inspect (no copy)."""
        raise NotImplementedError

    def items(self) -> Iterator[StreamTuple]:
        """Iterate over every stored tuple."""
        raise NotImplementedError


class HashIndex(JoinIndex):
    """Hash index keyed by an extracted attribute (equi-join probes)."""

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._buckets: dict[Any, list[StreamTuple]] = defaultdict(list)

    def insert(self, item: StreamTuple) -> None:
        self._buckets[self._key_func(item)].append(item)
        self._count += 1
        self._total_size += item.size

    def remove(self, item: StreamTuple) -> bool:
        key = self._key_func(item)
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        for index, existing in enumerate(bucket):
            if existing.tuple_id == item.tuple_id:
                bucket.pop(index)
                if not bucket:
                    del self._buckets[key]
                self._count -= 1
                self._total_size -= item.size
                return True
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        # Returns the live bucket (no copy); read-only for callers, valid
        # until the next mutation of this index.
        bucket = self._buckets.get(key)
        if not bucket:
            return _NO_CANDIDATES, 0
        return bucket, len(bucket)

    def probe_batch(self, keys: Sequence[Any]) -> list[tuple[list[StreamTuple], int]]:
        # One bucket lookup per *distinct* key in the batch; repeated keys
        # reuse the memoised bucket reference.
        buckets = self._buckets
        memo: dict[Any, list[StreamTuple]] = {}
        results = []
        for key in keys:
            bucket = memo.get(key)
            if bucket is None:
                bucket = buckets.get(key, _NO_CANDIDATES)
                memo[key] = bucket
            results.append((bucket, len(bucket)))
        return results

    def bucket_for(self, key: Any) -> list[StreamTuple] | None:
        """The live bucket for ``key`` (read-only), or None when empty.

        The zero-copy primitive behind the batch probe engine: callers walk
        the bucket in place instead of receiving a copy.
        """
        return self._buckets.get(key)

    def insert_keyed(self, key: Any, item: StreamTuple) -> None:
        """Insert ``item`` under an already-extracted ``key`` (batch hot path)."""
        self._buckets[key].append(item)
        self._count += 1
        self._total_size += item.size

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        # A hash index cannot serve ranges efficiently; fall back to a scan.
        candidates = [item for item in self.items() if low <= self._key_func(item) <= high]
        return candidates, self._count

    def count_key(self, key: Any) -> int:
        bucket = self._buckets.get(key)
        return len(bucket) if bucket else 0

    def count_range(self, low: Any, high: Any) -> int:
        return self._count

    def items(self) -> Iterator[StreamTuple]:
        for bucket in self._buckets.values():
            yield from bucket


class OrderedIndex(JoinIndex):
    """Sorted index supporting range probes (band joins).

    Keys are kept in a sorted list with parallel payload storage; ``bisect``
    provides logarithmic lookups, standing in for the balanced binary tree the
    paper uses.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._keys: list[Any] = []
        self._values: list[StreamTuple] = []

    def insert(self, item: StreamTuple) -> None:
        key = self._key_func(item)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._values.insert(position, item)
        self._count += 1
        self._total_size += item.size

    def bulk_insert(self, items: Iterable[StreamTuple]) -> None:
        # One sorted merge instead of per-item O(n) list inserts.  Items
        # coming from another OrderedIndex arrive already sorted, making the
        # incoming sort a no-op for timsort.
        incoming = list(items)
        if not incoming:
            return
        key_func = self._key_func
        new_keys = [key_func(item) for item in incoming]
        if any(a > b for a, b in zip(new_keys, new_keys[1:])):
            order = sorted(range(len(incoming)), key=new_keys.__getitem__)
            new_keys = [new_keys[i] for i in order]
            incoming = [incoming[i] for i in order]
        if not self._keys:
            self._keys = new_keys
            self._values = incoming
        else:
            old_keys, old_values = self._keys, self._values
            merged_keys: list[Any] = []
            merged_values: list[StreamTuple] = []
            i = j = 0
            n, m = len(old_keys), len(new_keys)
            while i < n and j < m:
                # Existing entries go first on key ties (bisect_right parity).
                if new_keys[j] < old_keys[i]:
                    merged_keys.append(new_keys[j])
                    merged_values.append(incoming[j])
                    j += 1
                else:
                    merged_keys.append(old_keys[i])
                    merged_values.append(old_values[i])
                    i += 1
            merged_keys.extend(old_keys[i:])
            merged_values.extend(old_values[i:])
            merged_keys.extend(new_keys[j:])
            merged_values.extend(incoming[j:])
            self._keys, self._values = merged_keys, merged_values
        self._count += len(incoming)
        self._total_size += sum(item.size for item in incoming)

    def remove(self, item: StreamTuple) -> bool:
        key = self._key_func(item)
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._values[position].tuple_id == item.tuple_id:
                self._keys.pop(position)
                self._values.pop(position)
                self._count -= 1
                self._total_size -= item.size
                return True
            position += 1
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        return self.probe_range(key, key)

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        start = bisect.bisect_left(self._keys, low)
        end = bisect.bisect_right(self._keys, high)
        candidates = self._values[start:end]
        return candidates, end - start

    def probe_range_batch(
        self, ranges: Sequence[tuple[Any, Any]]
    ) -> list[tuple[list[StreamTuple], int]]:
        # Sort-merge: probing ranges in ascending-low order lets both cursors
        # advance monotonically over the key list — each bisect searches only
        # past the previous range's start (the ordered-index analogue of
        # grouping a batch by hash key).
        if len(ranges) <= 1:
            return [self.probe_range(low, high) for low, high in ranges]
        order = sorted(range(len(ranges)), key=lambda i: ranges[i][0])
        keys, values = self._keys, self._values
        results: list[tuple[list[StreamTuple], int] | None] = [None] * len(ranges)
        start = 0
        for index in order:
            low, high = ranges[index]
            start = bisect.bisect_left(keys, low, lo=start)
            end = bisect.bisect_right(keys, high, lo=start)
            results[index] = (values[start:end], end - start)
        return results  # type: ignore[return-value]

    def count_key(self, key: Any) -> int:
        return self.count_range(key, key)

    def count_range(self, low: Any, high: Any) -> int:
        return bisect.bisect_right(self._keys, high) - bisect.bisect_left(self._keys, low)

    def items(self) -> Iterator[StreamTuple]:
        return iter(list(self._values))


class ScanIndex(JoinIndex):
    """Unindexed storage; every probe scans everything (general theta joins)."""

    def __init__(self, key_func: Callable[[StreamTuple], Any] | None = None) -> None:
        super().__init__(key_func)
        self._items: list[StreamTuple] = []

    def insert(self, item: StreamTuple) -> None:
        self._items.append(item)
        self._count += 1
        self._total_size += item.size

    def bulk_insert(self, items: Iterable[StreamTuple]) -> None:
        incoming = list(items)
        self._items.extend(incoming)
        self._count += len(incoming)
        self._total_size += sum(item.size for item in incoming)

    def remove(self, item: StreamTuple) -> bool:
        for index, existing in enumerate(self._items):
            if existing.tuple_id == item.tuple_id:
                self._items.pop(index)
                self._count -= 1
                self._total_size -= item.size
                return True
        return False

    def probe(self, key: Any) -> tuple[list[StreamTuple], int]:
        # Live storage list (no copy); read-only for callers.
        return self._items, self._count

    def probe_range(self, low: Any, high: Any) -> tuple[list[StreamTuple], int]:
        return self._items, self._count

    def count_key(self, key: Any) -> int:
        return self._count

    def count_range(self, low: Any, high: Any) -> int:
        return self._count

    def items(self) -> Iterator[StreamTuple]:
        return iter(list(self._items))


def make_index(kind: str, key_func: Callable[[StreamTuple], Any] | None) -> JoinIndex:
    """Build the index matching a predicate ``kind`` (see :mod:`predicates`)."""
    if kind == "equi":
        if key_func is None:
            raise ValueError("equi indexes require a key function")
        return HashIndex(key_func)
    if kind == "band":
        if key_func is None:
            raise ValueError("band indexes require a key function")
        return OrderedIndex(key_func)
    return ScanIndex(key_func)


# --------------------------------------------------------------------------
# Columnar index variants (probe_engine="columnar").
#
# Each subclass keeps the parent's Python-object structures fully
# authoritative — every inherited probe/count/remove/iterate path stays valid,
# which is what the epoch protocol's keyed per-tuple probes run on — and
# additionally maintains NumPy columns (arrival times, tuple ids, and for
# ordered indexes an exact float64 mirror of the sorted key list) that the
# set-at-a-time kernels in ``repro.joins.columnar`` slice instead of walking
# candidate lists.
#
# Two maintenance disciplines, both chosen so the *insert* hot path pays
# (almost) nothing:
#
# * hash buckets and scan stores are append-only, so their columns are built
#   **lazily at probe time**: ``cols_for``/``cols`` extend the cached columns
#   from the candidate list's unconverted tail in one bulk ``np.fromiter``.
#   Only probed buckets ever pay for conversion, and the column buffers hand
#   out stable zero-copy snapshots (appends never shift).
# * the ordered (band) index keeps an **immutable mirror**: four parallel
#   arrays replaced wholesale by ``sync()`` — one batched ``np.searchsorted``
#   + ``np.insert`` merge of the keys inserted since the last sync.  Because
#   the old arrays are never mutated, window slices handed out between syncs
#   are stable zero-copy snapshots too.
#
# Mirrors are maintained *exactly or not at all*: the moment a key is not
# exactly float64-representable (``float(key) != key``) the mirror is dropped
# and the kernels fall back to the per-member bisect paths on the
# authoritative Python lists — never to an approximate cut.
# --------------------------------------------------------------------------

from repro.engine.columns import HAS_NUMPY, Column, np  # noqa: E402

if HAS_NUMPY:
    _EMPTY_F64 = np.empty(0, dtype=np.float64)
    _EMPTY_I64 = np.empty(0, dtype=np.int64)
else:  # pragma: no cover - columnar indexes are unreachable without numpy
    _EMPTY_F64 = None
    _EMPTY_I64 = None


class ColumnarHashIndex(HashIndex):
    """Hash index with lazily-built per-bucket arrival/tuple-id columns.

    Buckets stay plain append-only lists maintained by the parent (inserts
    cost exactly what the vectorized engine pays).  The first exact-key probe
    of a bucket converts it to a pair of parallel columns in one bulk pass;
    later probes only convert the appended tail.  Column snapshots are
    zero-copy and stable, so the equi fast path hands the whole candidate run
    to the emission kernel without materialising per-pair tuples.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._cols: dict[Any, tuple[Column, Column]] = {}

    def remove(self, item: StreamTuple) -> bool:
        removed = super().remove(item)
        if removed:
            # Cold path: forget the bucket's columns; the next probe rebuilds
            # them from the remaining members.  Snapshots handed out earlier
            # keep referencing the old buffers.
            self._cols.pop(self._key_func(item), None)
        return removed

    def cols_for(self, key: Any, bucket: list[StreamTuple]) -> tuple[Column, Column]:
        """The (arrivals, tuple_ids) columns of ``key``'s bucket, synced.

        ``bucket`` must be the index's own (non-empty) bucket for ``key``.
        """
        cols = self._cols.get(key)
        if cols is None:
            capacity = max(8, len(bucket))
            cols = self._cols[key] = (
                Column(np.float64, capacity),
                Column(np.int64, capacity),
            )
        built = cols[0].n
        missing = len(bucket) - built
        if missing:
            tail = bucket[built:] if built else bucket
            cols[0].extend(
                np.fromiter((member.arrival_time for member in tail), np.float64,
                            count=missing)
            )
            cols[1].extend(
                np.fromiter((member.tuple_id for member in tail), np.int64,
                            count=missing)
            )
        return cols


class ColumnarOrderedIndex(OrderedIndex):
    """Ordered index with an immutable, exactly-synced float64 key mirror.

    Four parallel arrays shadow the sorted ``_keys``/``_values`` lists as a
    *multiset* (tie order may differ — band windows cut by key, so entries
    with equal keys fall in or out of a window together): the float64 keys,
    the member arrival times and tuple ids, and each member's position in the
    append-only ``_log`` (recovering the :class:`StreamTuple` for residual
    validation without a parallel object mirror).  ``sync()`` merges the
    inserts since the last call with one batched searchsorted + ``np.insert``
    per array and *replaces* the arrays, so previously handed-out window
    slices stay stable zero-copy snapshots.

    The mirror is exact or absent: a key that is not exactly float64-
    representable permanently drops it (``columnar_ok`` False) until a bulk
    rebuild proves the key list exact again.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any]) -> None:
        super().__init__(key_func)
        self._log: list[StreamTuple] = []
        self._mkeys = _EMPTY_F64
        self._marrivals = _EMPTY_F64
        self._mids = _EMPTY_I64
        self._mpositions = _EMPTY_I64
        #: (float64 key, item, log position) per insert since the last sync.
        self._delta: list[tuple[float, StreamTuple, int]] = []
        self._rebuild_needed = False
        self.columnar_ok = True
        #: True while every stored key is a Python float — precondition for
        #: validating band windows by vectorised key arithmetic (float keys
        #: make the NumPy mask and the Python predicate the same float64 ops).
        self.all_float_keys = True

    def _disable(self) -> None:
        self.columnar_ok = False
        self._delta.clear()
        self._log.clear()
        self._mkeys = _EMPTY_F64
        self._marrivals = _EMPTY_F64
        self._mids = _EMPTY_I64
        self._mpositions = _EMPTY_I64

    def insert(self, item: StreamTuple) -> None:
        # Parent insert inlined so the key is extracted once.
        key = self._key_func(item)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._values.insert(position, item)
        self._count += 1
        self._total_size += item.size
        if not self.columnar_ok:
            return
        if type(key) is float:
            fkey = key
        else:
            self.all_float_keys = False
            try:
                fkey = float(key)
            except (TypeError, ValueError):
                self._disable()
                return
            if fkey != key:
                self._disable()
                return
        self._delta.append((fkey, item, len(self._log)))
        self._log.append(item)

    def bulk_insert(self, items: Iterable[StreamTuple]) -> None:
        super().bulk_insert(items)
        self._rebuild_needed = True

    def remove(self, item: StreamTuple) -> bool:
        removed = super().remove(item)
        if removed:
            self._rebuild_needed = True
        return removed

    def sync(self) -> bool:
        """Bring the mirror up to date; True when it is usable (exact)."""
        if self._rebuild_needed:
            return self._rebuild()
        if not self.columnar_ok:
            return False
        delta = self._delta
        if delta:
            count = len(delta)
            if count > 1:
                delta.sort(key=_delta_key)
            dkeys = np.fromiter((entry[0] for entry in delta), np.float64, count)
            darrivals = np.fromiter(
                (entry[1].arrival_time for entry in delta), np.float64, count
            )
            dids = np.fromiter((entry[1].tuple_id for entry in delta), np.int64, count)
            dpositions = np.fromiter((entry[2] for entry in delta), np.int64, count)
            slots = np.searchsorted(self._mkeys, dkeys, side="right")
            self._mkeys = np.insert(self._mkeys, slots, dkeys)
            self._marrivals = np.insert(self._marrivals, slots, darrivals)
            self._mids = np.insert(self._mids, slots, dids)
            self._mpositions = np.insert(self._mpositions, slots, dpositions)
            delta.clear()
        return True

    def _rebuild(self) -> bool:
        """Full mirror rebuild from the authoritative lists (bulk edits)."""
        self._rebuild_needed = False
        self._delta.clear()
        keys = self._keys
        try:
            mkeys = np.array(keys, dtype=np.float64)
        except (TypeError, ValueError):
            self._disable()
            return False
        if mkeys.tolist() != keys:
            self._disable()
            return False
        count = len(keys)
        values = self._values
        self.columnar_ok = True
        self.all_float_keys = all(type(key) is float for key in keys)
        self._mkeys = mkeys
        self._marrivals = np.fromiter(
            (value.arrival_time for value in values), np.float64, count
        )
        self._mids = np.fromiter((value.tuple_id for value in values), np.int64, count)
        self._log = list(values)
        self._mpositions = np.arange(count, dtype=np.int64)
        return True

    def window_cuts(self, lows: list, highs: list):
        """Batched ``np.searchsorted`` range cuts over the synced mirror.

        Returns ``(lo_indices, hi_indices)`` as Python int lists — identical
        to per-member ``bisect_left``/``bisect_right`` against the mirrored
        keys — or ``None`` when a bound is not exactly float64-representable,
        in which case the caller bisects the authoritative lists per member.
        """
        try:
            low_arr = np.array(lows, dtype=np.float64)
            high_arr = np.array(highs, dtype=np.float64)
        except (TypeError, ValueError):
            return None
        if low_arr.tolist() != lows or high_arr.tolist() != highs:
            return None
        mkeys = self._mkeys
        return (
            np.searchsorted(mkeys, low_arr, side="left").tolist(),
            np.searchsorted(mkeys, high_arr, side="right").tolist(),
        )


def _delta_key(entry):
    return entry[0]


class ColumnarScanIndex(ScanIndex):
    """Scan store with lazily-built arrival/tuple-id columns.

    The storage list is one append-only candidate run, so the columns are a
    prefix conversion of it: ``cols()`` extends them from the unconverted
    tail and hands out stable zero-copy snapshots, exactly like a hash
    bucket's columns.
    """

    def __init__(self, key_func: Callable[[StreamTuple], Any] | None = None) -> None:
        super().__init__(key_func)
        self._acol = Column(np.float64)
        self._icol = Column(np.int64)

    def remove(self, item: StreamTuple) -> bool:
        removed = super().remove(item)
        if removed:
            # Cold path: restart the lazy prefix conversion from scratch.
            self._acol = Column(np.float64, max(8, self._count))
            self._icol = Column(np.int64, max(8, self._count))
        return removed

    def cols(self):
        """The (arrivals, tuple_ids) snapshot views over the full store."""
        items = self._items
        acol = self._acol
        built = acol.n
        missing = len(items) - built
        if missing:
            tail = items[built:] if built else items
            acol.extend(
                np.fromiter((member.arrival_time for member in tail), np.float64,
                            count=missing)
            )
            self._icol.extend(
                np.fromiter((member.tuple_id for member in tail), np.int64,
                            count=missing)
            )
        return acol.view(), self._icol.view()


def make_columnar_index(
    kind: str, key_func: Callable[[StreamTuple], Any] | None
) -> JoinIndex:
    """Build the columnar index matching a predicate ``kind``.

    Requires NumPy (the caller — ``LocalJoiner``/``RunConfig`` — raises the
    eager, choice-listing error before this is reached without it).
    """
    if not HAS_NUMPY:  # pragma: no cover - guarded upstream
        raise RuntimeError("columnar indexes require NumPy")
    if kind == "equi":
        if key_func is None:
            raise ValueError("equi indexes require a key function")
        return ColumnarHashIndex(key_func)
    if kind == "band":
        if key_func is None:
            raise ValueError("band indexes require a key function")
        return ColumnarOrderedIndex(key_func)
    return ColumnarScanIndex(key_func)
