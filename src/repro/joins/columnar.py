"""The columnar probe engine: NumPy set-at-a-time probe kernels.

``probe_engine="columnar"`` pairs the array-mirrored indexes of
:mod:`repro.joins.index` (:class:`~repro.joins.index.ColumnarHashIndex`,
:class:`~repro.joins.index.ColumnarOrderedIndex`,
:class:`~repro.joins.index.ColumnarScanIndex` — wired in through
``ProbeEngine.index_factory``) with batch kernels that replace the vectorized
engine's per-candidate Python loops:

* **equi** — the exact-key bucket *is* the match set, handed out as a
  zero-copy :class:`~repro.engine.columns.MatchBlock` over the bucket's
  lazily-built column snapshots (only probed buckets ever pay for array
  conversion); composite residuals become one boolean-mask gather per member
  instead of a list comprehension.
* **band** — one whole-batch pass: both ordered mirrors are synced once (a
  single batched ``np.insert`` merge each), every member's window is cut out
  of the *pre-batch* mirror with one batched ``np.searchsorted`` per side,
  and intra-batch candidates (opposite-relation members earlier in the same
  batch) come from a small kernel-local sorted delta — static counts plus
  delta counts reproduce the live per-member window sizes exactly.  Because
  sync *replaces* the mirror arrays instead of shifting them, static window
  slices are stable zero-copy snapshots.
* **scan (theta)** — boolean-mask validation over the lazily-built scan
  columns.

Every kernel reproduces the scalar oracle bit-for-bit: same match multisets,
same per-member charged work (raw candidate counts floored at 1), same
insertion order.  (Within one member's match set the *order* of matches may
differ from the scalar enumeration — all pairs of a block share one emission
instant and downstream consumers are order-independent.)  Exactness is
*guarded*, never assumed: the ordered index drops its float64 mirror the
moment a key is not exactly representable (``float(x) != x``), batched cuts
refuse non-representable window bounds, and the kernels fall back to the
per-member bisect/list paths of the vectorized engine — identical semantics,
just slower.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from repro.api.registry import register_probe_engine
from repro.engine.columns import MatchBlock, np
from repro.engine.stream import StreamTuple
from repro.joins.index import (
    ColumnarHashIndex,
    ColumnarOrderedIndex,
    ColumnarScanIndex,
    make_columnar_index,
)
from repro.joins.local import LocalJoiner, ProbeEngine
from repro.joins.predicates import BandPredicate


def _equi_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[object, float]]:
    left_relation = joiner.left_relation
    right_relation = joiner.right_relation
    left_key = joiner._pred_left_key
    right_key = joiner._pred_right_key
    left_index: ColumnarHashIndex = joiner._left_index
    right_index: ColumnarHashIndex = joiner._right_index
    check = joiner._check
    bool_ = np.bool_
    results: list[tuple[object, float]] = []
    append = results.append
    for item in items:
        record = item.record
        if item.relation == left_relation:
            is_left = True
            key = left_key(record)
            opposite = right_index
        else:
            if item.relation != right_relation:
                joiner._check_relation(item.relation)
            is_left = False
            key = right_key(record)
            opposite = left_index
        bucket = opposite.bucket_for(key)
        if bucket:
            count = len(bucket)
            if check is None:
                # Exact-key fast path: the bucket is the match set — a
                # zero-copy block over its stable column snapshots.
                arrivals, ids = opposite.cols_for(key, bucket)
                matches = MatchBlock(item, is_left, arrivals.view(), ids.view())
            else:
                if is_left:
                    flags = np.fromiter(
                        (bool(check(record, c.record)) for c in bucket),
                        bool_,
                        count,
                    )
                else:
                    flags = np.fromiter(
                        (bool(check(c.record, record)) for c in bucket),
                        bool_,
                        count,
                    )
                hits = int(flags.sum())
                if hits == 0:
                    matches = []
                elif hits == count:
                    arrivals, ids = opposite.cols_for(key, bucket)
                    matches = MatchBlock(item, is_left, arrivals.view(), ids.view())
                else:
                    arrivals, ids = opposite.cols_for(key, bucket)
                    matches = MatchBlock(
                        item, is_left, arrivals.view()[flags], ids.view()[flags]
                    )
            append((matches, float(count)))
        else:
            append(([], 1.0))
        (left_index if is_left else right_index).insert_keyed(key, item)
    return results


def _band_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[object, float]]:
    left_relation = joiner.left_relation
    right_relation = joiner.right_relation
    left_key = joiner._pred_left_key
    right_key = joiner._pred_right_key
    width = joiner._band_width
    left_index: ColumnarOrderedIndex = joiner._left_index
    right_index: ColumnarOrderedIndex = joiner._right_index
    check = joiner._check
    predicate = joiner.predicate
    # The vectorised key-distance mask replaces per-pair predicate calls only
    # when both are provably the same float64 computation: a pure band
    # predicate (check *is* the key-distance test), an exactly-representable
    # width, float probe key and all-float stored keys.
    mask_eligible = (
        check is not None
        and type(predicate) is BandPredicate
        and float(width) == width
    )
    bool_ = np.bool_
    total = len(items)

    # ---- pass 1: classify sides, extract keys, validate relations ----------
    sides = [False] * total
    keys: list = [None] * total
    seen_left = seen_right = False
    for idx, item in enumerate(items):
        record = item.record
        if item.relation == left_relation:
            sides[idx] = True
            keys[idx] = left_key(record)
            seen_left = True
        else:
            if item.relation != right_relation:
                joiner._check_relation(item.relation)
            keys[idx] = right_key(record)
            seen_right = True

    # ---- sync mirrors + batched pre-batch window cuts per side -------------
    # Left members probe the right index and vice versa.  The mirror is the
    # *pre-batch* snapshot; members inserted during this batch are served
    # from the kernel-local sorted deltas below, so static + delta counts
    # equal the live per-member window sizes of the scalar oracle exactly.
    left_cuts = right_cuts = None
    if seen_left and right_index.sync():
        lows = [keys[i] - width for i in range(total) if sides[i]]
        highs = [keys[i] + width for i in range(total) if sides[i]]
        left_cuts = right_index.window_cuts(lows, highs)
    if seen_right and left_index.sync():
        lows = [keys[i] - width for i in range(total) if not sides[i]]
        highs = [keys[i] + width for i in range(total) if not sides[i]]
        right_cuts = left_index.window_cuts(lows, highs)

    # Kernel-local intra-batch deltas, one per relation: sorted keys plus the
    # parallel items, bisected with the raw window bounds exactly like the
    # authoritative key list.  Maintained here (not read from the index) so
    # they stay correct even if the index mirror disables itself mid-batch.
    left_dkeys: list = []
    left_ditems: list[StreamTuple] = []
    right_dkeys: list = []
    right_ditems: list[StreamTuple] = []

    results: list[tuple[object, float]] = []
    append = results.append
    li = ri = 0
    for idx, item in enumerate(items):
        key = keys[idx]
        is_left = sides[idx]
        if is_left:
            opposite, own = right_index, left_index
            cuts = left_cuts
            cursor = li
            li += 1
            dkeys, ditems = right_dkeys, right_ditems
            own_dkeys, own_ditems = left_dkeys, left_ditems
        else:
            opposite, own = left_index, right_index
            cuts = right_cuts
            cursor = ri
            ri += 1
            dkeys, ditems = left_dkeys, left_ditems
            own_dkeys, own_ditems = right_dkeys, right_ditems
        low = key - width
        high = key + width
        if cuts is None:
            # Fallback: live bisect on the authoritative lists (mirror
            # unavailable or bounds not exactly float64-representable).  The
            # live window already includes intra-batch members.
            opposite_keys = opposite._keys
            lo = bisect_left(opposite_keys, low)
            hi = bisect_right(opposite_keys, high)
            inspected = hi - lo
            if inspected <= 0:
                append(([], 1.0))
            else:
                window = opposite._values[lo:hi]
                record = item.record
                if check is None:
                    matches: object = window
                elif is_left:
                    matches = [c for c in window if check(record, c.record)]
                else:
                    matches = [c for c in window if check(c.record, record)]
                append((matches, float(inspected)))
            own.insert(item)
            insort_pos = bisect_right(own_dkeys, key)
            own_dkeys.insert(insort_pos, key)
            own_ditems.insert(insort_pos, item)
            continue
        lo = cuts[0][cursor]
        hi = cuts[1][cursor]
        static_count = hi - lo
        dlo = bisect_left(dkeys, low)
        dhi = bisect_right(dkeys, high)
        delta_count = dhi - dlo
        inspected = static_count + delta_count
        if inspected <= 0:
            append(([], 1.0))
            own.insert(item)
            insort_pos = bisect_right(own_dkeys, key)
            own_dkeys.insert(insort_pos, key)
            own_ditems.insert(insort_pos, item)
            continue
        record = item.record
        if check is None:
            # Range-complete fast path: the whole window is the match set.
            static_arrivals = opposite._marrivals[lo:hi] if static_count else None
            static_ids = opposite._mids[lo:hi] if static_count else None
            delta_matched = ditems[dlo:dhi] if delta_count else ()
        elif (
            mask_eligible
            and opposite.all_float_keys
            and type(key) is float
        ):
            # Vectorised key-distance validation over the static window.
            if static_count:
                flags = np.abs(opposite._mkeys[lo:hi] - key) <= width
                hits = int(flags.sum())
                if hits == 0:
                    static_arrivals = static_ids = None
                elif hits == static_count:
                    static_arrivals = opposite._marrivals[lo:hi]
                    static_ids = opposite._mids[lo:hi]
                else:
                    static_arrivals = opposite._marrivals[lo:hi][flags]
                    static_ids = opposite._mids[lo:hi][flags]
            else:
                static_arrivals = static_ids = None
            if delta_count:
                if is_left:
                    delta_matched = [
                        c for c in ditems[dlo:dhi] if check(record, c.record)
                    ]
                else:
                    delta_matched = [
                        c for c in ditems[dlo:dhi] if check(c.record, record)
                    ]
            else:
                delta_matched = ()
        else:
            # General residual validation: recover the static window's
            # records through the mirrored log positions.
            if static_count:
                log = opposite._log
                positions = opposite._mpositions[lo:hi].tolist()
                if is_left:
                    flags = np.fromiter(
                        (bool(check(record, log[p].record)) for p in positions),
                        bool_,
                        static_count,
                    )
                else:
                    flags = np.fromiter(
                        (bool(check(log[p].record, record)) for p in positions),
                        bool_,
                        static_count,
                    )
                hits = int(flags.sum())
                if hits == 0:
                    static_arrivals = static_ids = None
                elif hits == static_count:
                    static_arrivals = opposite._marrivals[lo:hi]
                    static_ids = opposite._mids[lo:hi]
                else:
                    static_arrivals = opposite._marrivals[lo:hi][flags]
                    static_ids = opposite._mids[lo:hi][flags]
            else:
                static_arrivals = static_ids = None
            if delta_count:
                if is_left:
                    delta_matched = [
                        c for c in ditems[dlo:dhi] if check(record, c.record)
                    ]
                else:
                    delta_matched = [
                        c for c in ditems[dlo:dhi] if check(c.record, record)
                    ]
            else:
                delta_matched = ()
        if delta_matched:
            dcount = len(delta_matched)
            delta_arrivals = np.fromiter(
                (c.arrival_time for c in delta_matched), np.float64, dcount
            )
            delta_ids = np.fromiter(
                (c.tuple_id for c in delta_matched), np.int64, dcount
            )
            if static_arrivals is None:
                matches = MatchBlock(item, is_left, delta_arrivals, delta_ids)
            else:
                matches = MatchBlock(
                    item,
                    is_left,
                    np.concatenate((static_arrivals, delta_arrivals)),
                    np.concatenate((static_ids, delta_ids)),
                )
        elif static_arrivals is not None:
            # Sync replaces (never shifts) the mirror arrays — zero-copy.
            matches = MatchBlock(item, is_left, static_arrivals, static_ids)
        else:
            matches = []
        append((matches, float(inspected)))
        own.insert(item)
        insort_pos = bisect_right(own_dkeys, key)
        own_dkeys.insert(insort_pos, key)
        own_ditems.insert(insort_pos, item)
    return results


def _scan_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[object, float]]:
    left_relation = joiner.left_relation
    right_relation = joiner.right_relation
    left_index: ColumnarScanIndex = joiner._left_index
    right_index: ColumnarScanIndex = joiner._right_index
    check = joiner._check
    bool_ = np.bool_
    results: list[tuple[object, float]] = []
    append = results.append
    for item in items:
        record = item.record
        if item.relation == left_relation:
            is_left = True
            opposite = right_index
        else:
            if item.relation != right_relation:
                joiner._check_relation(item.relation)
            is_left = False
            opposite = left_index
        candidates = opposite._items
        inspected = len(candidates)
        if inspected:
            if is_left:
                flags = np.fromiter(
                    (bool(check(record, c.record)) for c in candidates),
                    bool_,
                    inspected,
                )
            else:
                flags = np.fromiter(
                    (bool(check(c.record, record)) for c in candidates),
                    bool_,
                    inspected,
                )
            hits = int(flags.sum())
            if hits == 0:
                matches = []
            else:
                # Scan columns are lazy prefix conversions of the append-only
                # store: zero-copy stable snapshots.
                arrivals, ids = opposite.cols()
                if hits == inspected:
                    matches = MatchBlock(item, is_left, arrivals, ids)
                else:
                    matches = MatchBlock(
                        item, is_left, arrivals[flags], ids[flags]
                    )
            append((matches, float(inspected)))
        else:
            append(([], 1.0))
        (left_index if is_left else right_index).insert(item)
    return results


def _columnar_probe_batch(
    joiner: LocalJoiner, items: Sequence[StreamTuple]
) -> list[tuple[object, float]]:
    """Set-at-a-time pass over the live columnar indexes, by predicate kind."""
    kind = joiner.predicate.kind
    if kind == "equi":
        return _equi_probe_batch(joiner, items)
    if kind == "band":
        return _band_probe_batch(joiner, items)
    return _scan_probe_batch(joiner, items)


# Registered unconditionally so "columnar" shows up in the choice lists even
# without NumPy; LocalJoiner/RunConfig raise the eager NUMPY_HINT error when
# it is *selected* without the extra installed.
register_probe_engine(
    "columnar",
    ProbeEngine(
        name="columnar",
        batch_aware=True,
        exact_key_fast_path=True,
        probe_batch=_columnar_probe_batch,
        index_factory=make_columnar_index,
        requires="numpy",
        bulk_commit=True,
    ),
)
