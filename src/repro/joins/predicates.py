"""Join predicates.

The join-matrix model (§3.1) represents *any* join condition: a matrix cell
``M(i, j)`` is true iff tuples ``r_i`` and ``s_j`` satisfy the predicate.  The
operator itself is content-insensitive and never inspects predicates for
routing; predicates only matter to the *local* join algorithm running inside
each joiner, which can exploit their structure (hash probes for equi-joins,
range probes for band joins, scans for general theta conditions).

A predicate therefore exposes three things:

* ``matches(left, right)`` — the truth value of the condition,
* ``kind`` — ``"equi"``, ``"band"`` or ``"theta"``, advertising which index
  type can serve it,
* key extractors for the indexed kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

Record = dict[str, Any]


class JoinPredicate:
    """Base class for join predicates over record pairs."""

    #: one of "equi", "band", "theta"
    kind: str = "theta"

    def matches(self, left: Record, right: Record) -> bool:
        """Whether the pair ``(left, right)`` satisfies the join condition."""
        raise NotImplementedError

    def left_key(self, left: Record) -> Any:
        """Key extracted from a left-relation record (indexed kinds only)."""
        raise NotImplementedError

    def right_key(self, right: Record) -> Any:
        """Key extracted from a right-relation record (indexed kinds only)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


@dataclass
class EquiPredicate(JoinPredicate):
    """Equality predicate ``left[left_attr] == right[right_attr]``."""

    left_attr: str
    right_attr: str
    kind: str = field(default="equi", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return left[self.left_attr] == right[self.right_attr]

    def left_key(self, left: Record) -> Any:
        return left[self.left_attr]

    def right_key(self, right: Record) -> Any:
        return right[self.right_attr]

    def describe(self) -> str:
        return f"{self.left_attr} = {self.right_attr}"


@dataclass
class BandPredicate(JoinPredicate):
    """Band predicate ``|left[left_attr] - right[right_attr]| <= width``."""

    left_attr: str
    right_attr: str
    width: float = 1.0
    kind: str = field(default="band", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return abs(left[self.left_attr] - right[self.right_attr]) <= self.width

    def left_key(self, left: Record) -> Any:
        return left[self.left_attr]

    def right_key(self, right: Record) -> Any:
        return right[self.right_attr]

    def describe(self) -> str:
        return f"|{self.left_attr} - {self.right_attr}| <= {self.width}"


@dataclass
class ThetaPredicate(JoinPredicate):
    """Arbitrary theta predicate given by a callable ``(left, right) -> bool``."""

    condition: Callable[[Record, Record], bool]
    name: str = "theta"
    kind: str = field(default="theta", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return bool(self.condition(left, right))

    def describe(self) -> str:
        return self.name


@dataclass
class NotEqualPredicate(JoinPredicate):
    """The inequality predicate used in the paper's Fig. 1a example."""

    left_attr: str
    right_attr: str
    kind: str = field(default="theta", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return left[self.left_attr] != right[self.right_attr]

    def describe(self) -> str:
        return f"{self.left_attr} != {self.right_attr}"


@dataclass
class CompositePredicate(JoinPredicate):
    """Conjunction of a *primary* (indexable) predicate and residual conditions.

    The evaluation queries of §5 combine an equi or band condition with extra
    per-pair filters (e.g. ``L1.shipmode = 'TRUCK' AND L2.shipmode != 'TRUCK'``).
    The primary predicate drives index selection; the residual conditions are
    applied to every candidate pair the index produces.
    """

    primary: JoinPredicate
    residuals: Sequence[Callable[[Record, Record], bool]] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        self.kind = self.primary.kind

    def matches(self, left: Record, right: Record) -> bool:
        if not self.primary.matches(left, right):
            return False
        return all(residual(left, right) for residual in self.residuals)

    def left_key(self, left: Record) -> Any:
        return self.primary.left_key(left)

    def right_key(self, right: Record) -> Any:
        return self.primary.right_key(right)

    def describe(self) -> str:
        if self.name:
            return self.name
        extra = f" AND {len(self.residuals)} residual(s)" if self.residuals else ""
        return self.primary.describe() + extra


def cross_join_reference(
    left_records: Sequence[Record],
    right_records: Sequence[Record],
    predicate: JoinPredicate,
) -> list[tuple[int, int]]:
    """Reference nested-loop evaluation over record *indexes*.

    Used by tests to verify that every operator produces exactly the matching
    pairs (result completeness, Definition 4.4) regardless of partitioning,
    arrival order or migrations.
    """
    matches = []
    for left_index, left in enumerate(left_records):
        for right_index, right in enumerate(right_records):
            if predicate.matches(left, right):
                matches.append((left_index, right_index))
    return matches
