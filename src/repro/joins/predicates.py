"""Join predicates.

The join-matrix model (§3.1) represents *any* join condition: a matrix cell
``M(i, j)`` is true iff tuples ``r_i`` and ``s_j`` satisfy the predicate.  The
operator itself is content-insensitive and never inspects predicates for
routing; predicates only matter to the *local* join algorithm running inside
each joiner, which can exploit their structure (hash probes for equi-joins,
range probes for band joins, scans for general theta conditions).

A predicate therefore exposes three things:

* ``matches(left, right)`` — the truth value of the condition,
* ``kind`` — ``"equi"``, ``"band"`` or ``"theta"``, advertising which index
  type can serve it,
* key extractors for the indexed kinds,
* ``exact_key`` / ``residual_matches`` — whether an exact-key hash probe
  already decides the primary condition, and the residual part (if any) that
  still has to run per candidate pair.  The probe engine uses this to skip
  re-validating equality for hash candidates (the bucket key *is* the
  predicate) while still applying composite residual filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

Record = dict[str, Any]


class JoinPredicate:
    """Base class for join predicates over record pairs."""

    #: one of "equi", "band", "theta"
    kind: str = "theta"

    #: Whether an ordered-index range probe ``[key - width, key + width]``
    #: fully decides the primary condition, so range candidates need no
    #: per-pair re-validation (the range analogue of :attr:`exact_key`).
    #: False by default: float band edges are not exactly decidable from
    #: bisect bounds.  Integer-keyed / tolerance-safe band predicates opt in
    #: (see :class:`BandPredicate`).
    range_complete: bool = False

    @property
    def exact_key(self) -> bool:
        """Whether an exact-key hash probe fully decides the primary condition.

        When True, every candidate returned from the matching hash bucket is
        guaranteed to satisfy the primary predicate (key equality *is* bucket
        membership), so only :meth:`residual_matches` needs to run per pair.
        """
        return False

    @property
    def has_residual(self) -> bool:
        """Whether :meth:`residual_matches` is non-trivial for this predicate."""
        return True

    def residual_matches(self, left: Record, right: Record) -> bool:
        """The part of the condition an exact-key probe does *not* guarantee.

        Defaults to the full condition; exact-key predicates override it with
        their residual-only check (or a constant True).
        """
        return self.matches(left, right)

    def residual_check(self) -> Callable[[Record, Record], bool] | None:
        """The leanest per-candidate check for exact-key index candidates.

        Returns ``None`` when bucket membership alone decides the predicate
        (no per-pair work at all), otherwise a callable evaluating just the
        residual part.  Resolved once per joiner at construction, not per
        probe.
        """
        if not self.has_residual:
            return None
        return self.residual_matches

    def matches(self, left: Record, right: Record) -> bool:
        """Whether the pair ``(left, right)`` satisfies the join condition."""
        raise NotImplementedError

    def left_key(self, left: Record) -> Any:
        """Key extracted from a left-relation record (indexed kinds only)."""
        raise NotImplementedError

    def right_key(self, right: Record) -> Any:
        """Key extracted from a right-relation record (indexed kinds only)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


@dataclass
class EquiPredicate(JoinPredicate):
    """Equality predicate ``left[left_attr] == right[right_attr]``."""

    left_attr: str
    right_attr: str
    kind: str = field(default="equi", init=False)

    @property
    def exact_key(self) -> bool:
        return True

    @property
    def has_residual(self) -> bool:
        return False

    def residual_matches(self, left: Record, right: Record) -> bool:
        return True

    def matches(self, left: Record, right: Record) -> bool:
        return left[self.left_attr] == right[self.right_attr]

    def left_key(self, left: Record) -> Any:
        return left[self.left_attr]

    def right_key(self, right: Record) -> Any:
        return right[self.right_attr]

    def describe(self) -> str:
        return f"{self.left_attr} = {self.right_attr}"


@dataclass
class BandPredicate(JoinPredicate):
    """Band predicate ``|left[left_attr] - right[right_attr]| <= width``.

    ``range_complete=True`` advertises that the ordered-index window
    ``[key - width, key + width]`` *exactly* decides the condition, letting
    the vectorized probe engine skip per-candidate re-validation (the band
    analogue of the equi exact-key fast path).  That holds when window
    membership and ``|l - r| <= width`` can never disagree under float
    arithmetic — e.g. integer keys with an integer width (exact in floats up
    to 2**53), or keys quantised coarsely enough that width-edge rounding
    cannot flip a comparison.  It is an *assertion by the caller* about the
    data; with arbitrary float keys leave it False (the default), where every
    candidate is re-validated.
    """

    left_attr: str
    right_attr: str
    width: float = 1.0
    range_complete: bool = False
    kind: str = field(default="band", init=False)

    @property
    def has_residual(self) -> bool:
        return not self.range_complete

    def residual_matches(self, left: Record, right: Record) -> bool:
        if self.range_complete:
            return True
        return self.matches(left, right)

    def matches(self, left: Record, right: Record) -> bool:
        return abs(left[self.left_attr] - right[self.right_attr]) <= self.width

    def left_key(self, left: Record) -> Any:
        return left[self.left_attr]

    def right_key(self, right: Record) -> Any:
        return right[self.right_attr]

    def describe(self) -> str:
        return f"|{self.left_attr} - {self.right_attr}| <= {self.width}"


@dataclass
class ThetaPredicate(JoinPredicate):
    """Arbitrary theta predicate given by a callable ``(left, right) -> bool``."""

    condition: Callable[[Record, Record], bool]
    name: str = "theta"
    kind: str = field(default="theta", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return bool(self.condition(left, right))

    def describe(self) -> str:
        return self.name


@dataclass
class NotEqualPredicate(JoinPredicate):
    """The inequality predicate used in the paper's Fig. 1a example."""

    left_attr: str
    right_attr: str
    kind: str = field(default="theta", init=False)

    def matches(self, left: Record, right: Record) -> bool:
        return left[self.left_attr] != right[self.right_attr]

    def describe(self) -> str:
        return f"{self.left_attr} != {self.right_attr}"


@dataclass
class CompositePredicate(JoinPredicate):
    """Conjunction of a *primary* (indexable) predicate and residual conditions.

    The evaluation queries of §5 combine an equi or band condition with extra
    per-pair filters (e.g. ``L1.shipmode = 'TRUCK' AND L2.shipmode != 'TRUCK'``).
    The primary predicate drives index selection; the residual conditions are
    applied to every candidate pair the index produces.
    """

    primary: JoinPredicate
    residuals: Sequence[Callable[[Record, Record], bool]] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        self.kind = self.primary.kind
        self.range_complete = self.primary.range_complete

    @property
    def exact_key(self) -> bool:
        return self.primary.exact_key

    @property
    def has_residual(self) -> bool:
        return bool(self.residuals) or self.primary.has_residual

    def residual_matches(self, left: Record, right: Record) -> bool:
        if self.primary.has_residual and not self.primary.residual_matches(left, right):
            return False
        for residual in self.residuals:
            if not residual(left, right):
                return False
        return True

    def residual_check(self) -> Callable[[Record, Record], bool] | None:
        if self.primary.has_residual:
            return self.residual_matches
        residuals = tuple(self.residuals)
        if not residuals:
            return None
        if len(residuals) == 1:
            return residuals[0]

        def check(left: Record, right: Record) -> bool:
            for residual in residuals:
                if not residual(left, right):
                    return False
            return True

        return check

    def matches(self, left: Record, right: Record) -> bool:
        if not self.primary.matches(left, right):
            return False
        for residual in self.residuals:
            if not residual(left, right):
                return False
        return True

    def left_key(self, left: Record) -> Any:
        return self.primary.left_key(left)

    def right_key(self, right: Record) -> Any:
        return self.primary.right_key(right)

    def describe(self) -> str:
        if self.name:
            return self.name
        extra = f" AND {len(self.residuals)} residual(s)" if self.residuals else ""
        return self.primary.describe() + extra


def cross_join_reference(
    left_records: Sequence[Record],
    right_records: Sequence[Record],
    predicate: JoinPredicate,
) -> list[tuple[int, int]]:
    """Reference nested-loop evaluation over record *indexes*.

    Used by tests to verify that every operator produces exactly the matching
    pairs (result completeness, Definition 4.4) regardless of partitioning,
    arrival order or migrations.
    """
    matches = []
    for left_index, left in enumerate(left_records):
        for right_index, right in enumerate(right_records):
            if predicate.matches(left, right):
                matches.append((left_index, right_index))
    return matches
