"""Block ripple join with running aggregate estimation.

Ripple joins (Haas & Hellerstein) generalise nested-loop and hash joins to an
online setting that produces early results and running estimates of aggregate
answers with confidence intervals.  The paper cites them as one of the local
non-blocking algorithms a joiner may adopt; this module provides a block
ripple join usable both as a local joiner flavour and standalone for online
aggregation examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.stream import StreamTuple
from repro.joins.local import LocalJoiner
from repro.joins.predicates import JoinPredicate


@dataclass
class RunningEstimate:
    """A running estimate of the total join cardinality.

    Attributes:
        estimate: scaled estimate of ``|R ⋈ S|`` over the full relations.
        half_width: half-width of the (approximate) 95% confidence interval.
        sampled_left: number of left tuples seen so far.
        sampled_right: number of right tuples seen so far.
        matches: number of matches among sampled tuples.
    """

    estimate: float
    half_width: float
    sampled_left: int
    sampled_right: int
    matches: int

    @property
    def low(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def high(self) -> float:
        return self.estimate + self.half_width


class RippleJoiner(LocalJoiner):
    """Block ripple join: alternates block intake between relations.

    In addition to producing join results exactly like any other local
    joiner, it maintains enough statistics to report a running estimate of the
    total join size, scaled to full-relation cardinalities provided by the
    caller (online aggregation, §2 "Online Join Algorithms").
    """

    def __init__(
        self,
        predicate: JoinPredicate,
        left_relation: str,
        right_relation: str,
        block_size: int = 16,
        engine: str = "vectorized",
    ) -> None:
        super().__init__(predicate, left_relation, right_relation, engine=engine)
        self.block_size = block_size
        self._matches_seen = 0
        self._pairs_examined = 0

    def probe(self, item: StreamTuple, restrict=None):
        matches, work = super().probe(item, restrict)
        opposite_count = self.count(self.opposite(item.relation))
        self._matches_seen += len(matches)
        self._pairs_examined += opposite_count
        return matches, work

    def probe_batch(self, items):
        # Route through probe() per member so the selectivity sample
        # (_matches_seen/_pairs_examined) keeps accumulating; the base
        # class's vectorized paths probe the indexes directly and would
        # silently skip the running-estimate counters.
        results = []
        for item in items:
            results.append(self.probe(item))
            self.insert(item)
        return results

    def fresh(self) -> "RippleJoiner":
        return type(self)(
            self.predicate,
            self.left_relation,
            self.right_relation,
            block_size=self.block_size,
            engine=self.engine,
        )

    def running_estimate(
        self, total_left: int, total_right: int
    ) -> RunningEstimate:
        """Estimate the full-join cardinality from the sample seen so far.

        Args:
            total_left: (known or estimated) total cardinality of the left
                relation.
            total_right: total cardinality of the right relation.
        """
        sampled_left = self.count(self.left_relation)
        sampled_right = self.count(self.right_relation)
        examined = max(self._pairs_examined, 1)
        selectivity = self._matches_seen / examined
        estimate = selectivity * total_left * total_right
        # Binomial-style approximate confidence half width on the selectivity,
        # scaled to the full cross-product size.
        variance = selectivity * (1.0 - selectivity) / examined
        half_width = 1.96 * math.sqrt(max(variance, 0.0)) * total_left * total_right
        return RunningEstimate(
            estimate=estimate,
            half_width=half_width,
            sampled_left=sampled_left,
            sampled_right=sampled_right,
            matches=self._matches_seen,
        )
