"""Differential-testing helpers for operator runs.

The repository leans on differential testing throughout: the scalar probe
engine is the oracle for the vectorized one, and the per-tuple data plane is
the oracle for the adaptive one.  :func:`assert_run_equivalent` is the shared
assertion those suites (and third-party backends registered through
:mod:`repro.api`) compare :class:`~repro.core.results.RunResult`\\ s with.
"""

from __future__ import annotations


def assert_run_equivalent(
    result_a, result_b, *, timing=True, network=True, events=False, label=""
):
    """Assert two :class:`~repro.core.results.RunResult`\\ s are equivalent.

    The baseline comparison (always on) pins the *semantics*: join output (as
    sorted tuple-id pairs, when collected), output count, the migration
    sequence (epochs and mappings) and the final mapping.

    ``timing=True`` additionally pins exact virtual-time and work accounting:
    execution time, average latency, per-machine busy chains, charged probe
    work, peak ILF, the spill flag and the migration decision/completion
    times.  Use it when the two runs are meant to be *bit-identical*
    simulations (probe-engine pairs at one batch size, adaptive vs per-tuple
    plane); drop it when only the results must agree (fixed-plane runs across
    batch sizes, where virtual-time compression legitimately shifts the epoch
    edge).

    ``network=True`` pins the traffic volumes per category.

    ``events=True`` additionally pins the *event plumbing*: global heap
    events and the per-link wire-merge histogram.  Same-plane comparisons
    only (e.g. probe-engine pairs on one data plane) — comparing across
    planes (merged vs unmerged wire, batched vs per-tuple) legitimately
    changes both.
    """
    prefix = f"{label}: " if label else ""
    if result_a.outputs is not None and result_b.outputs is not None:
        assert sorted(result_a.outputs) == sorted(result_b.outputs), (
            f"{prefix}join outputs differ"
        )
    assert result_a.output_count == result_b.output_count, f"{prefix}output_count"
    assert result_a.migrations == result_b.migrations, f"{prefix}migration count"
    mapping_seq_a = [(e[0], e[1], e[2]) for e in result_a.migration_events]
    mapping_seq_b = [(e[0], e[1], e[2]) for e in result_b.migration_events]
    assert mapping_seq_a == mapping_seq_b, f"{prefix}migration sequence"
    assert result_a.final_mapping == result_b.final_mapping, f"{prefix}final mapping"
    if timing:
        assert result_a.execution_time == result_b.execution_time, (
            f"{prefix}execution_time {result_a.execution_time} != {result_b.execution_time}"
        )
        assert result_a.average_latency == result_b.average_latency, (
            f"{prefix}average_latency"
        )
        assert result_a.machine_busy == result_b.machine_busy, (
            f"{prefix}per-machine busy times"
        )
        assert result_a.probe_work == result_b.probe_work, f"{prefix}probe_work"
        assert result_a.max_ilf == result_b.max_ilf, f"{prefix}max_ilf"
        assert result_a.migration_events == result_b.migration_events, (
            f"{prefix}migration timing"
        )
        assert result_a.spilled == result_b.spilled, f"{prefix}spill flag"
    if events:
        assert result_a.heap_events == result_b.heap_events, f"{prefix}heap_events"
        assert result_a.wire_histogram == result_b.wire_histogram, (
            f"{prefix}wire_histogram"
        )
    if network:
        assert result_a.routing_volume == result_b.routing_volume, f"{prefix}routing volume"
        assert result_a.migration_volume == result_b.migration_volume, (
            f"{prefix}migration volume"
        )
        assert result_a.total_network_volume == result_b.total_network_volume, (
            f"{prefix}total network volume"
        )
