"""Differential-testing helpers for operator runs.

The repository leans on differential testing throughout: the scalar probe
engine is the oracle for the vectorized one, the per-tuple data plane is the
oracle for the adaptive one, and the simulated executor is the oracle for the
threaded one.  :func:`assert_run_equivalent` is the shared assertion those
suites (and third-party backends registered through :mod:`repro.api`) compare
:class:`~repro.core.results.RunResult`\\ s with.
"""

from __future__ import annotations

#: Timing fields the ``timing=False`` coarse switch skips as a group.
TIMING_FIELDS = frozenset(
    {
        "execution_time",
        "average_latency",
        "machine_busy",
        "probe_work",
        "max_ilf",
        "migration_timing",
        "spilled",
    }
)

#: Event-plumbing fields gated behind ``events=True``.
EVENT_FIELDS = frozenset({"heap_events", "wire_histogram"})

#: Traffic fields the ``network=False`` coarse switch skips as a group.
#: Includes the reliable-wire degradation counters: two runs under the same
#: network fault schedule must lose/retransmit/reorder identically (they are
#: deterministic), while a faulty run compared against its fault-free twin
#: skips them along with the volumes the retransmits inflate.
NETWORK_FIELDS = frozenset(
    {
        "routing_volume",
        "migration_volume",
        "total_network_volume",
        "messages_dropped",
        "messages_duplicated",
        "messages_retransmitted",
        "messages_reordered",
        "retransmit_histogram",
        "wire_counters",
    }
)

#: Every field name ``ignore=`` accepts.  The semantic baseline — join
#: outputs, output count, the migration sequence and the final mapping — is
#: deliberately absent: two runs that disagree on those are not "equivalent
#: modulo stats", they are different joins, and no comparison mode may wave
#: that away.
IGNORABLE_FIELDS = TIMING_FIELDS | EVENT_FIELDS | NETWORK_FIELDS


def assert_run_equivalent(
    result_a,
    result_b,
    *,
    timing=True,
    network=True,
    events=False,
    ignore=(),
    label="",
):
    """Assert two :class:`~repro.core.results.RunResult`\\ s are equivalent.

    The baseline comparison (always on, never skippable) pins the
    *semantics*: join output (as sorted tuple-id pairs, when collected),
    output count, the migration sequence (epochs and mappings) and the final
    mapping.

    ``timing=True`` additionally pins exact virtual-time and work accounting:
    execution time, average latency, per-machine busy chains, charged probe
    work, peak ILF, the spill flag and the migration decision/completion
    times.  Use it when the two runs are meant to be *bit-identical*
    simulations (probe-engine pairs at one batch size, adaptive vs per-tuple
    plane, threaded vs simulated executor); drop it when only the results
    must agree (fixed-plane runs across batch sizes, where virtual-time
    compression legitimately shifts the epoch edge).

    ``network=True`` pins the traffic volumes per category.

    ``events=True`` additionally pins the *event plumbing*: global heap
    events and the per-link wire-merge histogram.  Same-plane comparisons
    only (e.g. probe-engine pairs on one data plane) — comparing across
    planes (merged vs unmerged wire, batched vs per-tuple) legitimately
    changes both.

    ``ignore=`` names individual fields to skip, for comparisons that are
    exact *except* for a known, bounded delta — e.g. a cross-executor suite
    excluding wall-clock-adjacent fields while keeping everything else
    strict.  Names must come from :data:`IGNORABLE_FIELDS`; unknown names
    raise ``ValueError`` so a typo cannot silently weaken a suite, and the
    semantic baseline is not ignorable at all.  The coarse ``timing`` /
    ``network`` / ``events`` switches compose with ``ignore`` (each switch is
    shorthand for ignoring its whole field group).
    """
    ignored = set(ignore)
    unknown = ignored - IGNORABLE_FIELDS
    if unknown:
        raise ValueError(
            f"unknown ignore field(s): {', '.join(sorted(unknown))}; "
            f"ignorable fields: {', '.join(sorted(IGNORABLE_FIELDS))} "
            f"(the semantic baseline is never skippable)"
        )
    if not timing:
        ignored |= TIMING_FIELDS
    if not events:
        ignored |= EVENT_FIELDS
    if not network:
        ignored |= NETWORK_FIELDS

    prefix = f"{label}: " if label else ""
    if result_a.outputs is not None and result_b.outputs is not None:
        assert sorted(result_a.outputs) == sorted(result_b.outputs), (
            f"{prefix}join outputs differ"
        )
    assert result_a.output_count == result_b.output_count, f"{prefix}output_count"
    assert result_a.migrations == result_b.migrations, f"{prefix}migration count"
    mapping_seq_a = [(e[0], e[1], e[2]) for e in result_a.migration_events]
    mapping_seq_b = [(e[0], e[1], e[2]) for e in result_b.migration_events]
    assert mapping_seq_a == mapping_seq_b, f"{prefix}migration sequence"
    assert result_a.final_mapping == result_b.final_mapping, f"{prefix}final mapping"

    def check(name, value_a, value_b, what):
        if name not in ignored:
            assert value_a == value_b, f"{prefix}{what}"

    check(
        "execution_time",
        result_a.execution_time,
        result_b.execution_time,
        f"execution_time {result_a.execution_time} != {result_b.execution_time}",
    )
    check(
        "average_latency",
        result_a.average_latency,
        result_b.average_latency,
        "average_latency",
    )
    check(
        "machine_busy",
        result_a.machine_busy,
        result_b.machine_busy,
        "per-machine busy times",
    )
    check("probe_work", result_a.probe_work, result_b.probe_work, "probe_work")
    check("max_ilf", result_a.max_ilf, result_b.max_ilf, "max_ilf")
    check(
        "migration_timing",
        result_a.migration_events,
        result_b.migration_events,
        "migration timing",
    )
    check("spilled", result_a.spilled, result_b.spilled, "spill flag")
    check("heap_events", result_a.heap_events, result_b.heap_events, "heap_events")
    check(
        "wire_histogram",
        result_a.wire_histogram,
        result_b.wire_histogram,
        "wire_histogram",
    )
    check(
        "routing_volume",
        result_a.routing_volume,
        result_b.routing_volume,
        "routing volume",
    )
    check(
        "migration_volume",
        result_a.migration_volume,
        result_b.migration_volume,
        "migration volume",
    )
    check(
        "total_network_volume",
        result_a.total_network_volume,
        result_b.total_network_volume,
        "total network volume",
    )
    check(
        "messages_dropped",
        result_a.messages_dropped,
        result_b.messages_dropped,
        "messages_dropped",
    )
    check(
        "messages_duplicated",
        result_a.messages_duplicated,
        result_b.messages_duplicated,
        "messages_duplicated",
    )
    check(
        "messages_retransmitted",
        result_a.messages_retransmitted,
        result_b.messages_retransmitted,
        "messages_retransmitted",
    )
    check(
        "messages_reordered",
        result_a.messages_reordered,
        result_b.messages_reordered,
        "messages_reordered",
    )
    check(
        "retransmit_histogram",
        result_a.retransmit_histogram,
        result_b.retransmit_histogram,
        "retransmit_histogram",
    )
    check(
        "wire_counters",
        result_a.wire_counters,
        result_b.wire_counters,
        "wire_counters",
    )
