"""repro.api — the first-class session API of the reproduction.

One coherent front door over the operator stack:

* :class:`RunConfig` — frozen, validated, serialisable configuration; the
  single source of truth for every operator/run knob.
* :class:`JoinSession` — the facade: materialised ``run()`` plus the
  incremental ``push()`` / ``finish()`` streaming mode with mid-run
  :class:`StreamSnapshot` observability.
* :func:`build_operator` — registry-backed operator construction.
* Registries — :func:`register_operator`, :func:`register_probe_engine`,
  :func:`register_predicate`, :func:`register_batch_controller` let new
  backends and scenarios plug in without touching core modules.

Quickstart::

    from repro.api import JoinSession, RunConfig

    session = JoinSession(config=RunConfig(machines=16, seed=7))
    result = session.run(query)                  # materialised

    session.push(left=chunk_a, right=chunk_b)    # streaming
    final = session.finish()
"""

from repro.api.config import ARRIVAL_PATTERNS, RunConfig
from repro.api.registry import (
    PredicateKind,
    Registry,
    batch_controllers,
    executors,
    operators,
    predicate_kinds,
    probe_engines,
    register_batch_controller,
    register_executor,
    register_operator,
    register_predicate,
    register_probe_engine,
)
from repro.api.session import JoinSession, StreamSnapshot, build_operator
from repro.engine.faults import (
    FaultSpec,
    NetworkFaultSpec,
    UnreachableLinkError,
    crash,
    crash_after_events,
    delay,
    drop,
    duplicate,
    partition,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "FaultSpec",
    "JoinSession",
    "NetworkFaultSpec",
    "PredicateKind",
    "Registry",
    "RunConfig",
    "StreamSnapshot",
    "UnreachableLinkError",
    "batch_controllers",
    "build_operator",
    "crash",
    "crash_after_events",
    "delay",
    "drop",
    "duplicate",
    "executors",
    "operators",
    "partition",
    "predicate_kinds",
    "probe_engines",
    "register_batch_controller",
    "register_executor",
    "register_operator",
    "register_predicate",
    "register_probe_engine",
]
