"""Pluggable component registries of the public API.

Three registries replace the string-switches that used to be scattered
through the code base:

* **operators** — operator kind name → operator class (was the ``dict``
  switch inside :func:`repro.core.baselines.make_operator`),
* **probe_engines** — engine name → probe-engine strategy (was the hardcoded
  ``"vectorized" | "scalar"`` branch inside :mod:`repro.joins.local`),
* **predicate_kinds** — predicate ``kind`` → local-join algorithm (was the
  if/elif chain inside :func:`repro.joins.local.make_local_joiner`).

The registries live in this dependency-free leaf module so that any layer can
populate them at import time without cycles: :mod:`repro.joins.local`
registers the built-in probe engines and predicate kinds,
:mod:`repro.core.baselines` / :mod:`repro.core.operator` register the
built-in operators, and :mod:`repro.api` re-exports the ``register_*``
helpers for third-party extensions.  New backends and scenarios land by
registering — no core module needs touching.
"""

from __future__ import annotations

from typing import Any, Iterator


class Registry:
    """A named string → component mapping with helpful failure modes.

    Lookups of unknown names raise :class:`ValueError` listing the registered
    choices; duplicate registrations raise unless ``replace=True`` is passed
    (so a typo can never silently shadow a built-in).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, value: Any, *, replace: bool = False) -> Any:
        """Register ``value`` under ``name``; returns ``value`` for chaining."""
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} names must be non-empty strings, got {name!r}")
        if not replace and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override it"
            )
        self._entries[name] = value
        return value

    def unregister(self, name: str) -> None:
        """Remove ``name`` (KeyError-free; used by tests and plugins)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Any:
        """Look up ``name``, raising a choice-listing error when unknown."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered choices: "
                f"{', '.join(sorted(self._entries)) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """The registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names()) or '(empty)'}>"


#: Machine-to-cell layouts supported by the grid placement
#: (:class:`repro.core.mapping.GridPlacement`).  Defined in this leaf module
#: so both that class and :class:`repro.api.config.RunConfig` can validate
#: against one authority without an api ⇄ core import cycle.
LAYOUTS = ("dyadic", "row_major")

#: Operator kind → operator class (``Dynamic``, ``StaticMid``, ...).
operators = Registry("operator")

#: Probe-engine name → :class:`repro.joins.local.ProbeEngine` strategy.
probe_engines = Registry("probe engine")

#: Predicate ``kind`` → :class:`repro.api.registry.PredicateKind` spec.
predicate_kinds = Registry("predicate kind")

#: Batching plane name → :class:`repro.engine.batching.BatchController`
#: subclass (``RunConfig.batching`` values: ``"fixed"``, ``"adaptive"``, ...).
batch_controllers = Registry("batch controller")

#: Executor backend name → :class:`repro.engine.executor.Executor` subclass
#: (``RunConfig.executor`` values: ``"simulated"``, ``"threads"``, ...).
executors = Registry("executor")


class PredicateKind:
    """What the system needs to know about one predicate ``kind``.

    Attributes:
        name: the kind string predicates advertise (``"equi"``, ``"band"``, ...).
        joiner_factory: callable ``(predicate, left_relation, right_relation,
            engine) -> LocalJoiner`` building the local join algorithm serving
            this kind.
        predicate_class: optional canonical predicate class, for introspection
            and config-driven construction.
    """

    __slots__ = ("name", "joiner_factory", "predicate_class")

    def __init__(self, name: str, joiner_factory, predicate_class=None) -> None:
        self.name = name
        self.joiner_factory = joiner_factory
        self.predicate_class = predicate_class


def register_operator(name: str, operator_class, *, replace: bool = False):
    """Register an operator class under ``name`` for :func:`repro.api.build_operator`.

    The class must accept ``(query, config=RunConfig)`` construction (subclass
    :class:`repro.core.operator.GridJoinOperator` to inherit it).
    """
    return operators.register(name, operator_class, replace=replace)


def register_probe_engine(name: str, engine, *, replace: bool = False):
    """Register a probe-engine strategy (see :class:`repro.joins.local.ProbeEngine`)."""
    return probe_engines.register(name, engine, replace=replace)


def register_predicate(
    name: str, joiner_factory, predicate_class=None, *, replace: bool = False
) -> PredicateKind:
    """Register a predicate ``kind`` with the local-join algorithm serving it."""
    spec = PredicateKind(name, joiner_factory, predicate_class)
    return predicate_kinds.register(name, spec, replace=replace)


def register_batch_controller(name: str, controller_class, *, replace: bool = False):
    """Register a batching plane (see :class:`repro.engine.batching.BatchController`).

    The class is instantiated once per machine and per run with
    ``controller_class(batch_max=...)`` when it advertises ``drains=True``;
    non-draining planes (the built-in ``"fixed"``) are only validated against.
    """
    return batch_controllers.register(name, controller_class, replace=replace)


def register_executor(name: str, executor_class, *, replace: bool = False):
    """Register an executor backend (see :class:`repro.engine.executor.Executor`).

    The class must provide ``from_config(RunConfig) -> Executor`` and
    ``build_simulator(...)``; backends advertising ``parallel=True``
    additionally accept the ``RunConfig.num_workers`` knob (non-parallel
    backends reject it at config validation).
    """
    return executors.register(name, executor_class, replace=replace)
