"""The typed run configuration — single source of truth for every run knob.

Historically every entry point wired the operator up differently:
``GridJoinOperator.__init__`` took ~14 loose keyword arguments, the bench
layer's ``ExperimentConfig`` re-declared an overlapping subset with different
defaults, and benchmarks/examples hand-rolled the plumbing in between.
:class:`RunConfig` replaces all of that: one frozen, eagerly validated
dataclass holding every operator/run knob, shared verbatim by the operator
layer, the :class:`~repro.api.session.JoinSession` facade, the bench harness
and the CLI (``--config file.json``).

Validation happens at construction — an invalid ``probe_engine`` or
``layout`` fails immediately with the registered choices listed, instead of
deep inside ``LocalJoiner`` / ``GridPlacement`` construction mid-run.

``to_dict()`` / ``from_dict()`` round-trip exactly (pinned by tests), so a
config can be serialised into CI breadcrumbs and fed back through the CLI.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

# Importing the built-in engine/predicate/batching/executor registrations;
# keeps validation meaningful even when repro.api.config is imported before
# the rest of repro.
import repro.engine.batching  # noqa: F401  (populates the batch-controller registry)
import repro.engine.executor  # noqa: F401  (populates the executor registry)
import repro.joins.local  # noqa: F401  (populates the probe-engine registry)
from repro.api.registry import LAYOUTS, batch_controllers, executors, probe_engines
from repro.engine.columns import HAS_NUMPY, NUMPY_HINT
from repro.engine.faults import (
    FaultSpec,
    normalize_fault_schedule,
    normalize_network_faults,
)

#: Arrival interleavings understood by the stream layer
#: (see :func:`repro.engine.stream.interleave_streams`).
ARRIVAL_PATTERNS = ("uniform", "alternate", "r_first", "s_first")


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Every knob of one operator run, validated eagerly, immutable.

    Field defaults are the *operator's* tuned defaults (e.g. ``batch_size=None``
    selects the batched data plane's ``DEFAULT_BATCH_SIZE``); layers that need
    different reference semantics (the paper-figure drivers pin
    ``batch_size=1``) say so explicitly instead of re-declaring defaults.

    Attributes:
        machines: number of joiners J (the operator requires a power of two).
        seed: seed controlling tuple salts, arrival interleaving and routing.
        epsilon: the ε of Theorem 4.2 (1.0 = Algorithm 2 as published).
        warmup_tuples: minimum estimated global tuple count before the first
            migration may be considered; ``None`` = ``4.0 * machines``.
        layout: machine-to-cell layout, ``"dyadic"`` or ``"row_major"``.
        blocking: model the blocking actuation protocol instead of Alg. 3.
        memory_capacity: per-machine storage budget; ``None`` = unbounded.
        sample_every: controller sampling period for ILF/ratio time series.
        batch_size: data-plane micro-batch size; ``None`` selects the tuned
            default (64), ``1`` the per-tuple reference plane.  Fixed plane
            only — the adaptive plane sizes its runs dynamically and rejects
            an explicit ``batch_size``.
        probe_engine: joiner probe engine; must name a registered engine.
        batching: batching plane; must name a registered batch controller.
            ``"fixed"`` (default) is the sender-side micro-batch plane sized
            by ``batch_size``; ``"adaptive"`` keeps the wire per-tuple and
            coalesces backlog at the receiver — bit-identical results and
            virtual times to ``batch_size=1`` (pinned by the conformance
            suite), with the event/wall-clock savings of batching.
        batch_max: largest run the adaptive controller may coalesce
            (``None`` = the controller's default, 64).  Rejected when
            ``batching="fixed"``.
        delivery_merging: wire-level conservative delivery merging — data
            messages on one (sender, destination) FIFO link merge into single
            ``DeliveryRun`` heap events whose members settle into the
            receiver's inbox in exact per-tuple ``(time, rank)`` order, so
            results and virtual times are bit-identical to the unmerged wire
            (pinned by the conformance suite).  ``None`` (default) enables it
            for receiver-draining planes (``batching="adaptive"``) and leaves
            the fixed/per-tuple planes unmerged; pass an explicit bool to
            override either way.
        arrival_pattern: interleaving of the two input streams (pacing).
        inter_arrival: virtual-time gap between consecutive arrivals (pacing;
            0 = joiners fully utilised).
        fault_schedule: deterministic machine crashes to inject — a sequence
            of :class:`~repro.engine.faults.FaultSpec` entries (build them
            with :func:`~repro.engine.faults.crash` /
            :func:`~repro.engine.faults.crash_after_events`); plain dicts are
            accepted for the JSON round trip.  Empty (default) = no faults.
            Requires the non-blocking protocol (``blocking=False``).
        checkpoint_interval: journal deltas a task may accumulate before its
            next epoch-aligned durable snapshot; ``None`` (default) disables
            checkpointing unless a fault schedule is present, in which case
            recovery replays the full journal.  Fault-free runs with an
            interval set stay bit-identical to the reference plane (pinned by
            the conformance suite).
        ack_timeout: virtual time after a crash at which the coordinator
            detects the failure (the default restart instant) and the link
            layer first retries buffered traffic to the dead machine.
        max_retries: link-layer retry attempts (with doubling backoff) for
            traffic addressed to a crashed machine before the run fails with
            an unreachable-machine error.
        executor: execution backend; must name a registered executor.
            ``"simulated"`` (default) is the single-threaded virtual-time
            simulator — the conformance oracle.  ``"threads"`` runs each
            machine's handlers on a worker thread with shared-nothing
            inbound queues behind the simulator's deterministic ``(time,
            rank)`` merge order: outputs, migrations and every virtual-time
            quantity are bit-identical to the oracle (pinned by
            ``tests/test_executor_conformance.py``); only wall-clock-derived
            stats differ.  Composes with ``fault_schedule`` and
            ``checkpoint_interval``: faults are full barriers on the
            dispatch frontier and the checkpoint journal accepts writes from
            any worker thread.
        num_workers: worker threads of a parallel executor; ``None`` (the
            default) means one worker per machine.  Requests beyond the
            machine count are clamped (a worker owns whole machines); the
            count actually used is reported as ``RunResult.effective_workers``.
            Rejected for non-parallel executors (the ``"simulated"`` backend
            has no workers to size).
        worker_timeout: seconds the coordinator of a parallel executor waits
            on one worker handler (completion at commit, thread exit at
            shutdown) before declaring the run wedged and raising; ``None``
            (the default) uses the executor's generous built-in bound.
            Rejected for non-parallel executors.
        network_faults: deterministic wire-level faults to inject — a
            sequence of :class:`~repro.engine.faults.NetworkFaultSpec`
            entries (build them with :func:`~repro.engine.faults.drop` /
            :func:`~repro.engine.faults.duplicate` /
            :func:`~repro.engine.faults.delay` /
            :func:`~repro.engine.faults.partition`); plain dicts are accepted
            for the JSON round trip.  Empty (default) = the ideal wire, with
            every run bit-identical to a build without the wire plane.  A
            non-empty schedule installs the reliable-delivery sublayer
            (per-link sequence numbers, dedup, in-order release, retransmit
            timers) that masks the faults: the run's final output multiset is
            identical to the fault-free twin's.  Requires the non-blocking
            protocol (``blocking=False``); composes with ``fault_schedule``.
        retry_base: virtual-time backoff of the reliable wire's first
            retransmit of a lost frame; subsequent attempts double it.
        retry_max_attempts: retransmissions of one frame the reliable wire
            spends before declaring the link dead with
            :class:`~repro.engine.faults.UnreachableLinkError` (never a hang).
    """

    machines: int = 16
    seed: int = 0
    epsilon: float = 1.0
    warmup_tuples: float | None = None
    layout: str = "dyadic"
    blocking: bool = False
    memory_capacity: float | None = None
    sample_every: int = 200
    batch_size: int | None = None
    probe_engine: str = "vectorized"
    batching: str = "fixed"
    batch_max: int | None = None
    delivery_merging: bool | None = None
    arrival_pattern: str = "uniform"
    inter_arrival: float = 0.0
    fault_schedule: tuple = ()
    checkpoint_interval: int | None = None
    ack_timeout: float = 5.0
    max_retries: int = 5
    executor: str = "simulated"
    num_workers: int | None = None
    worker_timeout: float | None = None
    network_faults: tuple = ()
    retry_base: float = 0.5
    retry_max_attempts: int = 10

    # ------------------------------------------------------------- validation

    def _check_types(self) -> None:
        expectations = (
            ("machines", self.machines, int, False),
            ("seed", self.seed, int, False),
            ("epsilon", self.epsilon, (int, float), False),
            ("warmup_tuples", self.warmup_tuples, (int, float), True),
            ("layout", self.layout, str, False),
            ("blocking", self.blocking, bool, False),
            ("memory_capacity", self.memory_capacity, (int, float), True),
            ("sample_every", self.sample_every, int, False),
            ("batch_size", self.batch_size, int, True),
            ("probe_engine", self.probe_engine, str, False),
            ("batching", self.batching, str, False),
            ("batch_max", self.batch_max, int, True),
            ("delivery_merging", self.delivery_merging, bool, True),
            ("arrival_pattern", self.arrival_pattern, str, False),
            ("inter_arrival", self.inter_arrival, (int, float), False),
            ("checkpoint_interval", self.checkpoint_interval, int, True),
            ("ack_timeout", self.ack_timeout, (int, float), False),
            ("max_retries", self.max_retries, int, False),
            ("executor", self.executor, str, False),
            ("num_workers", self.num_workers, int, True),
            ("worker_timeout", self.worker_timeout, (int, float), True),
            ("retry_base", self.retry_base, (int, float), False),
            ("retry_max_attempts", self.retry_max_attempts, int, False),
        )
        for name, value, types, optional in expectations:
            if optional and value is None:
                continue
            valid = isinstance(value, types)
            if valid and types is not bool and isinstance(value, bool):
                valid = False  # bool is an int subclass; numeric knobs reject it
            if not valid:
                expected = types.__name__ if isinstance(types, type) else "int | float"
                raise ValueError(
                    f"RunConfig.{name} must be {'None or ' if optional else ''}"
                    f"of type {expected}, got {value!r}"
                )

    def _check_fault_overlaps(self) -> None:
        """Reject statically-provable overlapping crash windows eagerly.

        A machine must be back up before its next crash fires.  For
        time-anchored faults the outage window is known at construction —
        ``[at_time, at_time + (restart_after or ack_timeout))`` — so two
        overlapping windows on one machine can be rejected here, listing the
        conflicting specs, instead of deep in the simulator mid-run.  Two
        event-anchored faults with the *same* anchor provably collide too
        (the first crash fires both).  Mixed or distinct event anchors depend
        on the run's virtual timeline and stay a runtime error.
        """
        by_machine: dict[int, list[FaultSpec]] = {}
        for fault in self.fault_schedule:
            by_machine.setdefault(fault.machine, []).append(fault)
        for faults in by_machine.values():
            anchors: dict[int, FaultSpec] = {}
            for fault in faults:
                if fault.after_events is None:
                    continue
                other = anchors.get(fault.after_events)
                if other is not None:
                    raise ValueError(
                        "overlapping fault_schedule entries: "
                        f"{other!r} and {fault!r} crash machine "
                        f"{fault.machine} at the same event anchor"
                    )
                anchors[fault.after_events] = fault
            timed = sorted(
                (fault for fault in faults if fault.at_time is not None),
                key=lambda fault: fault.at_time,
            )
            for earlier, later in zip(timed, timed[1:]):
                restart = earlier.at_time + (
                    earlier.restart_after
                    if earlier.restart_after is not None
                    else self.ack_timeout
                )
                if later.at_time < restart:
                    raise ValueError(
                        "overlapping fault_schedule entries: "
                        f"{earlier!r} (down until t={restart}) and "
                        f"{later!r} crash machine {later.machine} "
                        "while it is already down"
                    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fault_schedule", normalize_fault_schedule(self.fault_schedule)
        )
        object.__setattr__(
            self, "network_faults", normalize_network_faults(self.network_faults)
        )
        self._check_types()
        if self.machines < 1:
            raise ValueError(f"machines must be >= 1, got {self.machines}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")
        if self.warmup_tuples is not None and self.warmup_tuples < 0:
            raise ValueError(f"warmup_tuples must be >= 0, got {self.warmup_tuples}")
        if self.layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {self.layout!r}; choices: {', '.join(LAYOUTS)}"
            )
        if self.memory_capacity is not None and self.memory_capacity <= 0:
            raise ValueError(
                f"memory_capacity must be positive or None, got {self.memory_capacity}"
            )
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {self.batch_size}")
        if self.probe_engine not in probe_engines:
            raise ValueError(
                f"unknown probe engine {self.probe_engine!r}; registered choices: "
                f"{', '.join(probe_engines.names())}"
            )
        engine_spec = probe_engines.get(self.probe_engine)
        if getattr(engine_spec, "requires", None) == "numpy" and not HAS_NUMPY:
            raise ValueError(
                f"probe engine {self.probe_engine!r} unavailable: {NUMPY_HINT}; "
                f"registered choices: {', '.join(probe_engines.names())}"
            )
        if self.batching not in batch_controllers:
            raise ValueError(
                f"unknown batching {self.batching!r}; registered choices: "
                f"{', '.join(batch_controllers.names())}"
            )
        controller_class = batch_controllers.get(self.batching)
        if not getattr(controller_class, "drains", False):
            if self.batch_max is not None:
                raise ValueError(
                    f"batch_max is an adaptive-controller parameter; "
                    f"batching={self.batching!r} sizes batches statically via "
                    "batch_size"
                )
        else:
            if self.batch_size is not None:
                raise ValueError(
                    f"batch_size applies to the fixed plane only; "
                    f"batching={self.batching!r} sizes its runs dynamically "
                    "(cap them with batch_max instead)"
                )
            if self.batch_max is not None and self.batch_max < 1:
                raise ValueError(f"batch_max must be >= 1 or None, got {self.batch_max}")
            if self.blocking:
                raise ValueError(
                    "adaptive batching requires the non-blocking migration "
                    "protocol (blocking=False): the blocking protocol's "
                    "buffered-resume control messages charge CPU time, which "
                    "a coalesced run cannot reproduce per-tuple-exactly"
                )
        if self.arrival_pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival_pattern {self.arrival_pattern!r}; "
                f"choices: {', '.join(ARRIVAL_PATTERNS)}"
            )
        if self.inter_arrival < 0:
            raise ValueError(f"inter_arrival must be >= 0, got {self.inter_arrival}")
        for fault in self.fault_schedule:
            if not isinstance(fault, FaultSpec):  # normalize_fault_schedule guarantees
                raise ValueError(f"fault_schedule entry is not a FaultSpec: {fault!r}")
            if fault.machine >= self.machines:
                raise ValueError(
                    f"fault_schedule machine {fault.machine} out of range; "
                    f"choices: 0..{self.machines - 1} (machines={self.machines})"
                )
        self._check_fault_overlaps()
        for spec in self.network_faults:
            for machine in spec.machines():
                if machine >= self.machines:
                    raise ValueError(
                        f"network_faults machine {machine} out of range in "
                        f"{spec!r}; choices: 0..{self.machines - 1} "
                        f"(machines={self.machines})"
                    )
        if self.network_faults and self.blocking:
            raise ValueError(
                "network fault injection requires the non-blocking migration "
                "protocol (blocking=False), like fault_schedule"
            )
        if self.retry_base <= 0:
            raise ValueError(f"retry_base must be > 0, got {self.retry_base}")
        if self.retry_max_attempts < 1:
            raise ValueError(
                f"retry_max_attempts must be >= 1, got {self.retry_max_attempts}"
            )
        if self.fault_schedule and self.blocking:
            raise ValueError(
                "fault injection requires the non-blocking migration protocol "
                "(blocking=False): recovery is framed as an involuntary "
                "migration, which the blocking protocol's buffered-resume "
                "control flow does not model"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1 or None, got {self.checkpoint_interval}"
            )
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.executor not in executors:
            raise ValueError(
                f"unknown executor {self.executor!r}; registered choices: "
                f"{', '.join(executors.names())}"
            )
        executor_class = executors.get(self.executor)
        if not getattr(executor_class, "parallel", False):
            if self.num_workers is not None:
                raise ValueError(
                    f"num_workers is a parallel-executor knob; "
                    f"executor={self.executor!r} runs single-threaded "
                    '(use executor="threads" to size a worker fleet)'
                )
            if self.worker_timeout is not None:
                raise ValueError(
                    f"worker_timeout is a parallel-executor knob; "
                    f"executor={self.executor!r} has no worker threads to "
                    'bound (use executor="threads")'
                )
        else:
            if self.num_workers is not None and self.num_workers < 1:
                raise ValueError(
                    f"num_workers must be >= 1 or None, got {self.num_workers}"
                )
            if self.worker_timeout is not None and self.worker_timeout <= 0:
                raise ValueError(
                    f"worker_timeout must be > 0 or None, got {self.worker_timeout}"
                )

    # -------------------------------------------------------------- overrides

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with ``overrides`` applied (and re-validated).

        Unknown keys raise immediately with the accepted field names listed —
        a typo can never silently fall through to an untyped kwargs dict.
        """
        if not overrides:
            return self
        self._check_keys(overrides)
        return dataclasses.replace(self, **overrides)

    @classmethod
    def _check_keys(cls, mapping: dict[str, Any]) -> None:
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - fields)
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(fields))}"
            )

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict such that ``RunConfig.from_dict(c.to_dict()) == c``."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output (validates keys/values)."""
        if not isinstance(data, dict):
            raise ValueError(f"RunConfig.from_dict expects a dict, got {type(data).__name__}")
        cls._check_keys(data)
        return cls(**data)

    def to_json(self) -> str:
        """The config as a JSON object string (CI breadcrumbs, ``--config``)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Parse a JSON object string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "RunConfig":
        """Load a config from a JSON file (the CLI's ``--config file.json``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
