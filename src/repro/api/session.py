"""The session facade: one front door for materialised and streaming runs.

A :class:`JoinSession` binds a :class:`~repro.api.config.RunConfig` (plus an
operator kind and an optional default workload) and exposes the two ingestion
modes of the system:

* **materialised** — :meth:`JoinSession.run` executes a
  :class:`~repro.data.queries.JoinQuery` end to end, exactly like
  ``operator.run()`` always did, and returns a
  :class:`~repro.core.results.RunResult`;
* **streaming** — :meth:`JoinSession.push` feeds record chunks into a live,
  resumable simulation (opened lazily or explicitly via
  :meth:`JoinSession.open_stream`), returning a mid-run
  :class:`StreamSnapshot` after each chunk; :meth:`JoinSession.finish`
  flushes the remaining micro-batch buffers and returns the final
  :class:`~repro.core.results.RunResult`.  This is the unbounded/live-stream
  mode the materialised bench layer cannot express: the input need never be
  materialised up front, and progress can be observed between chunks.

Override precedence is ``session default < per-run config < call-site``: the
session's config is the default, a ``config=`` passed to a run method
replaces it wholesale, and keyword overrides are applied last.

Operators are constructed exclusively through the
:data:`~repro.api.registry.operators` registry, so session code never
switches on kind strings and registered third-party operators work
transparently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.api.config import RunConfig
from repro.api.registry import operators
from repro.core.mapping import Mapping
from repro.engine.stream import StreamTuple, TupleBatch, make_tuples
from repro.engine.task import DataEnvelope, Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operator import GridJoinOperator
    from repro.core.results import RunResult
    from repro.data.queries import JoinQuery
    from repro.engine.machine import CostModel


#: Operator-specific constructor arguments that are not :class:`RunConfig`
#: fields (they depend on the operator kind / workload, not the run).
OPERATOR_ONLY_KWARGS = ("adaptive", "initial_mapping")


def build_operator(
    kind: str,
    query: "JoinQuery",
    config: RunConfig | None = None,
    *,
    cost_model: "CostModel | None" = None,
    **overrides: Any,
) -> "GridJoinOperator":
    """Construct a registered operator from a :class:`RunConfig`.

    This is the registry-backed replacement for the old
    ``repro.core.baselines.make_operator`` string-switch: ``kind`` is looked
    up in the :data:`~repro.api.registry.operators` registry (unknown kinds
    fail with the registered choices listed) and keyword ``overrides`` are
    applied on top of ``config``.  The operator-specific ``adaptive`` /
    ``initial_mapping`` arguments pass through to the operator class; all
    other overrides must name :class:`RunConfig` fields.
    """
    operator_class = operators.get(kind)
    extras = {
        key: overrides.pop(key) for key in OPERATOR_ONLY_KWARGS if key in overrides
    }
    effective = (config or RunConfig()).with_overrides(**overrides)
    return operator_class(query, config=effective, cost_model=cost_model, **extras)


@dataclass(frozen=True)
class StreamSnapshot:
    """Mid-run observability of a streaming session.

    Attributes:
        tuples_pushed: input tuples ingested so far.
        virtual_time: current virtual completion time of the work so far.
        events_processed: simulator handler invocations so far.
        output_count: join results produced so far.
        migrations: mapping changes triggered so far.
        mapping: the controller's current ``(n, m)`` mapping.
        max_ilf: peak per-machine stored size observed so far.
        total_storage: current total cluster storage.
        probe_work: joiner probe work units charged so far.
    """

    tuples_pushed: int
    virtual_time: float
    events_processed: int
    output_count: int
    migrations: int
    mapping: Mapping
    max_ilf: float
    total_storage: float
    probe_work: float


class _StreamingRun:
    """State of one incremental run: a live simulator plus the source-side
    micro-batcher.

    The batcher replicates :meth:`ArrivalSchedule.batched_arrivals` exactly —
    per-tuple destination choice from ``Random(seed)`` (the same draw sequence
    as the materialised ``arrival_order`` path), per-destination coalescing of
    up to ``batch_size`` consecutive arrivals, emission at the newest member's
    arrival time — but keeps partial buffers alive *across* pushes, so the
    batch boundaries a workload sees are identical whether it arrives in one
    materialised schedule or in arbitrary chunks.  Only :meth:`finish` flushes
    partial buffers (at end-of-stream, like the materialised path).
    """

    def __init__(self, operator: "GridJoinOperator", collect_outputs: bool = False) -> None:
        self.operator = operator
        self.simulator, self.topology = operator.build_execution(
            collect_outputs=collect_outputs
        )
        self.batch_size = operator.batch_size
        self.inter_arrival = operator.config.inter_arrival
        # Destination picking mirrors GridJoinOperator.run(arrival_order=...):
        # a fresh Random(seed) used exclusively for reshuffler choice.
        self._route_rng = random.Random(operator.seed)
        # Raw records pushed without pre-assigned salts get deterministic
        # salts from a dedicated source (the materialised path draws salts
        # and destinations interleaved from one rng, which an incremental
        # feed cannot reproduce; pre-salted StreamTuples bypass this).
        self._salt_rng = random.Random(f"repro-stream-salts-{operator.seed}")
        self._buffers: dict[str, list[StreamTuple]] = {}
        self._pushed = 0
        self._end_time = 0.0
        self.finished = False

    # ------------------------------------------------------------- ingestion

    def _coerce(
        self,
        entries: Iterable[StreamTuple | dict],
        relation: str,
        tuple_size: float,
    ) -> list[StreamTuple]:
        items: list[StreamTuple] = []
        records: list[dict] = []
        for entry in entries:
            if isinstance(entry, StreamTuple):
                if entry.relation != relation:
                    raise ValueError(
                        f"pushed tuple belongs to relation {entry.relation!r}, "
                        f"expected {relation!r}"
                    )
                if records:
                    items.extend(make_tuples(relation, records, self._salt_rng, tuple_size))
                    records = []
                items.append(entry)
            else:
                records.append(entry)
        if records:
            items.extend(make_tuples(relation, records, self._salt_rng, tuple_size))
        return items

    def push(
        self,
        left: Iterable[StreamTuple | dict] = (),
        right: Iterable[StreamTuple | dict] = (),
        items: Sequence[StreamTuple] = (),
        run: bool = True,
    ) -> StreamSnapshot:
        if self.finished:
            raise RuntimeError("cannot push into a finished streaming session")
        query = self.operator.query
        chunk: list[StreamTuple] = []
        chunk.extend(self._coerce(left, query.left_relation, query.left_tuple_size))
        chunk.extend(self._coerce(right, query.right_relation, query.right_tuple_size))
        relations = (query.left_relation, query.right_relation)
        for item in items:
            if not isinstance(item, StreamTuple):
                raise TypeError("items= accepts StreamTuple objects only")
            if item.relation not in relations:
                raise ValueError(
                    f"pushed tuple belongs to relation {item.relation!r}, "
                    f"expected one of {relations}"
                )
            chunk.append(item)
        for item in chunk:
            self._ingest(item)
        if run:
            self.simulator.run()
        return self.snapshot()

    def _ingest(self, item: StreamTuple) -> None:
        arrival_time = self._pushed * self.inter_arrival
        item.arrival_time = arrival_time
        self._end_time = arrival_time
        self._pushed += 1
        destination = self._route_rng.choice(self.topology.reshuffler_names)
        if self.batch_size > 1:
            buffer = self._buffers.setdefault(destination, [])
            buffer.append(item)
            if len(buffer) >= self.batch_size:
                self._emit(destination, self._buffers.pop(destination), arrival_time)
        else:
            # schedule_data merges consecutive same-destination ingest
            # messages into DeliveryRuns when the simulator has wire-level
            # delivery merging enabled (falls back to schedule() otherwise).
            self.simulator.schedule_data(
                arrival_time,
                destination,
                DataEnvelope(
                    MessageKind.SOURCE, "__source__", item, 0, item.size
                ),
            )

    def _emit(self, destination: str, members: list[StreamTuple], emit_time: float) -> None:
        batch = TupleBatch(items=members)
        self.simulator.schedule_data(
            emit_time,
            destination,
            Message(
                kind=MessageKind.BATCH,
                sender="__source__",
                payload=batch,
                size=batch.size,
                meta={"inner": MessageKind.SOURCE},
            ),
        )

    # ----------------------------------------------------------- observation

    def snapshot(self) -> StreamSnapshot:
        simulator = self.simulator
        metrics = simulator.metrics
        virtual_time = simulator.now
        for machine in simulator.machines:
            virtual_time = max(virtual_time, machine.busy_until)
        controller = simulator.tasks[self.topology.controller_name]
        return StreamSnapshot(
            tuples_pushed=self._pushed,
            virtual_time=virtual_time,
            events_processed=simulator.events_processed,
            output_count=metrics.output_count,
            migrations=metrics.migration_count(),
            mapping=controller.mapping,
            max_ilf=simulator.max_machine_storage(),
            total_storage=simulator.total_storage(),
            probe_work=metrics.probe_work,
        )

    # ----------------------------------------------------------------- finish

    def finish(self) -> "RunResult":
        if self.finished:
            raise RuntimeError("streaming session already finished")
        # End-of-stream: flush partially filled micro-batches at the last
        # arrival time, exactly like ArrivalSchedule.batched_arrivals.
        for destination, buffer in self._buffers.items():
            self._emit(destination, buffer, self._end_time)
        self._buffers.clear()
        self.simulator.run()
        self.finished = True
        return self.operator.collect_result(self.simulator, self.topology, self._pushed)


class JoinSession:
    """Configured entry point for running the operator on workloads.

    Args:
        query: optional default workload, used when a run method is not given
            one explicitly (and as the schema of the streaming mode).
        operator: default operator kind (a name registered in
            :data:`repro.api.registry.operators`).
        config: the session's default :class:`RunConfig`.
        cost_model: optional cost-model override shared by all runs.
        **defaults: keyword overrides applied to ``config`` (constructor
            call-site beats the config object, mirroring run-time precedence).

    Example::

        session = JoinSession(config=RunConfig(machines=16, seed=7))
        result = session.run(query, operator="Dynamic")

        session.push(left=bid_chunk, right=ask_chunk)   # streaming mode
        snap = session.push(right=more_asks)
        final = session.finish()
    """

    def __init__(
        self,
        query: "JoinQuery | None" = None,
        *,
        operator: str = "Dynamic",
        config: RunConfig | None = None,
        cost_model: "CostModel | None" = None,
        **defaults: Any,
    ) -> None:
        self.query = query
        self.operator_kind = operator
        self.cost_model = cost_model
        self.config = (config or RunConfig()).with_overrides(**defaults)
        self._stream: _StreamingRun | None = None
        self._stream_finished = False

    # -------------------------------------------------------------- plumbing

    def _resolve_query(self, query: "JoinQuery | None") -> "JoinQuery":
        resolved = query if query is not None else self.query
        if resolved is None:
            raise ValueError("no query: pass one to the call or to JoinSession(...)")
        return resolved

    def operator(
        self,
        query: "JoinQuery | None" = None,
        *,
        kind: str | None = None,
        config: RunConfig | None = None,
        **overrides: Any,
    ) -> "GridJoinOperator":
        """Construct (without running) an operator under this session's config."""
        # build_operator splits off the operator-only kwargs itself; resolve
        # the base config here and pass everything through.
        base = self.config if config is None else config
        return build_operator(
            kind or self.operator_kind,
            self._resolve_query(query),
            base,
            cost_model=self.cost_model,
            **overrides,
        )

    # ------------------------------------------------------ materialised mode

    def run(
        self,
        query: "JoinQuery | None" = None,
        *,
        operator: str | None = None,
        config: RunConfig | None = None,
        arrival_order: Sequence[StreamTuple] | None = None,
        collect_outputs: bool = False,
        max_events: int | None = None,
        **overrides: Any,
    ) -> "RunResult":
        """Run one materialised workload end to end and return its result."""
        op = self.operator(query, kind=operator, config=config, **overrides)
        return op.run(
            arrival_order=arrival_order,
            collect_outputs=collect_outputs,
            max_events=max_events,
        )

    # --------------------------------------------------------- streaming mode

    @property
    def streaming(self) -> bool:
        """Whether a streaming run is currently open."""
        return self._stream is not None

    def open_stream(
        self,
        query: "JoinQuery | None" = None,
        *,
        operator: str | None = None,
        config: RunConfig | None = None,
        collect_outputs: bool = False,
        **overrides: Any,
    ) -> "JoinSession":
        """Open the incremental ingestion mode (idempotent via :meth:`push`).

        The query supplies the *schema* (relation names, predicate, tuple
        sizes); its materialised records, if any, are not fed — only data
        passed to :meth:`push` flows through the operator.
        """
        if self._stream is not None:
            raise RuntimeError("a streaming run is already open; finish() it first")
        op = self.operator(query, kind=operator, config=config, **overrides)
        self._stream = _StreamingRun(op, collect_outputs=collect_outputs)
        self._stream_finished = False
        return self

    def push(
        self,
        left: Iterable[StreamTuple | dict] = (),
        right: Iterable[StreamTuple | dict] = (),
        *,
        items: Sequence[StreamTuple] = (),
        run: bool = True,
    ) -> StreamSnapshot:
        """Feed a chunk of input into the streaming run and advance it.

        ``left`` / ``right`` accept raw records (dicts, salted and wrapped
        automatically) or pre-built :class:`StreamTuple` objects; ``items``
        accepts an explicitly interleaved :class:`StreamTuple` sequence.
        Within one push, arrivals are ordered left chunk, right chunk, then
        ``items`` — push smaller chunks (or use ``items``) to control
        interleaving.  With ``run=False`` the chunk is only enqueued; the
        simulation advances on the next running push or :meth:`finish`.

        The first push opens the stream lazily; after :meth:`finish` a new
        run must be opened explicitly via :meth:`open_stream` (a stray push
        would otherwise silently start a fresh, empty simulation).
        """
        if self._stream is None:
            if self._stream_finished:
                raise RuntimeError(
                    "the streaming run was finished; call open_stream() to start a new one"
                )
            self.open_stream()
        return self._stream.push(left, right, items, run=run)

    def snapshot(self) -> StreamSnapshot:
        """Mid-run metrics of the open streaming run."""
        if self._stream is None:
            raise RuntimeError("no streaming run is open")
        return self._stream.snapshot()

    def finish(self) -> "RunResult":
        """Flush pending micro-batches, drain the simulation, close the stream."""
        if self._stream is None:
            raise RuntimeError("no streaming run is open")
        stream, self._stream = self._stream, None
        self._stream_finished = True
        return stream.finish()
