"""One driver per table/figure of the paper's evaluation (§5).

Every driver returns an :class:`ExperimentReport` carrying machine-readable
rows/series plus a formatted plain-text rendition.  The pytest-benchmark
files under ``benchmarks/`` call these drivers with small scale factors; the
same drivers can be called with larger parameters for higher-fidelity runs.

The paper's absolute numbers (seconds on a 220-VM cluster) are not expected
to match — the substrate is a simulator — but the *shapes* are: who wins, by
roughly what factor, and where the crossovers fall.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.api import JoinSession, RunConfig, crash_after_events, drop
from repro.bench.harness import ExperimentConfig, build_query, run_single
from repro.bench.report import format_series, format_table
from repro.core.decision import competitive_ratio_bound
from repro.core.mapping import Mapping, optimal_mapping
from repro.data.queries import JoinQuery
from repro.engine.stream import fluctuating_order, make_tuples

#: The four skew settings of Table 2 (Z4 omitted by default to keep CI fast).
SKEW_LABELS = ["Z0", "Z1", "Z2", "Z3", "Z4"]

#: Queries reported in Figs. 6b/6d/7a/7b.
FIGURE_QUERIES = ["EQ5", "EQ7", "BNCI", "BCI"]


@dataclass
class ExperimentReport:
    """Result of one experiment driver."""

    name: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Table 2 — skew resilience (runtime under Z0..Z4)
# ---------------------------------------------------------------------------

def table2_skew_resilience(
    scale: float = 0.5,
    machines: int = 16,
    seed: int = 1,
    skews: list[str] | None = None,
    queries: list[str] | None = None,
    memory_capacity: float | None = None,
) -> ExperimentReport:
    """Table 2: runtime of SHJ / Dynamic / StaticMid for EQ5 and EQ7 under skew.

    A finite ``memory_capacity`` reproduces the starred entries (overflow to
    disk) of the paper's table: under skew, SHJ and StaticMid overload a few
    machines past the budget and pay the spill penalty.
    """
    skews = skews or SKEW_LABELS
    queries = queries or ["EQ5", "EQ7"]
    if memory_capacity is None:
        # Budget chosen so the optimal mapping fits comfortably but a skewed
        # hash-partitioned machine does not (mirrors the 2 GB heap of §5).
        probe = ExperimentConfig(machines=machines, scale=scale, skew=0.0, seed=seed)
        query = build_query(queries[0], probe)
        left, right = query.cardinalities
        memory_capacity = 3.0 * (left + right) / machines

    rows = []
    for skew in skews:
        row: dict[str, object] = {"zipf": skew}
        for query_name in queries:
            config = ExperimentConfig(
                machines=machines,
                scale=scale,
                skew=skew,
                seed=seed,
                memory_capacity=memory_capacity,
            )
            query = build_query(query_name, config)
            for operator_kind in ("SHJ", "Dynamic", "StaticMid"):
                result = run_single(operator_kind, query, config)
                label = f"{query_name}/{operator_kind}"
                star = "*" if result.spilled else ""
                row[label] = f"{result.execution_time:.0f}{star}"
        rows.append(row)
    text = format_table(
        rows,
        title=(
            "Table 2 — runtime (virtual time units) under skew; "
            "'*' marks overflow to disk"
        ),
    )
    return ExperimentReport(name="table2", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Fig. 6a / 6c — ILF growth and execution-time progress for EQ5
# ---------------------------------------------------------------------------

def _eq5_operator_runs(scale: float, machines: int, seed: int, skew: str):
    config = ExperimentConfig(machines=machines, scale=scale, skew=skew, seed=seed)
    query = build_query("EQ5", config)
    results = {}
    for operator_kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
        results[operator_kind] = run_single(operator_kind, query, config)
    return results


def fig6a_ilf_growth(
    scale: float = 0.5, machines: int = 16, seed: int = 1, skew: str = "Z4"
) -> ExperimentReport:
    """Fig. 6a: max per-machine ILF vs fraction of input processed (EQ5)."""
    results = _eq5_operator_runs(scale, machines, seed, skew)
    series = {kind: result.ilf_series for kind, result in results.items()}
    rows = [
        {
            "operator": kind,
            "final_max_ilf": round(result.max_ilf, 1),
            "growth_per_pct": round(result.max_ilf / 100.0, 2),
        }
        for kind, result in results.items()
    ]
    text = (
        format_table(rows, title="Fig. 6a — EQ5 input-load factor growth")
        + "\n"
        + format_series(series, x_label="fraction processed", y_label="max ILF per machine")
    )
    return ExperimentReport(name="fig6a", rows=rows, series=series, text=text)


def fig6c_execution_progress(
    scale: float = 0.5, machines: int = 16, seed: int = 1, skew: str = "Z4"
) -> ExperimentReport:
    """Fig. 6c: execution time vs fraction of input processed (EQ5)."""
    results = _eq5_operator_runs(scale, machines, seed, skew)
    series = {kind: result.progress_series for kind, result in results.items()}
    rows = [
        {"operator": kind, "total_execution_time": round(result.execution_time, 1)}
        for kind, result in results.items()
    ]
    text = (
        format_table(rows, title="Fig. 6c — EQ5 execution-time progress")
        + "\n"
        + format_series(series, x_label="fraction processed", y_label="virtual time")
    )
    return ExperimentReport(name="fig6c", rows=rows, series=series, text=text)


# ---------------------------------------------------------------------------
# Fig. 6b / 6d / 7a / 7b — per-query final ILF, storage, time, throughput, latency
# ---------------------------------------------------------------------------

def _per_query_runs(
    scale: float,
    machines: int,
    seed: int,
    queries: list[str] | None = None,
    operators: tuple[str, ...] = ("StaticMid", "Dynamic", "StaticOpt"),
    include_shj: bool = False,
    inter_arrival: float = 0.0,
    batching: str = "fixed",
):
    queries = queries or FIGURE_QUERIES
    runs: dict[str, dict[str, object]] = {}
    for query_name in queries:
        skew = "Z4" if query_name in ("EQ5", "EQ7") else "Z0"
        config = ExperimentConfig(
            machines=machines, scale=scale, skew=skew, seed=seed,
            inter_arrival=inter_arrival, batching=batching,
        )
        query = build_query(query_name, config)
        per_op = {}
        operator_list = list(operators)
        if include_shj and query.predicate.kind == "equi":
            operator_list = ["SHJ"] + operator_list
        for operator_kind in operator_list:
            per_op[operator_kind] = run_single(operator_kind, query, config)
        runs[query_name] = per_op
    return runs


def fig6b_final_ilf(
    scale: float = 0.5, machines: int = 16, seed: int = 1, queries: list[str] | None = None
) -> ExperimentReport:
    """Fig. 6b: final ILF per machine and total cluster storage, all queries."""
    runs = _per_query_runs(scale, machines, seed, queries)
    rows = []
    for query_name, per_op in runs.items():
        for operator_kind, result in per_op.items():
            rows.append(
                {
                    "query": query_name,
                    "operator": operator_kind,
                    "max_ilf": round(result.max_ilf, 1),
                    "total_cluster_storage": round(result.total_storage, 1),
                }
            )
    text = format_table(rows, title="Fig. 6b — final input-load factor and cluster storage")
    return ExperimentReport(name="fig6b", rows=rows, text=text)


def fig6d_total_execution_time(
    scale: float = 0.5, machines: int = 16, seed: int = 1, queries: list[str] | None = None
) -> ExperimentReport:
    """Fig. 6d: total execution time for every query and operator."""
    runs = _per_query_runs(scale, machines, seed, queries)
    rows = []
    for query_name, per_op in runs.items():
        for operator_kind, result in per_op.items():
            rows.append(
                {
                    "query": query_name,
                    "operator": operator_kind,
                    "execution_time": round(result.execution_time, 1),
                }
            )
    text = format_table(rows, title="Fig. 6d — total execution time")
    return ExperimentReport(name="fig6d", rows=rows, text=text)


def fig7a_throughput(
    scale: float = 0.5,
    machines: int = 16,
    seed: int = 1,
    queries: list[str] | None = None,
    batching: str = "fixed",
) -> ExperimentReport:
    """Fig. 7a: average operator throughput for every query and operator.

    ``batching="adaptive"`` runs the same figure on the adaptive data plane:
    identical numbers (bit-identical virtual times, pinned by the conformance
    suite), produced with far fewer simulator events.
    """
    runs = _per_query_runs(scale, machines, seed, queries, include_shj=True, batching=batching)
    rows = []
    for query_name, per_op in runs.items():
        for operator_kind, result in per_op.items():
            rows.append(
                {
                    "query": query_name,
                    "operator": operator_kind,
                    "throughput": round(result.throughput, 3),
                    "output_throughput": round(result.output_throughput, 3),
                }
            )
    text = format_table(rows, title="Fig. 7a — average operator throughput")
    return ExperimentReport(name="fig7a", rows=rows, text=text)


def _batch_trace(result) -> str:
    """Compact drained-run size histogram of one run ("size*count ..."), or
    "-" on the fixed plane.  Reported next to latency so batching-induced
    latency artefacts are visible in review: a trace full of deep runs under
    a paced workload would mean the controller is queueing tuples it should
    process immediately."""
    histogram = result.batch_histogram
    if not histogram:
        return "-"
    return " ".join(f"{size}*{count}" for size, count in sorted(histogram.items()))


def fig7b_latency(
    scale: float = 0.5,
    machines: int = 16,
    seed: int = 1,
    queries: list[str] | None = None,
    batching: str = "fixed",
) -> ExperimentReport:
    """Fig. 7b: average tuple latency for every query and operator.

    Arrivals are paced (non-zero inter-arrival gap) so that latency reflects
    processing and adaptation overhead rather than source-side queueing,
    matching the spirit of the paper's measurement.  Every row reports the
    run's batch-size trace alongside the latency (see :func:`_batch_trace`);
    under this paced workload an adaptive run's trace should collapse to
    (near-)per-tuple runs, keeping the latency semantics of the reference
    plane.
    """
    runs = _per_query_runs(
        scale, machines, seed, queries, inter_arrival=0.15, batching=batching
    )
    rows = []
    for query_name, per_op in runs.items():
        for operator_kind, result in per_op.items():
            rows.append(
                {
                    "query": query_name,
                    "operator": operator_kind,
                    "avg_latency": round(result.average_latency, 2),
                    "batch_trace": _batch_trace(result),
                }
            )
    text = format_table(rows, title="Fig. 7b — average tuple latency")
    return ExperimentReport(name="fig7b", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Fig. 7c / 7d — sweep over how far the optimal mapping is from (√J, √J)
# ---------------------------------------------------------------------------

def _resize_left(query: JoinQuery, target: int, seed: int) -> JoinQuery:
    """Return a copy of ``query`` whose left stream has ``target`` records.

    The paper varies the optimal mapping "by increasing the size of the
    smaller input stream"; records are replicated (with fresh dictionaries)
    or subsampled to reach the requested cardinality.
    """
    rng = random.Random(seed)
    source = query.left_records
    if not source:
        raise ValueError("cannot resize an empty left stream")
    if len(source) >= target:
        records = [dict(record) for record in source[:target]]
    else:
        records = [dict(record) for record in source]
        while len(records) < target:
            records.append(dict(rng.choice(source)))
    return JoinQuery(
        name=query.name,
        left_relation=query.left_relation,
        right_relation=query.right_relation,
        left_records=records,
        right_records=query.right_records,
        predicate=query.predicate,
        left_tuple_size=query.left_tuple_size,
        right_tuple_size=query.right_tuple_size,
        description=query.description,
    )


def fig7cd_mapping_sweep(
    scale: float = 0.5,
    machines: int = 16,
    seed: int = 1,
    operators: tuple[str, ...] = ("StaticMid", "Dynamic", "StaticOpt"),
) -> ExperimentReport:
    """Figs. 7c and 7d: final ILF and throughput as the optimal mapping varies.

    The left (smaller) stream of EQ5 is grown so that the optimal mapping
    moves from ``(1, J)`` towards the square ``(√J, √J)`` scheme, at which
    point StaticMid stops losing and Dynamic's advantage disappears — the
    crossover the paper highlights.
    """
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    base_query = build_query("EQ5", config)
    right_count = len(base_query.right_records)

    rows = []
    mapping_labels = []
    n = 1
    while n * n <= machines:
        target_mapping = Mapping(n, machines // n)
        # Choose |R| so that the optimal mapping is the target: |R|/n ≈ |S|/m.
        target_left = max(1, int(right_count * target_mapping.n / target_mapping.m))
        query = _resize_left(base_query, target_left, seed)
        label = str(target_mapping)
        mapping_labels.append(label)
        for operator_kind in operators:
            result = run_single(operator_kind, query, config)
            rows.append(
                {
                    "optimal_mapping": label,
                    "operator": operator_kind,
                    "max_ilf": round(result.max_ilf, 1),
                    "total_storage": round(result.total_storage, 1),
                    "throughput": round(result.throughput, 3),
                    "final_mapping": str(result.final_mapping),
                }
            )
        n *= 2
    text = format_table(
        rows,
        title="Figs. 7c/7d — ILF, storage and throughput across optimal mappings",
    )
    return ExperimentReport(name="fig7cd", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Fig. 8a / 8b — weak scalability (in-memory and out-of-core)
# ---------------------------------------------------------------------------

def fig8ab_weak_scaling(
    base_scale: float = 0.25,
    base_machines: int = 8,
    steps: int = 3,
    seed: int = 1,
    queries: tuple[str, ...] = ("EQ5", "EQ7", "BNCI"),
    out_of_core: bool = False,
) -> ExperimentReport:
    """Figs. 8a/8b: execution time and throughput as data and machines double.

    Configuration ``i`` uses ``base_scale · 2^i`` data on ``base_machines ·
    2^i`` joiners.  Perfect weak scaling keeps execution time constant and
    doubles throughput at each step; the replicated smaller relation makes the
    ILF grow slowly, so scaling is near-ideal but not perfect — exactly the
    effect §5.3 discusses.
    """
    rows = []
    for step in range(steps):
        scale = base_scale * (2 ** step)
        machines = base_machines * (2 ** step)
        for query_name in queries:
            config = ExperimentConfig(
                machines=machines, scale=scale, skew="Z0", seed=seed
            )
            query = build_query(query_name, config)
            if out_of_core:
                left, right = query.cardinalities
                config.memory_capacity = 0.5 * (left + right) / machines
            result = run_single("Dynamic", query, config)
            rows.append(
                {
                    "config": f"{scale:g}x/{machines}",
                    "query": query_name,
                    "mode": "out-of-core" if out_of_core else "in-memory",
                    "execution_time": round(result.execution_time, 1),
                    "throughput": round(result.throughput, 3),
                    "max_ilf": round(result.max_ilf, 1),
                    "spilled": result.spilled,
                }
            )
    mode = "out-of-core" if out_of_core else "in-memory"
    text = format_table(rows, title=f"Figs. 8a/8b — weak scalability ({mode})")
    return ExperimentReport(name="fig8ab", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Fig. 8c / 8d — data dynamics (fluctuating arrival ratios)
# ---------------------------------------------------------------------------

def fig8cd_fluctuations(
    scale: float = 0.5,
    machines: int = 16,
    seed: int = 1,
    fluctuation_factors: tuple[int, ...] = (2, 4, 6, 8),
    epsilon: float = 1.0,
) -> ExperimentReport:
    """Figs. 8c/8d: competitive ratio and progress under severe fluctuations.

    The cardinality aspect ratio of the two input streams alternates between
    ``k`` and ``1/k``; the operator starts adapting after a small warm-up
    (<1% of the input, as in §5.4).  The report gives, per ``k``, the maximum
    observed ILF/ILF* after adaptivity initiation, the number of migrations,
    and the execution-time progress series.
    """
    rows = []
    ratio_series: dict[str, list[tuple[float, float]]] = {}
    progress_series: dict[str, list[tuple[float, float]]] = {}
    for factor in fluctuation_factors:
        config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
        query = build_query("FLUCT_SYM", config)
        rng = random.Random(seed)
        left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
        right = make_tuples(
            query.right_relation, query.right_records, rng, query.right_tuple_size
        )
        total = len(left) + len(right)
        warmup = max(64, total // 100)
        order = fluctuating_order(left, right, fluctuation_factor=factor, warmup=warmup)
        session = JoinSession(
            query,
            config=RunConfig(
                machines=machines,
                seed=seed,
                epsilon=epsilon,
                warmup_tuples=float(warmup),
            ),
        )
        result = session.run(arrival_order=order)
        post_init = [ratio for processed, ratio in result.ratio_series if processed > warmup * 2]
        max_ratio = max(post_init) if post_init else result.max_competitive_ratio
        rows.append(
            {
                "fluctuation_k": factor,
                "migrations": result.migrations,
                "max_ILF_over_ILF*": round(max_ratio, 3),
                "theoretical_bound": round(competitive_ratio_bound(epsilon), 3),
                "execution_time": round(result.execution_time, 1),
            }
        )
        ratio_series[f"k={factor}"] = [
            (float(processed), ratio) for processed, ratio in result.ratio_series
        ]
        progress_series[f"k={factor}"] = result.progress_series
    text = (
        format_table(rows, title="Fig. 8c — ILF/ILF* under fluctuations")
        + "\n"
        + format_series(
            progress_series,
            x_label="fraction processed",
            y_label="virtual time",
            title="Fig. 8d — execution-time progress under fluctuations",
        )
    )
    return ExperimentReport(
        name="fig8cd", rows=rows, series={**ratio_series, **progress_series}, text=text
    )


# ---------------------------------------------------------------------------
# Data-plane batching — micro-benchmark of the micro-batched message path
# ---------------------------------------------------------------------------

def dataplane_batching(
    scale: float = 0.4,
    machines: int = 16,
    seed: int = 1,
    batch_sizes: tuple[int, ...] = (1, 8, 64, 256),
    query_name: str = "EQ5",
    skew: str = "Z4",
) -> ExperimentReport:
    """Sweep the data-plane micro-batch size and report simulator efficiency.

    For each ``batch_size`` the Dynamic operator runs the same workload; the
    report gives the simulator events processed, the wall-clock time of the
    run, and the derived events/sec and tuples/sec rates.  Output counts must
    be identical across the sweep — batching is a transport optimisation.
    """
    config = ExperimentConfig(machines=machines, scale=scale, skew=skew, seed=seed)
    query = build_query(query_name, config)
    rows = []
    baseline_outputs: int | None = None
    for batch_size in batch_sizes:
        config.batch_size = batch_size
        start = time.perf_counter()
        result = run_single("Dynamic", query, config)
        wall = time.perf_counter() - start
        if baseline_outputs is None:
            baseline_outputs = result.output_count
        elif result.output_count != baseline_outputs:
            raise AssertionError(
                f"batch_size={batch_size} changed the output count "
                f"({result.output_count} != {baseline_outputs})"
            )
        tuples = len(query.left_records) + len(query.right_records)
        rows.append(
            {
                "batch_size": batch_size,
                "events_processed": result.events_processed,
                "wall_seconds": round(wall, 4),
                "events_per_sec": round(result.events_processed / wall) if wall > 0 else 0,
                "tuples_per_sec": round(tuples / wall) if wall > 0 else 0,
                "output_count": result.output_count,
                "migrations": result.migrations,
            }
        )
    text = format_table(
        rows,
        title=(
            f"Data-plane batching sweep — {query_name}@{skew}, "
            f"{machines} joiners (Dynamic)"
        ),
    )
    return ExperimentReport(name="dataplane_batching", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Ablations — design choices called out in DESIGN.md
# ---------------------------------------------------------------------------

def ablation_epsilon(
    scale: float = 0.4,
    machines: int = 16,
    seed: int = 1,
    epsilons: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> ExperimentReport:
    """Theorem 4.2 trade-off: smaller ε adapts more eagerly (lower ILF ratio,
    more migration traffic)."""
    rows = []
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    query = build_query("EQ5", config)
    for epsilon in epsilons:
        session = JoinSession(
            query, config=RunConfig(machines=machines, seed=seed, epsilon=epsilon)
        )
        result = session.run(arrival_pattern="s_first")
        rows.append(
            {
                "epsilon": epsilon,
                "ratio_bound": round(competitive_ratio_bound(epsilon), 3),
                "migrations": result.migrations,
                "migration_volume": round(result.migration_volume, 1),
                "execution_time": round(result.execution_time, 1),
            }
        )
    text = format_table(rows, title="Ablation — ε trade-off (Theorem 4.2)")
    return ExperimentReport(name="ablation_epsilon", rows=rows, text=text)


def ablation_migration_strategy(
    scale: float = 0.4, machines: int = 16, seed: int = 1
) -> ExperimentReport:
    """Locality-aware (dyadic) vs naive (row-major) state relocation traffic."""
    rows = []
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    query = build_query("EQ5", config)
    for layout in ("dyadic", "row_major"):
        session = JoinSession(
            query, config=RunConfig(machines=machines, seed=seed, layout=layout)
        )
        result = session.run(arrival_pattern="s_first")
        rows.append(
            {
                "layout": layout,
                "migrations": result.migrations,
                "migration_volume": round(result.migration_volume, 1),
                "execution_time": round(result.execution_time, 1),
            }
        )
    text = format_table(rows, title="Ablation — locality-aware vs naive migration")
    return ExperimentReport(name="ablation_migration", rows=rows, text=text)


def ablation_blocking(
    scale: float = 0.4, machines: int = 16, seed: int = 1
) -> ExperimentReport:
    """Non-blocking epoch protocol (Alg. 3) vs stall-the-world actuation."""
    rows = []
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    query = build_query("EQ5", config)
    for blocking in (False, True):
        session = JoinSession(
            query, config=RunConfig(machines=machines, seed=seed, blocking=blocking)
        )
        result = session.run(arrival_pattern="s_first")
        rows.append(
            {
                "actuation": "blocking" if blocking else "non-blocking",
                "migrations": result.migrations,
                "execution_time": round(result.execution_time, 1),
                "avg_latency": round(result.average_latency, 2),
            }
        )
    text = format_table(rows, title="Ablation — blocking vs non-blocking actuation")
    return ExperimentReport(name="ablation_blocking", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Fault tolerance — checkpoint cadence vs recovery cost
# ---------------------------------------------------------------------------

def recovery_sweep(
    scale: float = 0.4,
    machines: int = 16,
    seed: int = 1,
    intervals: tuple[int | None, ...] = (None, 25, 100, 400),
) -> ExperimentReport:
    """Checkpoint-cadence trade-off under a mid-run joiner crash.

    A fault-free baseline first measures the run's event count; every swept
    configuration then crashes one joiner at the halfway point and recovers
    it through the checkpoint store.  Frequent snapshots (small interval)
    shorten the journal recovery must replay but write more checkpoint bytes
    during normal operation; ``interval=None`` journals without ever
    snapshotting, so recovery replays the machine's whole history.  Output
    counts must match the fault-free baseline on every row — recovery is a
    correctness mechanism, not an approximation.
    """
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    query = build_query("EQ5", config)
    baseline = JoinSession(
        query, config=RunConfig(machines=machines, seed=seed)
    ).run()
    anchor = max(1, baseline.events_processed // 2)
    schedule = [crash_after_events(machines // 2, anchor)]
    rows = [
        {
            "checkpoint_interval": "fault-free",
            "faults": 0,
            "recovery_time": 0.0,
            "tuples_replayed": 0,
            "checkpoint_kb": 0.0,
            "execution_time": round(baseline.execution_time, 1),
            "output_count": baseline.output_count,
        }
    ]
    for interval in intervals:
        run_config = RunConfig(
            machines=machines,
            seed=seed,
            checkpoint_interval=interval,
            fault_schedule=schedule,
        )
        result = JoinSession(query, config=run_config).run()
        if result.output_count != baseline.output_count:
            raise AssertionError(
                f"checkpoint_interval={interval} changed the output count "
                f"({result.output_count} != {baseline.output_count})"
            )
        rows.append(
            {
                "checkpoint_interval": "journal-only" if interval is None else interval,
                "faults": result.faults_injected,
                "recovery_time": round(result.recovery_time, 2),
                "tuples_replayed": result.tuples_replayed,
                "checkpoint_kb": round(result.checkpoint_overhead / 1024.0, 1),
                "execution_time": round(result.execution_time, 1),
                "output_count": result.output_count,
            }
        )
    text = format_table(
        rows,
        title=(
            f"Recovery sweep — EQ5@Z0, {machines} joiners, crash at "
            f"{anchor} events (Dynamic)"
        ),
    )
    return ExperimentReport(name="recovery_sweep", rows=rows, text=text)


# ---------------------------------------------------------------------------
# Unreliable wire — drop rate vs retransmit overhead
# ---------------------------------------------------------------------------

def _uniform_drop_schedule(
    machines: int, rate: float, seed: int, horizon: int = 400
) -> tuple:
    """A deterministic stand-in for a uniform loss rate: an independently
    seeded Bernoulli(``rate``) coin per (directed link, nth) pair, out to
    ``horizon`` frames per link.  Specs whose ``nth`` exceeds a link's actual
    traffic are no-ops, so the horizon only needs to cover the busiest
    link."""
    if rate <= 0.0:
        return ()
    rng = random.Random(f"lossy-wire:{seed}:{rate}")
    return tuple(
        drop((sender, receiver), nth)
        for sender in range(machines)
        for receiver in range(machines)
        if sender != receiver
        for nth in range(1, horizon + 1)
        if rng.random() < rate
    )


def lossy_wire_sweep(
    scale: float = 0.3,
    machines: int = 8,
    seed: int = 1,
    drop_rates: tuple[float, ...] = (0.0, 0.01, 0.05),
) -> ExperimentReport:
    """Completion time and retransmit overhead under uniform frame loss.

    Sweeps deterministic drop schedules approximating 0/1/5 % loss on every
    link.  The reliable-delivery sublayer must mask every schedule — the
    output count is asserted equal to the clean wire's on every row — while
    the retransmit counters and the execution-time slowdown quantify what the
    masking costs.
    """
    config = ExperimentConfig(machines=machines, scale=scale, skew="Z0", seed=seed)
    query = build_query("EQ5", config)
    rows = []
    baseline = None
    for rate in drop_rates:
        # Per-tuple batching: one frame per tuple keeps per-link sequence
        # numbers dense enough for the stride schedule to approximate the
        # target loss rate.
        run_config = RunConfig(
            machines=machines,
            seed=seed,
            batch_size=1,
            network_faults=_uniform_drop_schedule(machines, rate, seed),
        )
        result = JoinSession(query, config=run_config).run()
        if baseline is None:
            baseline = result
        elif result.output_count != baseline.output_count:
            raise AssertionError(
                f"drop rate {rate} changed the output count "
                f"({result.output_count} != {baseline.output_count})"
            )
        sent = (result.wire_counters or {}).get("sent", 0)
        rows.append(
            {
                "drop_rate": f"{rate:.0%}" if rate else "clean",
                "dropped": result.messages_dropped,
                "retransmitted": result.messages_retransmitted,
                "retransmit_pct": (
                    round(100.0 * result.messages_retransmitted / sent, 2)
                    if sent
                    else 0.0
                ),
                "execution_time": round(result.execution_time, 1),
                "slowdown": round(
                    result.execution_time / baseline.execution_time, 3
                ),
                "output_count": result.output_count,
            }
        )
    text = format_table(
        rows,
        title=f"Lossy wire sweep — EQ5@Z0, {machines} joiners, uniform drop rates",
    )
    return ExperimentReport(name="lossy_wire_sweep", rows=rows, text=text)
