"""``python -m repro.bench`` — run the experiment drivers from the command line."""

from repro.bench.cli import main

main()
