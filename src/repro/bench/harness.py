"""Workload × operator execution harness.

The harness is a thin adapter between the experiment drivers and the public
:mod:`repro.api` session layer: :class:`ExperimentConfig` combines the
dataset knobs (scale, skew) with a :class:`~repro.api.config.RunConfig`, and
:func:`run_single` executes through a :class:`~repro.api.session.JoinSession`
— no operator is constructed outside ``repro.api`` anywhere in the bench
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.api import JoinSession, RunConfig, batch_controllers
from repro.api.session import OPERATOR_ONLY_KWARGS
from repro.core.results import RunResult
from repro.data.queries import JoinQuery, make_query
from repro.data.tpch import generate_dataset
from repro.engine.machine import CostModel


@dataclass
class ExperimentConfig:
    """Shared knobs of one experiment run.

    Attributes:
        machines: number of joiners.
        scale: dataset scale factor (1.0 ≈ the paper's 10 GB dataset shrunk).
        skew: Zipf parameter or label ("Z0".."Z4").
        seed: base seed for data generation and simulation.
        memory_capacity: per-machine storage budget (None = unbounded);
            finite values reproduce the disk-spill behaviour of Table 2.
        cost_model: optional cost-model override.
        inter_arrival: source pacing (0 = joiners fully utilised).
        batch_size: fixed-plane micro-batch size.  Defaults to 1 — the
            figure/table drivers regenerate the paper's evaluation, whose
            reference semantics are per-tuple (fixed batching shifts the
            epoch edge by up to batch_size tuples per reshuffler, which moves
            marginal virtual-time comparisons at benchmark scales).  Pass
            ``None`` for the operator's tuned batched default, or an explicit
            size.  Ignored (forced to None) when ``batching="adaptive"``.
        batching: batching plane.  ``"adaptive"`` lets figure drivers run
            batched *at reference semantics*: results and virtual times are
            bit-identical to ``batch_size=1`` (pinned by
            ``tests/test_adaptive_conformance.py``), only wall-clock and
            simulator-event counts change.
        batch_max: adaptive-plane run-size cap (``None`` = controller default).
        executor: execution backend ("simulated" or "threads").  Results are
            backend-invariant (pinned by ``tests/test_executor_conformance.py``);
            the summary rows carry an ``executor`` column so labelled
            breadcrumbs can compare wall-clock across backends.
        num_workers: worker-fleet size for parallel executors (``None`` =
            one worker per machine; must stay None for ``"simulated"``).
        operator_kwargs: extra :class:`RunConfig` field overrides (and the
            operator-specific ``adaptive`` / ``initial_mapping``) applied to
            every run under this config — e.g. ``{"delivery_merging": False}``
            to benchmark the adaptive plane on the unmerged wire.
    """

    machines: int = 16
    scale: float = 0.5
    skew: float | str = 0.0
    seed: int = 1
    memory_capacity: float | None = None
    cost_model: CostModel | None = None
    inter_arrival: float = 0.0
    batch_size: int | None = 1
    batching: str = "fixed"
    batch_max: int | None = None
    executor: str = "simulated"
    num_workers: int | None = None
    operator_kwargs: dict = field(default_factory=dict)

    def run_config(self) -> RunConfig:
        """The :class:`RunConfig` this experiment configuration denotes.

        ``operator_kwargs`` entries naming RunConfig fields are folded in;
        operator-specific extras (``adaptive``, ``initial_mapping``) are left
        to :meth:`session`'s call-site overrides.
        """
        # Classify the plane by the registered controller's contract (not by
        # name): only draining planes reject batch_size / accept batch_max.
        controller_class = batch_controllers.get(self.batching)
        drains = bool(getattr(controller_class, "drains", False))
        config = RunConfig(
            machines=self.machines,
            seed=self.seed,
            memory_capacity=self.memory_capacity,
            inter_arrival=self.inter_arrival,
            # The adaptive plane sizes its runs dynamically; batch_size is a
            # fixed-plane knob (RunConfig rejects the combination).
            batch_size=None if drains else self.batch_size,
            batching=self.batching,
            batch_max=self.batch_max if drains else None,
            executor=self.executor,
            num_workers=self.num_workers,
        )
        config_overrides = {
            key: value
            for key, value in self.operator_kwargs.items()
            if key not in OPERATOR_ONLY_KWARGS
        }
        return config.with_overrides(**config_overrides)

    def extra_operator_kwargs(self) -> dict:
        """The operator-specific (non-RunConfig) overrides, if any."""
        return {
            key: value
            for key, value in self.operator_kwargs.items()
            if key in OPERATOR_ONLY_KWARGS
        }

    def session(self, query: JoinQuery | None = None, operator: str = "Dynamic") -> JoinSession:
        """A :class:`JoinSession` configured for this experiment."""
        return JoinSession(
            query,
            operator=operator,
            config=self.run_config(),
            cost_model=self.cost_model,
        )


def build_query(name: str, config: ExperimentConfig) -> JoinQuery:
    """Generate the dataset and build query ``name`` for ``config``."""
    dataset = generate_dataset(scale=config.scale, skew=config.skew, seed=config.seed)
    return make_query(name, dataset)


def run_single(
    operator_kind: str,
    query: JoinQuery,
    config: ExperimentConfig,
    **run_kwargs,
) -> RunResult:
    """Run one operator on one query under ``config`` (via :mod:`repro.api`)."""
    session = config.session(query, operator=operator_kind)
    return session.run(**config.extra_operator_kwargs(), **run_kwargs)


def run_matrix(
    operator_kinds: Sequence[str],
    query_names: Sequence[str],
    config: ExperimentConfig,
    skews: Iterable[float | str] | None = None,
    **run_kwargs,
) -> list[RunResult]:
    """Run the cross product operators × queries × skews.

    SHJ is skipped automatically for non-equi queries (the paper's Table 2
    and figures only report it where applicable).
    """
    results: list[RunResult] = []
    skew_values = list(skews) if skews is not None else [config.skew]
    for skew in skew_values:
        local_config = ExperimentConfig(
            machines=config.machines,
            scale=config.scale,
            skew=skew,
            seed=config.seed,
            memory_capacity=config.memory_capacity,
            cost_model=config.cost_model,
            inter_arrival=config.inter_arrival,
            batch_size=config.batch_size,
            batching=config.batching,
            batch_max=config.batch_max,
            operator_kwargs=dict(config.operator_kwargs),
        )
        for query_name in query_names:
            query = build_query(query_name, local_config)
            for operator_kind in operator_kinds:
                if operator_kind == "SHJ" and query.predicate.kind != "equi":
                    continue
                result = run_single(operator_kind, query, local_config, **run_kwargs)
                result.query = f"{query_name}@{skew}" if len(skew_values) > 1 else query_name
                results.append(result)
    return results
