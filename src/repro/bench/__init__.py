"""Experiment harness: regenerates every table and figure of the paper's §5.

:mod:`repro.bench.harness` runs operators on workloads and collects
:class:`~repro.core.results.RunResult` rows; :mod:`repro.bench.experiments`
contains one driver per table/figure; :mod:`repro.bench.report` renders the
rows in the same layout the paper uses (rows of Table 2, series of each
figure).

The drivers are deliberately parameterised by ``scale`` and ``machines`` so
that the shapes can be validated quickly in CI (small scale) and more
faithfully offline (larger scale); the pytest-benchmark files under
``benchmarks/`` call them with small defaults.
"""

from repro.bench.harness import ExperimentConfig, run_matrix, run_single
from repro.bench.report import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "format_series",
    "format_table",
    "run_matrix",
    "run_single",
]
