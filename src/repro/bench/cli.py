"""Command-line entry point for the experiment drivers.

Run any table/figure of the paper's evaluation directly, without pytest::

    python -m repro.bench table2 --scale 0.5 --machines 16
    python -m repro.bench fig6a fig6d --scale 0.4
    python -m repro.bench all --scale 0.25 --machines 8
    python -m repro.bench fig7a --config run-config.json

The output is the same plain-text report the corresponding benchmark prints.

``--config`` loads a serialised :class:`repro.api.RunConfig` (the format
:meth:`RunConfig.to_dict` emits, e.g. a ``run_config`` block of a CI
``perf-breadcrumb.json``): its ``machines`` / ``seed`` become the drivers'
defaults, overridable by the explicit ``--machines`` / ``--seed`` flags.
The figure drivers pin their remaining knobs themselves (they regenerate the
paper's evaluation, e.g. ``batch_size=1`` reference semantics), so any other
non-default field in the file is reported as ignored; to run an arbitrary
config programmatically, use :class:`repro.api.JoinSession` directly.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Callable

from repro.api import RunConfig
from repro.bench import experiments

#: Experiment name -> driver function.
DRIVERS: dict[str, Callable[..., experiments.ExperimentReport]] = {
    "table2": experiments.table2_skew_resilience,
    "fig6a": experiments.fig6a_ilf_growth,
    "fig6b": experiments.fig6b_final_ilf,
    "fig6c": experiments.fig6c_execution_progress,
    "fig6d": experiments.fig6d_total_execution_time,
    "fig7a": experiments.fig7a_throughput,
    "fig7b": experiments.fig7b_latency,
    "fig7cd": experiments.fig7cd_mapping_sweep,
    "fig8ab": experiments.fig8ab_weak_scaling,
    "fig8cd": experiments.fig8cd_fluctuations,
    "batching": experiments.dataplane_batching,
    "ablation-epsilon": experiments.ablation_epsilon,
    "ablation-migration": experiments.ablation_migration_strategy,
    "ablation-blocking": experiments.ablation_blocking,
    "recovery": experiments.recovery_sweep,
    "lossy-wire": experiments.lossy_wire_sweep,
}


def _supported_kwargs(driver: Callable, candidate_kwargs: dict) -> dict:
    """Keep only the keyword arguments the driver actually accepts."""
    parameters = inspect.signature(driver).parameters
    return {key: value for key, value in candidate_kwargs.items() if key in parameters}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures of 'Scalable and Adaptive Online Joins' (VLDB 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(sorted(DRIVERS))}, or 'all'",
    )
    parser.add_argument("--scale", type=float, default=0.4, help="dataset scale factor")
    parser.add_argument(
        "--machines", type=int, default=None, help="number of joiners (power of two)"
    )
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument(
        "--config",
        metavar="FILE.json",
        default=None,
        help="load a serialised repro.api.RunConfig; explicit flags override it",
    )
    return parser


def run(argv: list[str] | None = None) -> list[experiments.ExperimentReport]:
    """Parse ``argv``, run the requested experiments and print their reports."""
    parser = build_parser()
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if "all" in names:
        names = sorted(DRIVERS)
    unknown = [name for name in names if name not in DRIVERS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    base = RunConfig(machines=16, seed=1)
    if args.config is not None:
        try:
            base = RunConfig.from_file(args.config)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load --config {args.config}: {exc}")
        ignored = {
            name: value
            for name, value in base.to_dict().items()
            if name not in ("machines", "seed") and value != getattr(RunConfig(), name)
        }
        if ignored:
            print(
                "note: the figure drivers pin their own run knobs; ignoring "
                f"non-default --config field(s): {', '.join(sorted(ignored))}"
            )
    machines = args.machines if args.machines is not None else base.machines
    seed = args.seed if args.seed is not None else base.seed
    shared = {"scale": args.scale, "machines": machines, "seed": seed}
    reports = []
    for name in names:
        driver = DRIVERS[name]
        if name == "fig8ab":
            # weak scaling is parameterised by its base configuration
            kwargs = _supported_kwargs(
                driver,
                {"base_scale": args.scale / 2, "base_machines": max(4, machines // 2), "seed": seed},
            )
        else:
            kwargs = _supported_kwargs(driver, shared)
        report = driver(**kwargs)
        print(report.text)
        print()
        reports.append(report)
    return reports


def main() -> None:  # pragma: no cover - thin wrapper
    run()


if __name__ == "__main__":  # pragma: no cover
    main()
