"""Plain-text rendering of experiment results (tables and figure series)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dicts) as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    max_points: int = 12,
) -> str:
    """Render named (x, y) series as a compact plain-text listing.

    Long series are downsampled to at most ``max_points`` evenly spaced
    points so that benchmark output stays readable.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label} -> {y_label}")
    for name, points in series.items():
        points = list(points)
        if len(points) > max_points:
            step = max(1, len(points) // max_points)
            points = points[::step] + points[-1:]
        rendered = ", ".join(f"({x:.3g}, {y:.4g})" for x, y in points)
        lines.append(f"  {name}: {rendered}")
    return "\n".join(lines)
