"""Reshuffler, controller and joiner tasks of the dataflow operator (Fig. 1c).

These are the actors that run inside the simulated cluster.  Each machine
hosts one reshuffler and one joiner.  One reshuffler is additionally the
*controller*: it maintains the decentralised statistics of Algorithm 1,
runs the migration decision of Algorithm 2 and coordinates the epoch changes
of Algorithm 3.  The joiners run a local non-blocking join wrapped in the
:class:`~repro.core.epochs.EpochJoinerState` protocol state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import probe_engines
from repro.core.decision import MigrationController
from repro.core.epochs import EpochJoinerState, JoinerPhase, TupleActions
from repro.core.mapping import GridPlacement, Mapping
from repro.core.migration import MigrationPlan, plan_migration
from repro.engine.columns import np
from repro.engine.network import TrafficCategory
from repro.engine.stream import StreamTuple, TupleBatch
from repro.engine.task import Context, DataEnvelope, Message, MessageKind, Task
from repro.joins.local import make_local_joiner
from repro.joins.predicates import JoinPredicate

#: Per-destination send groups accumulated while one handler invocation
#: processes a micro-batch.  Reshufflers key groups by (machine, epoch) so a
#: batch is split at the epoch edge; joiner migration groups key by machine.
RouteGroups = dict[tuple[int, int], list[StreamTuple]]


def _envelope(
    items: list[StreamTuple],
    inner: MessageKind,
    sender: str,
    epoch: int = 0,
    meta: dict | None = None,
) -> Message:
    """Wrap grouped tuples for one destination: a plain per-tuple message for
    a singleton, a BATCH carrying a :class:`TupleBatch` otherwise."""
    if len(items) == 1:
        if not meta:
            # Meta-free singletons (routed DATA) ride the slim envelope.
            return DataEnvelope(inner, sender, items[0], epoch, items[0].size)
        return Message(
            kind=inner,
            sender=sender,
            payload=items[0],
            epoch=epoch,
            size=items[0].size,
            meta=dict(meta),
        )
    batch = TupleBatch(items=items)
    full_meta = {"inner": inner}
    if meta:
        full_meta.update(meta)
    return Message(
        kind=MessageKind.BATCH,
        sender=sender,
        payload=batch,
        epoch=epoch,
        size=batch.size,
        meta=full_meta,
    )


@dataclass
class Topology:
    """Shared, static description of the operator's topology.

    The mutable ``plan_cache`` only memoises deterministic computations
    (every joiner derives the same plan from the same pair of mappings), so
    sharing it across tasks does not leak run-time state between machines.
    """

    machines: int
    left_relation: str
    right_relation: str
    predicate: JoinPredicate
    left_size: float = 1.0
    right_size: float = 1.0
    layout: str = "dyadic"
    joiner_names: list[str] = field(default_factory=list)
    reshuffler_names: list[str] = field(default_factory=list)
    controller_name: str = ""
    plan_cache: dict[tuple[tuple[int, int], tuple[int, int]], MigrationPlan] = field(
        default_factory=dict
    )
    placement_cache: dict[tuple[int, int], GridPlacement] = field(default_factory=dict)

    def joiner(self, machine_id: int) -> str:
        """Name of the joiner task hosted on ``machine_id``."""
        return self.joiner_names[machine_id]

    def placement(self, mapping: Mapping) -> GridPlacement:
        """Grid placement for ``mapping`` over this topology's machines."""
        key = (mapping.n, mapping.m)
        if key not in self.placement_cache:
            self.placement_cache[key] = GridPlacement(
                mapping=mapping,
                machine_ids=tuple(range(self.machines)),
                layout=self.layout,
            )
        return self.placement_cache[key]

    def plan(self, old_mapping: Mapping, new_mapping: Mapping) -> MigrationPlan:
        """Locality-aware migration plan between two mappings (memoised)."""
        key = ((old_mapping.n, old_mapping.m), (new_mapping.n, new_mapping.m))
        if key not in self.plan_cache:
            self.plan_cache[key] = plan_migration(
                self.placement(old_mapping), self.placement(new_mapping)
            )
        return self.plan_cache[key]


class ReshufflerTask(Task):
    """Routes incoming tuples to joiners; the controller instance also adapts.

    Args:
        name: task name.
        machine_id: hosting machine.
        topology: shared topology description.
        initial_mapping: the (n, m) scheme in force at start-up.
        controller: the Algorithm 2 state — only the controller reshuffler
            carries one; ``None`` for the others.
        adaptive: when False the mapping never changes (static operators).
        blocking: when True, models the blocking actuation protocol the paper
            argues against (§4.3): input is buffered while a migration runs.
        sample_every: record ILF / ratio samples every this many tuples seen
            by this task (controller only).
        expected_inputs: total number of input tuples (for progress metrics).
        batch_size: size of the micro-batches of the batched data plane;
            ``1`` selects the legacy per-tuple message path.
    """

    def __init__(
        self,
        name: str,
        machine_id: int,
        topology: Topology,
        initial_mapping: Mapping,
        controller: MigrationController | None = None,
        adaptive: bool = True,
        blocking: bool = False,
        sample_every: int = 200,
        expected_inputs: int = 0,
        batch_size: int = 1,
    ) -> None:
        super().__init__(name, machine_id)
        self.topology = topology
        self.mapping = initial_mapping
        self.controller = controller
        self.adaptive = adaptive
        self.blocking = blocking
        self.sample_every = max(1, sample_every)
        self.expected_inputs = expected_inputs
        self.batch_size = max(1, batch_size)

        self.epoch = 0
        self.migration_in_flight = False
        self.acks_received = 0
        self.buffering = False
        self._buffer: list[StreamTuple] = []
        self._seen = 0
        # The controller samples run-wide state mid-handler (processed-input
        # totals, cluster peak storage for the ILF series), so its handlers
        # must see every prior handler's effects applied: parallel backends
        # serialise them as barriers.  Plain reshufflers stay machine-local.
        if controller is not None:
            self.reads_global_state = True

    #: Recovery journal (fault-tolerant plane only; see repro.core.recovery).
    #: Protocol-critical transitions are journaled as deltas so a restored
    #: reshuffler resumes with the exact epoch/mapping/ack state.
    _journal = None

    # -------------------------------------------------------------- handling

    @property
    def is_controller(self) -> bool:
        return self.controller is not None

    def handle(self, message: Message, ctx: Context) -> None:
        if message.kind is MessageKind.BATCH:
            self._handle_source_batch(message, ctx)
        elif message.kind is MessageKind.SOURCE:
            self._handle_source(message.payload, ctx)
        elif message.kind is MessageKind.MAPPING_CHANGE:
            self._handle_mapping_change(message, ctx)
        elif message.kind is MessageKind.MIGRATION_ACK:
            self._handle_ack(message, ctx)
        elif message.kind is MessageKind.RESUME:
            self._handle_resume(ctx)
        else:
            raise ValueError(f"reshuffler {self.name} cannot handle {message.kind}")
        if self._journal is not None:
            self._journal.maybe_snapshot(self)

    def _handle_source_batch(self, message: Message, ctx: Context) -> None:
        if message.meta.get("inner") is not MessageKind.SOURCE:
            raise ValueError(
                f"reshuffler {self.name} can only handle SOURCE batches, "
                f"got inner kind {message.meta.get('inner')}"
            )
        routes: RouteGroups = {}
        # Destination-grouped emission: the mapping and epoch are fixed for
        # the whole invocation, so each (side, partition) resolves its grid
        # placement and per-destination route lists once; subsequent members
        # of the same partition append straight into those lists.
        dest_cache: dict = {}
        for item in message.payload:
            self._handle_source(item, ctx, routes, dest_cache)
        self._flush_routes(routes, ctx)

    # ---------------------------------------------------- adaptive data plane

    def drain_key(self, message: Message):
        """SOURCE runs are drainable whenever the reshuffler is not buffering.

        Static operators (``adaptive=False``) never change mappings, so their
        reshufflers drain source backlogs without any protocol interaction.
        An adaptive operator's reshufflers receive MAPPING_CHANGE control
        messages whose effect (epoch/mapping switch) must land *between* two
        source tuples exactly where the per-tuple plane puts it — their
        drained runs are therefore truncated at the control-plane drain
        horizon (see :meth:`handle_drained`), behind which no control message
        can exist yet.  The blocking protocol's buffered-resume path charges
        CPU from a control handler and stays per-tuple.
        """
        if message.kind is MessageKind.SOURCE and not self.blocking:
            return -1  # any non-None constant: all source tuples coalesce
        return None

    def handle_drained(self, first: Message, inbox, limit: int, key, ctx: Context) -> int:
        """Route one drained run of source tuples with hoisted lookups.

        Per-member semantics are identical to :meth:`_handle_source`: every
        member still sends its own per-tuple DATA messages at its own
        boundary-rotated departure time, keeping the wire identical to
        per-tuple handling, and each (side, partition) resolves its
        destinations once (the mapping cannot change inside a run — see
        below).  On an adaptive operator the pull stops at the control-plane
        drain horizon, re-checked before every member: a member may only be
        coalesced if its start precedes every virtual time at which a
        mapping change or migration ack could land on this machine, so the
        mapping/epoch/in-flight state any member observes — and the point in
        the stream where a control message takes effect — match the
        per-tuple plane exactly.
        """
        machine = ctx.machine
        reshuffle_cost = machine.cost_model.reshuffle_cost if machine else 0.0
        record_input = ctx.metrics.record_input_processed
        left_relation = self.topology.left_relation
        is_controller = self.is_controller
        route = self._route
        boundaries = ctx.drain_boundaries
        horizon_fn = ctx.drain_horizon if self.adaptive else None
        # Only the controller can create new control-plane messages while
        # this run executes (its own members may trigger a migration); for
        # every other reshuffler the horizon is constant over the run.
        horizon = None
        if horizon_fn is not None and not is_controller:
            horizon, horizon_fn = horizon_fn(), None
        dest_cache: dict = {}
        source_kind = MessageKind.SOURCE
        count = 0
        message = first
        while True:
            item = message.payload
            # Members start with a clean charge (the boundary commit resets
            # it), so the member's routing charge is a direct store.
            ctx.charged = reshuffle_cost
            is_left = item.relation == left_relation
            self._seen += 1
            record_input(ctx.now)
            if is_controller:
                self._controller_duties(item, is_left, ctx)
            route(item, is_left, ctx, None, dest_cache)
            # Inline Context.boundary: commit the member's charge to the busy
            # chain with exactly the per-tuple occupy arithmetic.
            end = ctx.now + ctx.charged
            machine.busy_until = end
            machine.busy_time += ctx.charged
            ctx.now = end
            ctx.charged = 0.0
            if boundaries is not None:
                boundaries.append(end)
            count += 1
            if count >= limit or not inbox:
                break
            if horizon_fn is not None:
                horizon = horizon_fn()
            if horizon is not None and end >= horizon:
                break
            head = inbox[0]
            # Inline drain_key: same task + SOURCE kind is the whole key
            # (blocking cannot flip inside a run — RESUME is control-plane).
            if head.__class__ is tuple:
                task, message = head
                if task is not self or message.kind is not source_kind:
                    break
                inbox.popleft()
            else:
                if head.task is not self:
                    break
                message = head.messages[head.index]
                if message.kind is not source_kind:
                    break
                head.index += 1
                if head.index == head.end:
                    inbox.popleft()
        if self._journal is not None:
            self._journal.maybe_snapshot(self)
        return count

    def _handle_source(
        self,
        item: StreamTuple,
        ctx: Context,
        routes: RouteGroups | None = None,
        dest_cache: dict | None = None,
    ) -> None:
        ctx.charge(ctx.machine.cost_model.reshuffle_cost if ctx.machine else 0.0)
        if self.blocking and self.buffering:
            self._buffer.append(item)
            return
        self._process_tuple(item, ctx, routes, dest_cache)

    def _process_tuple(
        self,
        item: StreamTuple,
        ctx: Context,
        routes: RouteGroups | None = None,
        dest_cache: dict | None = None,
    ) -> None:
        is_left = item.relation == self.topology.left_relation
        self._seen += 1
        ctx.metrics.record_input_processed(ctx.now)

        if self.is_controller:
            self._controller_duties(item, is_left, ctx)

        self._route(item, is_left, ctx, routes, dest_cache)

    def _controller_duties(self, item: StreamTuple, is_left: bool, ctx: Context) -> None:
        assert self.controller is not None
        # Scaled increment (Alg. 1 lines 3/5): this task sees ~1/J of the input.
        self.controller.observe(is_left, increment=float(self.topology.machines))

        if self._seen % self.sample_every == 0:
            # x coordinate: global count of tuples processed so far, converted
            # to a fraction of the input stream by the result collector.
            ctx.metrics.record_ilf(float(ctx.metrics.processed_inputs), ctx.cluster_peak_stored())
        if self.controller.total >= self.controller.warmup_tuples:
            # The ILF/ILF* ratio and the cardinality ratio are cheap to compute
            # and drive Fig. 8c, so they are sampled on every controller tuple.
            ctx.metrics.record_competitive_ratio(
                int(self.controller.total), self.controller.competitive_ratio(self.mapping)
            )
            if self.controller.total_s > 0:
                ctx.metrics.record_cardinality_ratio(
                    int(self.controller.total),
                    self.controller.total_r / self.controller.total_s,
                )

        if not self.adaptive or self.migration_in_flight:
            return
        decision = self.controller.check(self.mapping)
        if decision is None or not decision.migrate:
            return
        self._trigger_migration(decision.new_mapping, ctx)

    def _trigger_migration(self, new_mapping: Mapping, ctx: Context) -> None:
        old_mapping = self.mapping
        self.migration_in_flight = True
        self.acks_received = 0
        if self._journal is not None:
            self._journal.log(("rtrig",))
        next_epoch = self.epoch + 1
        ctx.metrics.start_migration(
            next_epoch, ctx.now, (old_mapping.n, old_mapping.m), (new_mapping.n, new_mapping.m)
        )
        meta = {
            "epoch": next_epoch,
            "new_mapping": (new_mapping.n, new_mapping.m),
            "old_mapping": (old_mapping.n, old_mapping.m),
        }
        for reshuffler in self.topology.reshuffler_names:
            ctx.send(
                reshuffler,
                Message(kind=MessageKind.MAPPING_CHANGE, sender=self.name, meta=dict(meta)),
                category=TrafficCategory.CONTROL,
            )

    def _handle_mapping_change(self, message: Message, ctx: Context) -> None:
        new_mapping = Mapping(*message.meta["new_mapping"])
        old_mapping = Mapping(*message.meta["old_mapping"])
        epoch = message.meta["epoch"]
        if epoch <= self.epoch:
            return
        self.epoch = epoch
        self.mapping = new_mapping
        if self._journal is not None:
            self._journal.log(
                ("rmap", epoch, (new_mapping.n, new_mapping.m), (old_mapping.n, old_mapping.m))
            )
        if self.blocking:
            self.buffering = True
        for machine_id in range(self.topology.machines):
            ctx.send(
                self.topology.joiner(machine_id),
                Message(
                    kind=MessageKind.EPOCH_SIGNAL,
                    sender=self.name,
                    epoch=epoch,
                    meta={
                        "epoch": epoch,
                        "new_mapping": (new_mapping.n, new_mapping.m),
                        "old_mapping": (old_mapping.n, old_mapping.m),
                    },
                ),
                category=TrafficCategory.CONTROL,
            )

    def _handle_ack(self, message: Message, ctx: Context) -> None:
        if not self.is_controller:
            raise ValueError(f"non-controller reshuffler {self.name} received an ack")
        if self._journal is not None:
            self._journal.log(("rack",))
        self.acks_received += 1
        if self.acks_received < self.topology.machines:
            return
        self.migration_in_flight = False
        ctx.metrics.complete_migration(message.meta.get("epoch", self.epoch), ctx.now)
        if self.blocking:
            for reshuffler in self.topology.reshuffler_names:
                ctx.send(
                    reshuffler,
                    Message(kind=MessageKind.RESUME, sender=self.name),
                    category=TrafficCategory.CONTROL,
                )

    def _handle_resume(self, ctx: Context) -> None:
        self.buffering = False
        pending, self._buffer = self._buffer, []
        routes: RouteGroups | None = {} if self.batch_size > 1 else None
        dest_cache: dict | None = {} if routes is not None else None
        for item in pending:
            ctx.charge(ctx.machine.cost_model.reshuffle_cost if ctx.machine else 0.0)
            self._process_tuple(item, ctx, routes, dest_cache)
        if routes is not None:
            self._flush_routes(routes, ctx)

    # ---------------------------------------------------------------- routing

    def _route(
        self,
        item: StreamTuple,
        is_left: bool,
        ctx: Context,
        routes: RouteGroups | None = None,
        dest_cache: dict | None = None,
    ) -> None:
        # Tag with the current epoch; the common case (tag already current —
        # epoch 0 before any migration) reuses the tuple object outright.
        tagged = item if item.epoch == self.epoch else item.with_epoch(self.epoch)
        if dest_cache is not None:
            # Destination-grouped routing: the caller guarantees a fixed
            # mapping/epoch for its whole invocation, so each (side,
            # partition) resolves its grid placement once.  With ``routes``
            # the cache holds the per-destination route lists themselves
            # (fixed-plane micro-batches); without it, the destination ids
            # for per-tuple sends (adaptive-plane drained runs).
            key = (is_left, item.partition(self.mapping.n if is_left else self.mapping.m))
            cached = dest_cache.get(key)
            if cached is None:
                placement = self.topology.placement(self.mapping)
                destinations = (
                    placement.machines_for_row(key[1])
                    if is_left
                    else placement.machines_for_col(key[1])
                )
                if routes is not None:
                    cached = [
                        routes.setdefault((machine_id, self.epoch), [])
                        for machine_id in destinations
                    ]
                else:
                    cached = [self.topology.joiner(m) for m in destinations]
                dest_cache[key] = cached
            if routes is not None:
                for group in cached:
                    group.append(tagged)
                return
            # One immutable DATA envelope shared by every destination of the
            # fan-out: receivers never mutate messages, so replicating the
            # envelope object per destination buys nothing.
            message = DataEnvelope(
                MessageKind.DATA, self.name, tagged, self.epoch, item.size
            )
            ctx.send_fanout(cached, message, category=TrafficCategory.ROUTING)
            return
        placement = self.topology.placement(self.mapping)
        if is_left:
            row = item.partition(self.mapping.n)
            destinations = placement.machines_for_row(row)
        else:
            col = item.partition(self.mapping.m)
            destinations = placement.machines_for_col(col)
        if routes is not None:
            for machine_id in destinations:
                routes.setdefault((machine_id, self.epoch), []).append(tagged)
            return
        message = DataEnvelope(
            MessageKind.DATA, self.name, tagged, self.epoch, item.size
        )
        joiner_names = self.topology.joiner_names
        ctx.send_fanout(
            [joiner_names[machine_id] for machine_id in destinations],
            message,
            category=TrafficCategory.ROUTING,
        )

    def _flush_routes(self, routes: RouteGroups, ctx: Context) -> None:
        """Send the per-(joiner, epoch) groups gathered from one micro-batch.

        Grouping by epoch as well as destination means a mapping change
        arriving mid-stream splits batches at the epoch edge, so every BATCH
        message carries a single, exact epoch tag for the protocol.
        """
        for (machine_id, epoch), items in routes.items():
            ctx.send(
                self.topology.joiner(machine_id),
                _envelope(items, MessageKind.DATA, self.name, epoch=epoch),
                category=TrafficCategory.ROUTING,
            )


class HashReshufflerTask(ReshufflerTask):
    """Content-sensitive routing used by the parallel symmetric hash join (SHJ).

    Tuples are partitioned on the join key: each tuple goes to exactly one
    joiner, chosen by hashing its key.  This is the classic equi-join
    partitioning the paper compares against — efficient without skew, but a
    few overloaded joiners absorb most of the input once the key distribution
    is skewed.
    """

    def _route(
        self,
        item: StreamTuple,
        is_left: bool,
        ctx: Context,
        routes: RouteGroups | None = None,
        dest_cache: dict | None = None,
    ) -> None:
        predicate = self.topology.predicate
        if predicate.kind != "equi":
            raise ValueError("the SHJ operator only supports equi-join predicates")
        key = (
            predicate.left_key(item.record) if is_left else predicate.right_key(item.record)
        )
        machine_id = hash(key) % self.topology.machines
        tagged = item if item.epoch == self.epoch else item.with_epoch(self.epoch)
        if routes is not None:
            routes.setdefault((machine_id, self.epoch), []).append(tagged)
            return
        ctx.send(
            self.topology.joiner(machine_id),
            DataEnvelope(MessageKind.DATA, self.name, tagged, self.epoch, item.size),
            category=TrafficCategory.ROUTING,
        )


class JoinerTask(Task):
    """A joiner: local non-blocking join wrapped in the epoch protocol.

    Args:
        probe_engine: name of a registered probe engine.  Engines advertising
            ``batch_aware`` (the built-in ``"vectorized"`` default) route DATA
            batches through ``EpochJoinerState.handle_data_batch`` →
            ``LocalJoiner.probe_batch``; others (the built-in ``"scalar"``
            reference) keep the per-member dispatch with full per-candidate
            predicate re-validation, used by differential tests and the
            probe-engine benchmarks.
    """

    def __init__(
        self,
        name: str,
        machine_id: int,
        topology: Topology,
        migration_rate_factor: float = 2.0,
        batch_size: int = 1,
        probe_engine: str = "vectorized",
    ) -> None:
        super().__init__(name, machine_id)
        self.topology = topology
        store = make_local_joiner(
            topology.predicate,
            topology.left_relation,
            topology.right_relation,
            engine=probe_engine,
        )
        self.state = EpochJoinerState(
            machine_id=machine_id,
            store=store,
            num_reshufflers=len(topology.reshuffler_names) or topology.machines,
            left_relation=topology.left_relation,
        )
        self.migration_rate_factor = migration_rate_factor
        self.batch_size = max(1, batch_size)
        engine_spec = probe_engines.get(probe_engine)
        self.batch_aware = engine_spec.batch_aware
        self.bulk_commit = engine_spec.bulk_commit
        self._ends_sent_for: int | None = None

    #: Recovery journal (fault-tolerant plane only; see repro.core.recovery).
    #: Every state-mutating input — data/µ tuples, signals, end markers,
    #: finalizes — is journaled as one replayable delta.  Under the
    #: unreliable wire (RunConfig.network_faults) the reliable-delivery
    #: sublayer dedups duplicated/retransmitted frames *before* they reach
    #: handle(), so each logical message is journaled at most once and
    #: replay stays exactly-once without any task-level dedup.
    _journal = None

    # -------------------------------------------------------------- handling

    def handle(self, message: Message, ctx: Context) -> None:
        journal = self._journal
        if message.kind is MessageKind.BATCH:
            self._handle_batch(message, ctx)
        elif message.kind is MessageKind.DATA:
            if journal is not None:
                journal.log(("data", message.payload))
            actions = self.state.handle_data(message.payload)
            self._apply(actions, message.payload, ctx, migrated=False)
        elif message.kind is MessageKind.MIGRATION:
            if journal is not None:
                journal.log(("mu", message.payload))
            actions = self.state.handle_migrated(message.payload)
            self._apply(actions, message.payload, ctx, migrated=True)
        elif message.kind is MessageKind.EPOCH_SIGNAL:
            self._handle_signal(message, ctx)
        elif message.kind is MessageKind.MIGRATION_END:
            if journal is not None:
                journal.log(("end", message.meta["sender_machine"]))
            self.state.register_migration_end(message.meta["sender_machine"])
            ctx.charge(0.01)
            self._maybe_finalize(ctx)
        else:
            raise ValueError(f"joiner {self.name} cannot handle {message.kind}")
        if journal is not None:
            journal.maybe_snapshot(self)

    # ---------------------------------------------------- adaptive data plane

    #: Drain key of µ (MIGRATION) runs; distinct from every DATA epoch key.
    _MU_DRAIN_KEY = "mu"

    def drain_key(self, message: Message):
        """Pure probe-and-store runs are drainable; everything else is not.

        Three paths of the epoch protocol send nothing, relocate nothing and
        charge the same costs whether handled alone or as a member of a
        coalesced run — so draining them cannot perturb the virtual clock or
        the cross-machine message interleaving:

        * NORMAL-phase DATA tuples of the current epoch (HandleTuple1's
          degenerate path),
        * Δ' tuples — pending-epoch DATA during a migration (Alg. 3 lines
          12-14/24-26), which probe the µ ∪ Δ' and Keep(τ ∪ Δ) partitions and
          store locally, and
        * µ tuples — MIGRATION relocations received from other joiners,
          which probe Δ' and store into the µ partition (or, before the
          first signal, are buffered) — in every phase a charge-and-store
          with no sends, so they drain per-member through the base
          :meth:`Task.handle_drained` loop.

        Old-epoch Δ tuples mid-migration relocate state (``migrate_to``) and
        must stay per-tuple, as must every other kind.  The epoch is part of
        the DATA key, so a run is force-flushed at the epoch edge; µ runs use
        a dedicated key and therefore never mix with DATA runs.
        """
        kind = message.kind
        if kind is MessageKind.DATA:
            state = self.state
            epoch = message.payload.epoch
            if state.phase is JoinerPhase.NORMAL:
                if epoch == state.current_epoch:
                    return epoch
            elif epoch == state.pending_epoch:
                return epoch
            return None
        if kind is MessageKind.MIGRATION:
            return self._MU_DRAIN_KEY
        return None

    def handle_drained(self, first: Message, inbox, limit: int, key, ctx: Context) -> int:
        """Probe-and-store one drained run of pure same-epoch data tuples.

        The run is pulled off the inbox head up front (batch probes need the
        member list), its actions come from
        :meth:`EpochJoinerState.handle_data_batch` (one grouped index pass;
        per-member matches and work pinned identical to per-tuple
        ``handle_data``), and every member's cost is charged with the exact
        `_apply` arithmetic before :meth:`Context.boundary` commits it to
        the busy chain — so output timestamps and machine times are
        bit-identical to per-tuple delivery.  Probe work is integer-valued,
        so the single deferred metrics record is exact.
        """
        if key is self._MU_DRAIN_KEY:
            # µ runs: per-member handling through the base-class loop —
            # bit-identical to per-tuple delivery (handle + boundary per
            # member), saving only simulator events.
            return Task.handle_drained(self, first, inbox, limit, key, ctx)
        items = [first.payload]
        data_kind = MessageKind.DATA
        while len(items) < limit and inbox:
            head = inbox[0]
            # Inline drain_key: the phase cannot change inside one
            # invocation, so same task + DATA kind + the key epoch is the
            # whole eligibility check.
            if head.__class__ is tuple:
                task, message = head
                if (
                    task is not self
                    or message.kind is not data_kind
                    or message.payload.epoch != key
                ):
                    break
                inbox.popleft()
                items.append(message.payload)
            else:
                if head.task is not self:
                    break
                message = head.messages[head.index]
                if message.kind is not data_kind or message.payload.epoch != key:
                    break
                head.index += 1
                if head.index == head.end:
                    inbox.popleft()
                items.append(message.payload)
        journal = self._journal
        if journal is not None:
            for item in items:
                journal.log(("data", item))
        actions_list = self.state.handle_data_batch(items)
        if journal is not None:
            # The joiner state is fully mutated at this point (the remaining
            # work is cost accounting), so this is a valid snapshot point.
            journal.maybe_snapshot(self)
        machine = ctx.machine
        if machine is None:  # pragma: no cover - joiners are always hosted
            for item, actions in zip(items, actions_list):
                self._apply(actions, item, ctx, migrated=False)
                ctx.boundary()
            return len(items)
        cost_model = machine.cost_model
        receive_cost = cost_model.receive_cost
        store_cost = cost_model.store_cost
        probe_cost = cost_model.probe_cost
        match_cost = cost_model.match_cost
        # With an unbounded memory budget the storage factor is identically
        # 1.0 and never flags a spill, so the per-member call is hoisted.
        unbounded = cost_model.memory_capacity is None
        if (
            self.bulk_commit
            and unbounded
            and all(actions.stored for actions in actions_list)
        ):
            self._bulk_commit_drained(items, actions_list, ctx, machine)
            return len(items)
        storage_factor = machine.storage_factor
        record_outputs = ctx.metrics.record_outputs
        machine_id = self.machine_id
        boundaries = ctx.drain_boundaries
        probe_total = 0.0
        # Pure probe-and-store members never send, so the per-member charge
        # commit (Context.boundary + Machine.occupy) and the storage
        # accounting (Machine.add_stored) are inlined: ``now`` walks the busy
        # chain with exactly the per-tuple float arithmetic (member start ==
        # busy_until, end = start + member cost).
        now = ctx.now
        for item, actions in zip(items, actions_list):
            work = actions.probe_work
            probe_total += work
            # Same arithmetic and accumulation order as _apply.
            factor = 1.0 if unbounded else storage_factor()
            cost = 0.0
            cost += receive_cost
            if actions.stored:
                cost += store_cost * factor
            cost += work * probe_cost * factor
            matches = actions.matches
            cost += len(matches) * match_cost
            if actions.stored:
                size = item.size
                machine.stored_size = stored = machine.stored_size + size
                machine.received_size += size
                if stored > machine.peak_stored_size:
                    machine.peak_stored_size = stored
            end = now + cost
            if matches:
                record_outputs(matches, end, machine_id)
            if actions.migrate_to:  # pragma: no cover - excluded by drain_key
                raise RuntimeError(
                    f"joiner {self.name} drained a relocating tuple; "
                    "drain_key must keep migrating paths per-tuple"
                )
            machine.busy_until = end
            machine.busy_time += cost
            now = end
            if boundaries is not None:
                boundaries.append(end)
        ctx.now = now
        ctx.charged = 0.0
        if probe_total:
            ctx.metrics.record_probe_work(probe_total)
        return len(items)

    def _bulk_commit_drained(self, items, actions_list, ctx: Context, machine) -> None:
        """Vectorised cost/busy commit of one all-stored drained run.

        Replaces the per-member Python accumulation of :meth:`handle_drained`
        with ``np.cumsum`` chains.  Bit-identical by construction: every
        scalar ``+=`` chain (member completion times, busy time, stored
        sizes) is a strict left fold, which is exactly what
        ``np.cumsum``/``np.add.accumulate`` computes over the same float64
        values, and the per-member cost is assembled with the same additions
        in the same order (``(receive + store) + work·probe + matches·match``
        — the storage factor is identically 1.0 here, the caller checked the
        memory budget is unbounded).
        """
        if any(actions.migrate_to for actions in actions_list):  # pragma: no cover
            raise RuntimeError(
                f"joiner {self.name} drained a relocating tuple; "
                "drain_key must keep migrating paths per-tuple"
            )
        n = len(items)
        cost_model = machine.cost_model
        base = cost_model.receive_cost + cost_model.store_cost
        works = np.fromiter(
            (actions.probe_work for actions in actions_list), np.float64, n
        )
        costs = works * cost_model.probe_cost
        costs += base
        costs += (
            np.fromiter((len(actions.matches) for actions in actions_list), np.float64, n)
            * cost_model.match_cost
        )
        chain = np.empty(n + 1, dtype=np.float64)
        chain[1:] = costs
        chain[0] = ctx.now
        ends = np.cumsum(chain)[1:]
        chain[0] = machine.busy_time
        machine.busy_time = float(np.cumsum(chain)[-1])
        sizes = np.fromiter((item.size for item in items), np.float64, n)
        chain[1:] = sizes
        chain[0] = machine.stored_size
        stored_chain = np.cumsum(chain)
        machine.stored_size = float(stored_chain[-1])
        machine.peak_stored_size = max(
            machine.peak_stored_size, float(stored_chain[1:].max())
        )
        chain[0] = machine.received_size
        machine.received_size = float(np.cumsum(chain)[-1])
        ends_list = ends.tolist()
        record_outputs = ctx.metrics.record_outputs
        machine_id = self.machine_id
        for actions, end in zip(actions_list, ends_list):
            matches = actions.matches
            if matches:
                record_outputs(matches, end, machine_id)
        boundaries = ctx.drain_boundaries
        if boundaries is not None:
            boundaries.extend(ends_list)
        machine.busy_until = ends_list[-1]
        ctx.now = ends_list[-1]
        ctx.charged = 0.0
        # Probe work units are integer-valued, so the (pairwise) array sum is
        # exact; the floor of one unit per member keeps it nonzero.
        ctx.metrics.record_probe_work(float(works.sum()))

    def _handle_batch(self, message: Message, ctx: Context) -> None:
        """Process every member of a routed or migrated micro-batch.

        Members are handled in order within one simulator event; costs are
        charged per tuple, so outputs emitted by later members carry the
        cumulative charge of earlier ones (per-tuple cost attribution).  On
        the batch-aware DATA path the bookkeeping is aggregated over the
        whole batch (:meth:`_apply_data_batch`) — charged virtual times stay
        bit-identical to the per-member path.  Relocations produced along the
        way are regrouped per destination and flushed as batches at the end
        of the invocation.
        """
        inner = message.meta.get("inner")
        sink: RouteGroups = {}
        apply = self._apply
        journal = self._journal
        if inner is MessageKind.DATA:
            if journal is not None:
                for item in message.payload:
                    journal.log(("data", item))
            if self.batch_aware:
                items = list(message.payload)
                self._apply_data_batch(items, self.state.handle_data_batch(items), ctx, sink)
            else:
                handle_data = self.state.handle_data
                for item in message.payload:
                    apply(handle_data(item), item, ctx, migrated=False, sink=sink)
        elif inner is MessageKind.MIGRATION:
            handle_migrated = self.state.handle_migrated
            for item in message.payload:
                if journal is not None:
                    journal.log(("mu", item))
                apply(handle_migrated(item), item, ctx, migrated=True, sink=sink)
        else:
            raise ValueError(
                f"joiner {self.name} can only handle DATA or MIGRATION batches, "
                f"got inner kind {inner}"
            )
        self._flush_migrations(sink, ctx)

    def _handle_signal(self, message: Message, ctx: Context) -> None:
        epoch = message.meta["epoch"]
        new_mapping = Mapping(*message.meta["new_mapping"])
        old_mapping = Mapping(*message.meta["old_mapping"])
        plan = self.topology.plan(old_mapping, new_mapping)
        if self._journal is not None:
            # One delta reproduces the whole signal effect on replay: the
            # handler internally re-drains any buffered early messages.
            self._journal.log(
                (
                    "signal",
                    epoch,
                    (old_mapping.n, old_mapping.m),
                    (new_mapping.n, new_mapping.m),
                    message.sender,
                )
            )
        migrations, replayed = self.state.handle_signal(epoch, plan, reshuffler=message.sender)
        ctx.charge(0.01)
        sink: RouteGroups | None = {} if self.batch_size > 1 else None
        self._send_migrations(migrations, ctx, sink)
        for replayed_item, actions in replayed:
            self._apply(actions, replayed_item, ctx, migrated=False, charge_receive=False, sink=sink)
        if sink is not None:
            # Flush relocations before any MIGRATION_END below: link FIFO then
            # guarantees receivers see every migrated tuple before the marker.
            self._flush_migrations(sink, ctx)
        if self.state.phase is JoinerPhase.DRAINED and self._ends_sent_for != epoch:
            self._ends_sent_for = epoch
            if self._journal is not None:
                # Replay must not resend the END fanout (the markers are
                # durably on the wire): restore the sent-for latch instead.
                self._journal.log(("ends_sent", epoch))
            for receiver in plan.receivers_from(self.machine_id):
                ctx.send(
                    self.topology.joiner(receiver),
                    Message(
                        kind=MessageKind.MIGRATION_END,
                        sender=self.name,
                        meta={"sender_machine": self.machine_id, "epoch": epoch},
                    ),
                    category=TrafficCategory.CONTROL,
                )
            self._maybe_finalize(ctx)

    def _maybe_finalize(self, ctx: Context) -> None:
        if not self.state.can_finalize():
            return
        if self._journal is not None:
            self._journal.log(("final",))
        result = self.state.finalize()
        machine = ctx.machine
        if machine is not None:
            for item in result.discarded:
                machine.remove_stored(item.size)
        ctx.charge(0.01 * max(1, len(result.discarded)))
        ctx.send(
            self.topology.controller_name,
            Message(
                kind=MessageKind.MIGRATION_ACK,
                sender=self.name,
                meta={"machine": self.machine_id, "epoch": result.epoch},
            ),
            category=TrafficCategory.CONTROL,
        )

    # -------------------------------------------------------------- internals

    def _send_migrations(
        self,
        migrations: list[tuple[int, StreamTuple]],
        ctx: Context,
        sink: RouteGroups | None = None,
    ) -> None:
        cost_model = ctx.machine.cost_model if ctx.machine else None
        for destination, item in migrations:
            if cost_model is not None:
                ctx.charge(cost_model.reshuffle_cost)
            if sink is not None:
                sink.setdefault((destination, 0), []).append(item)
                continue
            ctx.send(
                self.topology.joiner(destination),
                Message(
                    kind=MessageKind.MIGRATION,
                    sender=self.name,
                    payload=item,
                    size=item.size,
                    meta={"sender_machine": self.machine_id},
                ),
                category=TrafficCategory.MIGRATION,
            )

    def _flush_migrations(self, sink: RouteGroups, ctx: Context) -> None:
        """Send relocations gathered during one handler invocation, batched
        per destination joiner (the epoch component of the key is unused —
        µ tuples are interpreted via the receiver's migration plan)."""
        for (destination, _epoch), items in sink.items():
            ctx.send(
                self.topology.joiner(destination),
                _envelope(
                    items,
                    MessageKind.MIGRATION,
                    self.name,
                    meta={"sender_machine": self.machine_id},
                ),
                category=TrafficCategory.MIGRATION,
            )

    def _apply_data_batch(
        self,
        items: list[StreamTuple],
        actions_list: list[TupleActions],
        ctx: Context,
        sink: RouteGroups | None,
    ) -> None:
        """Apply one micro-batch of routed-data actions with aggregated bookkeeping.

        Semantically identical to calling :meth:`_apply` per member
        (``migrated=False``): per-member cost attribution is preserved — each
        member's cost is computed with the same float arithmetic and added to
        the running charge in the same order, so outputs of later members
        still carry the cumulative charge of earlier ones and virtual times
        are bit-identical (pinned by the scalar-engine equality assertions in
        ``test_batching_equivalence.py``).  What is aggregated is the
        *bookkeeping overhead*: cost-model fields and machine methods are
        resolved once per batch instead of per member, and probe work is
        recorded in one metrics call (probe-work units are integer-valued, so
        the deferred sum is exact).
        """
        machine = ctx.machine
        if machine is None:
            for item, actions in zip(items, actions_list):
                self._apply(actions, item, ctx, migrated=False, sink=sink)
            return
        cost_model = machine.cost_model
        if (
            self.bulk_commit
            and cost_model.memory_capacity is None
            and all(
                actions.stored and not actions.migrate_to for actions in actions_list
            )
        ):
            self._bulk_commit_batch(items, actions_list, ctx, machine)
            return
        receive_cost = cost_model.receive_cost
        store_cost = cost_model.store_cost
        probe_cost = cost_model.probe_cost
        match_cost = cost_model.match_cost
        storage_factor = machine.storage_factor
        add_stored = machine.add_stored
        emit_outputs = ctx.emit_outputs
        probe_total = 0.0
        for item, actions in zip(items, actions_list):
            work = actions.probe_work
            probe_total += work
            # Same per-member arithmetic and accumulation order as _apply.
            factor = storage_factor()
            cost = 0.0
            cost += receive_cost
            if actions.stored:
                cost += store_cost * factor
            cost += work * probe_cost * factor
            matches = actions.matches
            cost += len(matches) * match_cost
            ctx.charged += cost
            if actions.stored:
                add_stored(item.size)
            if matches:
                emit_outputs(matches)
            if actions.migrate_to:
                self._send_migrations(actions.migrate_to, ctx, sink)
        if probe_total:
            ctx.metrics.record_probe_work(probe_total)

    def _bulk_commit_batch(self, items, actions_list, ctx: Context, machine) -> None:
        """Vectorised charge accumulation of one all-stored routed batch.

        The :meth:`_apply_data_batch` member loop as ``np.cumsum`` chains,
        bit-identical for the same reason as :meth:`_bulk_commit_drained`
        (strict left folds over the same float64 values; storage factor
        identically 1.0 — the caller checked the memory budget is unbounded
        and that no member stores nothing or relocates).  Emission instants
        are ``ctx.now + charged_i`` with ``charged_i`` walking the scalar
        charge chain.
        """
        n = len(items)
        cost_model = machine.cost_model
        base = cost_model.receive_cost + cost_model.store_cost
        works = np.fromiter(
            (actions.probe_work for actions in actions_list), np.float64, n
        )
        costs = works * cost_model.probe_cost
        costs += base
        costs += (
            np.fromiter((len(actions.matches) for actions in actions_list), np.float64, n)
            * cost_model.match_cost
        )
        chain = np.empty(n + 1, dtype=np.float64)
        chain[1:] = costs
        chain[0] = ctx.charged
        charged = np.cumsum(chain)[1:]
        ctx.charged = float(charged[-1])
        out_times = ctx.now + charged
        sizes = np.fromiter((item.size for item in items), np.float64, n)
        chain[1:] = sizes
        chain[0] = machine.stored_size
        stored_chain = np.cumsum(chain)
        machine.stored_size = float(stored_chain[-1])
        machine.peak_stored_size = max(
            machine.peak_stored_size, float(stored_chain[1:].max())
        )
        chain[0] = machine.received_size
        machine.received_size = float(np.cumsum(chain)[-1])
        record_outputs = ctx.metrics.record_outputs
        machine_id = self.machine_id
        for actions, out_time in zip(actions_list, out_times.tolist()):
            matches = actions.matches
            if matches:
                record_outputs(matches, out_time, machine_id)
        ctx.metrics.record_probe_work(float(works.sum()))

    def _apply(
        self,
        actions: TupleActions,
        item: StreamTuple | None,
        ctx: Context,
        migrated: bool,
        charge_receive: bool = True,
        sink: RouteGroups | None = None,
    ) -> None:
        machine = ctx.machine
        cost_model = machine.cost_model if machine else None
        if actions.probe_work:
            ctx.metrics.record_probe_work(actions.probe_work)
        if cost_model is not None:
            factor = machine.storage_factor()
            cost = 0.0
            if charge_receive:
                # Migrated tuples are processed faster than new input tuples
                # (§4.3.2 processes them at twice the rate); the cost model's
                # migration_cost encodes that ratio.
                cost += cost_model.migration_cost if migrated else cost_model.receive_cost
            if actions.stored:
                cost += cost_model.store_cost * factor
            cost += actions.probe_work * cost_model.probe_cost * factor
            cost += len(actions.matches) * cost_model.match_cost
            ctx.charge(cost)
            if actions.stored and item is not None:
                machine.add_stored(item.size)
        if actions.matches:
            ctx.emit_outputs(actions.matches)
        if actions.migrate_to:
            self._send_migrations(actions.migrate_to, ctx, sink)
