"""Power-of-two group decomposition for arbitrary cluster sizes (§4.2.2, Fig. 4).

When the number of joiners ``J`` is not a power of two, it is decomposed into
its binary representation ``J = J_1 + J_2 + ... + J_c`` with every ``J_i`` a
power of two, and the machines are split into ``c`` independent groups.  Each
group runs the grid-layout scheme over its own machines.  An incoming tuple is
*stored* in exactly one group — chosen pseudo-randomly with probability
proportional to the group size — but is *joined* against the stored state of
every group, so result completeness is preserved.  The paper shows that this
at most doubles the storage competitive ratio (3.75 overall) and multiplies
routing by a ``log J`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import GridPlacement, Mapping, optimal_mapping, square_mapping


def power_of_two_decomposition(machines: int) -> list[int]:
    """Decompose ``machines`` into decreasing powers of two (binary expansion)."""
    if machines < 1:
        raise ValueError("machines must be positive")
    sizes = []
    bit = 1 << (machines.bit_length() - 1)
    remaining = machines
    while bit:
        if remaining & bit:
            sizes.append(bit)
            remaining -= bit
        bit >>= 1
    return sizes


@dataclass
class MachineGroup:
    """One power-of-two group of machines running its own grid mapping."""

    index: int
    machine_ids: tuple[int, ...]
    mapping: Mapping
    _placement_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def size(self) -> int:
        return len(self.machine_ids)

    def placement(self) -> GridPlacement:
        """Grid placement of this group's current mapping over its machines.

        Memoised per mapping — route() asks for it once per tuple, and the
        placement's own fan-out caches are only effective if it is reused.
        """
        key = (self.mapping.n, self.mapping.m)
        placement = self._placement_cache.get(key)
        if placement is None:
            placement = GridPlacement(mapping=self.mapping, machine_ids=self.machine_ids)
            self._placement_cache[key] = placement
        return placement


@dataclass
class GroupedCluster:
    """A cluster of arbitrary size decomposed into independent grid groups.

    Args:
        machines: total number of joiners ``J``.
    """

    machines: int
    groups: list[MachineGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.groups:
            sizes = power_of_two_decomposition(self.machines)
            start = 0
            for index, size in enumerate(sizes):
                ids = tuple(range(start, start + size))
                self.groups.append(
                    MachineGroup(index=index, machine_ids=ids, mapping=square_mapping(size))
                )
                start += size

    # ------------------------------------------------------------ properties

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def storage_probabilities(self) -> list[float]:
        """Probability that an incoming tuple is stored in each group (J_i / J)."""
        return [group.size / self.machines for group in self.groups]

    def largest_group(self) -> MachineGroup:
        """The group L of §4.2.2 whose storage bounds the whole cluster's."""
        return max(self.groups, key=lambda group: group.size)

    # --------------------------------------------------------------- routing

    def storing_group(self, salt: float) -> MachineGroup:
        """The unique group that stores a tuple with the given salt.

        The salt doubles as the pseudo-random hash of §4.2.2: group ``i`` is
        chosen when the salt falls into a range of width ``J_i / J``.
        """
        cumulative = 0.0
        for group in self.groups:
            cumulative += group.size / self.machines
            if salt < cumulative:
                return group
        return self.groups[-1]

    def route(self, salt: float, is_left: bool) -> list[tuple[int, bool]]:
        """Machines a tuple must visit, with a per-machine "store here" flag.

        A tuple is sent to one row (left tuples) or one column (right tuples)
        of *every* group — so it joins against all stored state — but only the
        machines of its storing group keep it.
        """
        storing = self.storing_group(salt)
        destinations: list[tuple[int, bool]] = []
        for group in self.groups:
            placement = group.placement()
            if is_left:
                row = min(int(salt * group.mapping.n), group.mapping.n - 1)
                members = placement.machines_for_row(row)
            else:
                col = min(int(salt * group.mapping.m), group.mapping.m - 1)
                members = placement.machines_for_col(col)
            store_here = group.index == storing.index
            destinations.extend((machine, store_here) for machine in members)
        return destinations

    def routing_fanout(self, is_left: bool) -> int:
        """Number of machines one tuple is sent to (≤ a log J factor of one group's)."""
        total = 0
        for group in self.groups:
            total += group.mapping.m if is_left else group.mapping.n
        return total

    # -------------------------------------------------------------- adaptivity

    def adapt_group(self, index: int, r_count: float, s_count: float) -> Mapping:
        """Re-optimise the mapping of group ``index`` for the given stored counts.

        Groups adapt independently and asynchronously (§4.2.2); this helper
        returns (and installs) the group's new optimal mapping.
        """
        group = self.groups[index]
        group.mapping = optimal_mapping(group.size, max(r_count, 1.0), max(s_count, 1.0))
        return group.mapping

    def expected_storage_ratio_bound(self) -> float:
        """Upper bound on the storage competitive-ratio inflation due to grouping.

        §4.2.2: the largest group holds at least half the machines, so the
        competitive ratio of storage is at most doubled.
        """
        largest = self.largest_group().size
        return self.machines / largest
