"""Uniform result record returned by every operator run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import Mapping


@dataclass
class RunResult:
    """Outcome of running one operator on one workload in the simulator.

    Every quantity the paper's evaluation section reports is available here,
    so the benchmark harness only formats, never recomputes.

    Attributes:
        operator: operator name ("Dynamic", "StaticMid", "StaticOpt", "SHJ").
        query: workload name (EQ5, EQ7, BCI, BNCI, FLUCT, ...).
        machines: number of joiners used.
        execution_time: virtual completion time of the run.
        throughput: input tuples routed per unit of virtual time.
        output_count: number of join results produced.
        output_throughput: output tuples per unit of virtual time.
        average_latency: mean output-tuple latency (§5.2 definition).
        max_ilf: largest per-machine *received* size — the measured input-load
            factor (storage + replicated messages per machine).
        final_max_storage: largest per-machine stored size at the end.
        total_storage: total cluster storage at the end (Fig. 6b right axis).
        routing_volume / migration_volume / total_network_volume: network
            traffic split by cause.
        migrations: number of mapping changes performed.
        spilled: whether any machine exceeded its memory budget.
        max_competitive_ratio: largest observed ILF/ILF* ratio (Fig. 8c).
        final_mapping: the (n, m) mapping in force when the run ended.
        events_processed: simulator handler invocations during the run — the
            data-plane overhead a larger batch size amortises away.
        batch_size: micro-batch size the run used (1 = per-tuple data plane).
        batching: batching plane the run used ("fixed" or "adaptive").
        batch_histogram: drained-run size → count on the adaptive plane
            (None on the fixed plane) — the batch-size trace showing how the
            controller sized runs under the workload's backlog.
        delivery_merging: whether wire-level delivery merging was enabled.
        heap_events: events popped from the simulator's global heap —
            deliveries (or merged delivery runs), machine ticks, control
            messages.  The quantity delivery merging collapses; contrast with
            ``events_processed`` (handler invocations), which receiver
            draining collapses.
        wire_histogram: merged delivery-run length → count per FIFO link
            (None with merging off) — localises coalescing changes to the
            wire (this) versus the receiver (``batch_histogram``).
        migration_events: the full migration sequence as
            ``(epoch, old_mapping, new_mapping, decided_at, completed_at)``
            tuples — pinned identical across data planes by the adaptive
            conformance suite.
        machine_busy: per-machine ``(busy_until, busy_time)`` — the per-task
            virtual times; bit-identical across the adaptive/per-tuple planes.
        probe_work: total joiner probe work units charged (index candidates
            inspected, floored at one per probe) — exact across batch sizes
            and probe engines, pinned by the batching-equivalence tests.
        ilf_series: (fraction of input processed, max per-machine ILF) samples.
        ratio_series: (tuples processed, ILF/ILF*) samples.
        cardinality_series: (tuples processed, |R|/|S|) samples.
        progress_series: (fraction of input processed, virtual time) samples.
        outputs: matched (left_tuple_id, right_tuple_id) pairs when output
            collection was requested (tests only).
        executor: execution backend the run used ("simulated" or "threads").
            Every deterministic quantity above is backend-invariant (pinned
            by the executor conformance suite); the three fields below are
            the wall-clock-derived stats that legitimately differ.
        wall_time: real seconds spent inside the execution loop.
        worker_wall: per-worker real seconds spent inside task handlers
            (parallel executors only; None on the simulated backend).
        worker_events: per-worker handler invocation counts (parallel
            executors only; None on the simulated backend).
        effective_workers: worker threads the parallel executor actually
            ran after clamping the request to the machine count (a worker
            owns whole machines); None on the simulated backend.  Surfaced
            so trend rows never compare mislabeled fleet sizes.
        overlap_dispatches: dispatches of the threaded frontier that started
            while at least one other handler was still in flight.  A
            structurally deterministic count (dispatch decisions are pure
            functions of virtual-time keys), 0 on the simulated backend.
        peak_inflight: largest number of handlers concurrently in flight on
            the threaded frontier (1 = lock-step; 0 on the simulated
            backend).
        faults_injected: number of machine crashes the fault schedule injected.
        recovery_time: total virtual time spent recovering — per crash, the
            outage window (crash to restart) plus the restore cost of
            re-materialising the checkpoint and replaying the journal.
        tuples_replayed: data/µ tuples replayed through the real handlers
            during restores (the delta-log length recovery paid for).
        checkpoint_overhead: bytes written to the durable checkpoint store
            (snapshots + delta journal) over the run.
        messages_dropped: link-layer frames the unreliable wire lost (drop
            specs, partition windows, and lost retransmit attempts).  0 with
            ``network_faults=()`` — all four counters and both dicts below
            come from the reliable-delivery sublayer, installed only when a
            network fault schedule is present.
        messages_duplicated: frames the wire delivered twice (the copies are
            discarded by receiver-side dedup).
        messages_retransmitted: retransmit attempts the reliable-delivery
            sublayer sent for lost frames.
        messages_reordered: frames that arrived ahead of a gap and waited in
            the receiver's in-order release buffer.
        retransmit_histogram: attempt number → count of retransmits sent on
            that attempt (the backoff depth profile), next to
            ``wire_histogram``; None without network faults.
        wire_counters: the full reliable-wire counter set as a plain dict
            (sent/delivered/dropped/duplicated/retransmitted/reordered/
            deduped/applied), reconciling as ``sent == delivered + dropped``
            and ``applied == delivered - deduped``; None without network
            faults.
    """

    operator: str
    query: str
    machines: int
    execution_time: float
    throughput: float
    output_count: int
    output_throughput: float
    average_latency: float
    max_ilf: float
    final_max_storage: float
    total_storage: float
    routing_volume: float
    migration_volume: float
    total_network_volume: float
    migrations: int
    spilled: bool
    max_competitive_ratio: float
    final_mapping: Mapping
    events_processed: int = 0
    batch_size: int = 1
    batching: str = "fixed"
    batch_histogram: dict[int, int] | None = None
    delivery_merging: bool = False
    heap_events: int = 0
    wire_histogram: dict[int, int] | None = None
    migration_events: list[tuple] = field(default_factory=list)
    machine_busy: list[tuple[float, float]] = field(default_factory=list)
    probe_work: float = 0.0
    ilf_series: list[tuple[float, float]] = field(default_factory=list)
    ratio_series: list[tuple[int, float]] = field(default_factory=list)
    cardinality_series: list[tuple[int, float]] = field(default_factory=list)
    progress_series: list[tuple[float, float]] = field(default_factory=list)
    outputs: list[tuple[int, int]] | None = None
    executor: str = "simulated"
    wall_time: float = 0.0
    worker_wall: list[float] | None = None
    worker_events: list[int] | None = None
    effective_workers: int | None = None
    overlap_dispatches: int = 0
    peak_inflight: int = 0
    faults_injected: int = 0
    recovery_time: float = 0.0
    tuples_replayed: int = 0
    checkpoint_overhead: float = 0.0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_retransmitted: int = 0
    messages_reordered: int = 0
    retransmit_histogram: dict[int, int] | None = None
    wire_counters: dict[str, int] | None = None

    def summary_row(self) -> dict[str, float | int | str | bool]:
        """Flat dictionary used by the benchmark reports."""
        return {
            "operator": self.operator,
            "query": self.query,
            "machines": self.machines,
            "execution_time": round(self.execution_time, 2),
            "throughput": round(self.throughput, 4),
            "output_count": self.output_count,
            "avg_latency": round(self.average_latency, 3),
            "max_ilf": round(self.max_ilf, 2),
            "total_storage": round(self.total_storage, 2),
            "migration_volume": round(self.migration_volume, 2),
            "migrations": self.migrations,
            "spilled": self.spilled,
            "final_mapping": str(self.final_mapping),
            "events_processed": self.events_processed,
            "executor": self.executor,
            "effective_workers": (
                "" if self.effective_workers is None else self.effective_workers
            ),
        }
