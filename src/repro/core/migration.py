"""Locality-aware state migration plans (§4.2.1 Fig. 3, §4.2.2 Fig. 5).

Every joiner's state is described by two *salt intervals*: the sub-range of
``[0, 1)`` of left-relation salts and of right-relation salts it must store
under a given mapping/placement.  A migration plan compares the old and the
new assignment of every machine and derives, per machine:

* the **kept** portion (old ∩ new) — stays put, no cost,
* the **discarded** portion (old \\ new) — dropped locally, no network cost,
* the **fetched** portion (new \\ old) — must be received from a designated
  sender that held it under the old assignment.

Under the dyadic grid placement a one-step mapping change ``(n, m) →
(n/2, 2m)`` makes the fetched portion of the non-exchanged relation empty and
the fetched portion of the exchanged relation exactly the partner machine's
holdings — reproducing the pairwise exchange of Fig. 3 and its ``2·|R|/n``
cost bound (Lemma 4.4).  The same machinery also covers elastic expansions
(new machines start with empty assignments and fetch everything from their
parent, Fig. 5) and the naive full-repartitioning strategy used as an
ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.mapping import GridPlacement

Interval = tuple[float, float]


# --------------------------------------------------------------------------
# Interval arithmetic on half-open sub-intervals of [0, 1)
# --------------------------------------------------------------------------

def interval_length(intervals: Iterable[Interval]) -> float:
    """Total length of a collection of disjoint intervals."""
    return sum(max(0.0, high - low) for low, high in intervals)


def interval_intersection(a: Interval, b: Interval) -> Interval | None:
    """Intersection of two half-open intervals, or None when empty."""
    low = max(a[0], b[0])
    high = min(a[1], b[1])
    if high <= low:
        return None
    return (low, high)


def interval_difference(a: Interval, b: Interval) -> list[Interval]:
    """``a \\ b`` as a list of at most two disjoint intervals."""
    overlap = interval_intersection(a, b)
    if overlap is None:
        return [a] if a[1] > a[0] else []
    pieces = []
    if a[0] < overlap[0]:
        pieces.append((a[0], overlap[0]))
    if overlap[1] < a[1]:
        pieces.append((overlap[1], a[1]))
    return pieces


def subtract_many(base: Interval, removals: Sequence[Interval]) -> list[Interval]:
    """``base`` minus every interval in ``removals``."""
    remaining = [base] if base[1] > base[0] else []
    for removal in removals:
        next_remaining: list[Interval] = []
        for piece in remaining:
            next_remaining.extend(interval_difference(piece, removal))
        remaining = next_remaining
    return remaining


def point_in(value: float, interval: Interval) -> bool:
    """Whether ``value`` lies inside the half-open interval."""
    return interval[0] <= value < interval[1]


# --------------------------------------------------------------------------
# State assignments and transfer plans
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class StateAssignment:
    """The state one machine is responsible for under a given placement."""

    machine_id: int
    r_interval: Interval
    s_interval: Interval

    def interval(self, side: str) -> Interval:
        """Interval for relation side 'R' or 'S'."""
        if side == "R":
            return self.r_interval
        if side == "S":
            return self.s_interval
        raise ValueError(f"side must be 'R' or 'S', got {side!r}")


def assignments_for(placement: GridPlacement) -> dict[int, StateAssignment]:
    """State assignment of every machine used by ``placement``."""
    result = {}
    for machine_id, _cell in placement.cells():
        result[machine_id] = StateAssignment(
            machine_id=machine_id,
            r_interval=placement.r_interval(machine_id),
            s_interval=placement.s_interval(machine_id),
        )
    return result


@dataclass(frozen=True)
class TransferInstruction:
    """One sender → receiver state transfer of a salt interval of one relation side."""

    sender: int
    receiver: int
    side: str            # 'R' or 'S'
    interval: Interval

    def covers(self, salt: float) -> bool:
        """Whether a tuple with this salt belongs to the transfer."""
        return point_in(salt, self.interval)


@dataclass
class MigrationPlan:
    """Complete per-machine relocation plan between two placements.

    Attributes:
        old_assignments / new_assignments: machine → state responsibility
            before and after the migration (machines absent from the old
            placement — e.g. joiners added by an elastic expansion — simply
            have no old assignment).
        transfers: every sender → receiver interval transfer.
    """

    old_assignments: dict[int, StateAssignment]
    new_assignments: dict[int, StateAssignment]
    transfers: list[TransferInstruction] = field(default_factory=list)
    # Lazily grouped transfers per (sender, side): destinations_for runs once
    # per stored tuple during a migration, so the full-list scan is too hot.
    _outgoing_by_side: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------- structure

    def senders_to(self, machine_id: int) -> set[int]:
        """Machines expected to send state to ``machine_id``."""
        return {t.sender for t in self.transfers if t.receiver == machine_id}

    def receivers_from(self, machine_id: int) -> set[int]:
        """Machines ``machine_id`` is expected to send state to."""
        return {t.receiver for t in self.transfers if t.sender == machine_id}

    def outgoing(self, machine_id: int) -> list[TransferInstruction]:
        """Transfers for which ``machine_id`` is the designated sender."""
        return [t for t in self.transfers if t.sender == machine_id]

    def participants(self) -> set[int]:
        """Every machine that appears in either the old or the new placement."""
        return set(self.old_assignments) | set(self.new_assignments)

    # ------------------------------------------------------- per-tuple logic

    def keeps(self, machine_id: int, side: str, salt: float) -> bool:
        """Whether a stored tuple stays on ``machine_id`` under the new placement."""
        assignment = self.new_assignments.get(machine_id)
        if assignment is None:
            return False
        return point_in(salt, assignment.interval(side))

    def destinations_for(self, machine_id: int, side: str, salt: float) -> list[int]:
        """Receivers to which ``machine_id`` must forward a stored tuple."""
        key = (machine_id, side)
        group = self._outgoing_by_side.get(key)
        if group is None:
            group = [t for t in self.transfers if t.sender == machine_id and t.side == side]
            self._outgoing_by_side[key] = group
        return [t.receiver for t in group if t.covers(salt)]

    # ------------------------------------------------------ volume estimates

    def expected_transfer_volume(
        self, r_count: float, s_count: float, r_size: float = 1.0, s_size: float = 1.0
    ) -> float:
        """Expected size units moved, given relation cardinalities.

        A transfer of an interval of length ``ℓ`` of relation R moves about
        ``ℓ·|R|`` tuples since salts are uniform.
        """
        volume = 0.0
        for transfer in self.transfers:
            length = transfer.interval[1] - transfer.interval[0]
            if transfer.side == "R":
                volume += length * r_count * r_size
            else:
                volume += length * s_count * s_size
        return volume


def _preferred_sender(
    holders: list[StateAssignment],
    receiver_old: StateAssignment | None,
    old_placements_cells: dict[int, tuple[int, int]],
    receiver_id: int,
    parent_of: dict[int, int] | None,
    side: str,
) -> StateAssignment:
    """Pick the designated sender among old holders of a needed interval.

    Preference order implements the locality-aware exchange: (1) the
    receiver's expansion parent, (2) an old holder sharing the receiver's old
    column (for R transfers) or old row (for S transfers) — the pairwise
    partner of Fig. 3 — and (3) the lowest machine id as a deterministic
    fallback.
    """
    if parent_of and receiver_id in parent_of:
        for holder in holders:
            if holder.machine_id == parent_of[receiver_id]:
                return holder
    if receiver_old is not None and receiver_old.machine_id in old_placements_cells:
        receiver_cell = old_placements_cells[receiver_old.machine_id]
        for holder in holders:
            holder_cell = old_placements_cells.get(holder.machine_id)
            if holder_cell is None:
                continue
            if side == "R" and holder_cell[1] == receiver_cell[1]:
                return holder
            if side == "S" and holder_cell[0] == receiver_cell[0]:
                return holder
    return min(holders, key=lambda holder: holder.machine_id)


def plan_migration(
    old_placement: GridPlacement,
    new_placement: GridPlacement,
    parent_of: dict[int, int] | None = None,
) -> MigrationPlan:
    """Build the locality-aware migration plan between two placements.

    Args:
        old_placement: placement in force before the migration.
        new_placement: target placement.
        parent_of: for elastic expansions, maps each newly added machine to
            the old machine whose state it splits off from (Fig. 5).

    Returns:
        A :class:`MigrationPlan` whose transfers cover, exactly once, every
        piece of state some machine needs but did not hold.
    """
    old_assignments = assignments_for(old_placement)
    new_assignments = assignments_for(new_placement)
    old_cells = {machine_id: cell for machine_id, cell in old_placement.cells()}

    transfers: list[TransferInstruction] = []
    for receiver_id, new_assignment in new_assignments.items():
        receiver_old = old_assignments.get(receiver_id)
        for side in ("R", "S"):
            needed = new_assignment.interval(side)
            already = [receiver_old.interval(side)] if receiver_old else []
            missing_pieces = subtract_many(needed, already)
            for piece in missing_pieces:
                transfers.extend(
                    _cover_piece(
                        piece,
                        side,
                        receiver_id,
                        receiver_old,
                        old_assignments,
                        old_cells,
                        parent_of,
                    )
                )
    return MigrationPlan(
        old_assignments=old_assignments,
        new_assignments=new_assignments,
        transfers=transfers,
    )


def _cover_piece(
    piece: Interval,
    side: str,
    receiver_id: int,
    receiver_old: StateAssignment | None,
    old_assignments: dict[int, StateAssignment],
    old_cells: dict[int, tuple[int, int]],
    parent_of: dict[int, int] | None,
) -> list[TransferInstruction]:
    """Cover one missing interval piece with transfers from old holders."""
    remaining = [piece]
    instructions: list[TransferInstruction] = []
    while remaining:
        fragment = remaining.pop()
        holders = [
            assignment
            for assignment in old_assignments.values()
            if interval_intersection(assignment.interval(side), fragment) is not None
        ]
        if not holders:
            raise ValueError(
                f"no old holder covers {side} interval {fragment}; "
                "old and new placements are inconsistent"
            )
        sender = _preferred_sender(
            holders, receiver_old, old_cells, receiver_id, parent_of, side
        )
        covered = interval_intersection(sender.interval(side), fragment)
        assert covered is not None
        instructions.append(
            TransferInstruction(
                sender=sender.machine_id, receiver=receiver_id, side=side, interval=covered
            )
        )
        remaining.extend(interval_difference(fragment, covered))
    return instructions


def plan_naive_migration(
    old_placement: GridPlacement, new_placement: GridPlacement
) -> MigrationPlan:
    """Naive, non-locality-aware repartitioning plan (ablation baseline).

    The paper's §4.2.1 contrasts the locality-aware mechanism with
    "repartitioning all previous states around the joiners according to the
    new scheme" without regard for what each machine already holds.  We model
    that by assigning the new mapping's cells to machines in plain row-major
    order (ignoring the dyadic structure) and planning transfers against that
    placement: overlaps between old and new holdings largely disappear, so
    most of the state crosses the network instead of only the exchanged half.
    The plan still covers every needed interval exactly once, so running it
    through the operator remains correct — only the traffic differs.
    """
    naive_new = GridPlacement(
        mapping=new_placement.mapping,
        machine_ids=new_placement.machine_ids,
        layout="row_major",
    )
    return plan_migration(old_placement, naive_new)
