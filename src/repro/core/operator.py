"""The parallel online theta-join operators.

:class:`AdaptiveJoinOperator` is the paper's contribution ("Dynamic" in §5):
a content-insensitive, skew-resilient dataflow operator that continuously
re-optimises its (n, m)-mapping using decentralised statistics (Alg. 1), the
1.25-competitive migration decision rule (Alg. 2) and the non-blocking
eventually-consistent relocation protocol (Alg. 3).

:class:`GridJoinOperator` is the shared machinery: it assembles the Fig. 1c
topology (one reshuffler + one joiner per machine, one reshuffler doubling as
the controller) inside the simulated cluster, feeds the input streams and
harvests a :class:`~repro.core.results.RunResult`.  The static baselines and
the SHJ comparator of §5 are thin subclasses (see
:mod:`repro.core.baselines`).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.api.config import RunConfig
from repro.api.registry import batch_controllers, executors, register_operator
from repro.core.decision import MigrationController
from repro.core.mapping import Mapping, is_power_of_two, optimal_mapping, square_mapping
from repro.core.recovery import RecoveryManager
from repro.core.results import RunResult
from repro.core.tasks import HashReshufflerTask, JoinerTask, ReshufflerTask, Topology
from repro.data.queries import JoinQuery
from repro.engine.machine import CostModel
from repro.engine.network import ReliableWire
from repro.engine.simulator import Simulator
from repro.engine.stream import ArrivalSchedule, StreamTuple, interleave_streams, make_tuples
from repro.storage.checkpoint_store import CheckpointStore

#: Default micro-batch size of the batched data plane.  Chosen so that scale-up
#: runs are dominated by operator logic rather than per-event simulator
#: overhead, while batches stay small relative to the per-joiner input share.
#: ``batch_size=1`` selects the legacy per-tuple message path.
DEFAULT_BATCH_SIZE = 64


class GridJoinOperator:
    """Base class: a parallel join operator over a grid-partitioned cluster.

    The canonical construction is config-based (the :mod:`repro.api` way)::

        GridJoinOperator(query, config=RunConfig(machines=16, seed=7))

    Every run knob lives on the :class:`~repro.api.config.RunConfig`; keyword
    overrides passed alongside ``config`` are applied on top of it (call-site
    beats config).  The pre-``repro.api`` loose-kwargs construction —
    ``GridJoinOperator(query, 16, seed=7, ...)`` without a ``config`` —
    completed its one-release :class:`DeprecationWarning` period and now
    raises :class:`TypeError` pointing at the config path.

    Args:
        query: the workload (two materialised input streams + predicate).
        machines: number of joiners J; must be a power of two (the paper's
            experiments use 16–128; arbitrary J is handled analytically by
            :mod:`repro.core.groups`).  Overrides ``config.machines``.
        cost_model: CPU/network/storage cost model; defaults to
            :class:`~repro.engine.machine.CostModel`'s defaults.  Not part of
            :class:`RunConfig` (it is an object graph, not a serialisable
            knob); the config's ``memory_capacity`` is applied to it.
        config: the :class:`~repro.api.config.RunConfig` holding every run
            knob (machines, seed, epsilon, warmup, layout, blocking, memory,
            sampling, batch_size, probe_engine, pacing).
        initial_mapping: mapping in force at start-up; defaults to the square
            ``(√J, √J)`` scheme.  Operator-kind specific, hence not a config
            field (StaticOpt derives it from the query).
        adaptive: whether the controller may trigger migrations; operator-kind
            specific (the ``Dynamic`` subclass turns it on).
        **knobs: :class:`RunConfig` field overrides (``seed=...``,
            ``batch_size=...``, ...).  Unknown names raise eagerly, as do
            invalid values — e.g. an unregistered ``probe_engine`` or
            ``layout`` fails here with the registered choices listed, not
            deep inside joiner construction mid-run.
    """

    operator_name = "Grid"

    def __init__(
        self,
        query: JoinQuery,
        machines: int | None = None,
        cost_model: CostModel | None = None,
        *,
        config: RunConfig | None = None,
        initial_mapping: Mapping | None = None,
        adaptive: bool = False,
        **knobs,
    ) -> None:
        if config is None:
            if machines is not None or knobs:
                raise TypeError(
                    f"constructing {type(self).__name__} from loose keyword "
                    "arguments was removed after its deprecation release; "
                    "pass config=RunConfig(...) — optionally with keyword "
                    "overrides on top — or use repro.api.build_operator / "
                    "JoinSession (see repro.api)"
                )
            config = RunConfig()
        overrides = dict(knobs)
        if machines is not None:
            overrides["machines"] = machines
        # with_overrides re-validates every knob eagerly (unknown field names,
        # unregistered probe engines/layouts, invalid batch sizes, ...).
        config = config.with_overrides(**overrides)
        if not is_power_of_two(config.machines):
            raise ValueError(
                f"this operator implementation requires a power-of-two number of joiners, "
                f"got {config.machines}; see repro.core.groups for the general-J decomposition"
            )
        self.config = config
        self.query = query
        self.machines = config.machines
        self.cost_model = (cost_model or CostModel()).with_memory(config.memory_capacity)
        self.seed = config.seed
        self.initial_mapping = initial_mapping or square_mapping(config.machines)
        self.adaptive = adaptive
        self.epsilon = config.epsilon
        self.warmup_tuples = (
            config.warmup_tuples
            if config.warmup_tuples is not None
            else 4.0 * config.machines
        )
        self.layout = config.layout
        self.blocking = config.blocking
        self.sample_every = config.sample_every
        self.probe_engine = config.probe_engine
        # The batching plane.  The adaptive plane keeps the wire per-tuple
        # (identical message flow and virtual times to batch_size=1) and
        # coalesces backlog at the receiving machines instead; the controller
        # class was validated by RunConfig, instances are built per run.
        self.batching = config.batching
        self._batch_controller_class = batch_controllers.get(config.batching)
        self._drains = bool(getattr(self._batch_controller_class, "drains", False))
        if self._drains:
            self.batch_size = 1
            self.batch_max = config.batch_max
        else:
            self.batch_size = (
                DEFAULT_BATCH_SIZE if config.batch_size is None else int(config.batch_size)
            )
            self.batch_max = None
        # Wire-level delivery merging defaults on for receiver-draining planes
        # (it is what lets them match the fixed plane's wall-clock at
        # reference semantics) and off for the fixed/per-tuple planes, whose
        # per-tuple wire is itself the pinned reference.
        self.delivery_merging = (
            self._drains
            if config.delivery_merging is None
            else config.delivery_merging
        )
        # The fault-tolerant plane: active when there are crashes to inject
        # or durable checkpointing was requested.  Fault-free runs with the
        # plane active stay bit-identical to the reference plane (journaling
        # charges nothing and touches neither the heap nor the rng).
        self._fault_plane = (
            bool(config.fault_schedule) or config.checkpoint_interval is not None
        )
        # The executor backend the run executes on.  "simulated" (default) is
        # the virtual-time oracle; parallel backends ("threads") reproduce it
        # bit-identically behind the same (time, rank) merge order and only
        # add wall-clock-derived stats.  The class was validated by RunConfig.
        self.executor_name = config.executor
        self._executor = executors.get(config.executor).from_config(config)

    # ------------------------------------------------------------------ build

    def _reshuffler_class(self) -> type[ReshufflerTask]:
        return ReshufflerTask

    def _build_topology(self) -> Topology:
        topology = Topology(
            machines=self.machines,
            left_relation=self.query.left_relation,
            right_relation=self.query.right_relation,
            predicate=self.query.predicate,
            left_size=self.query.left_tuple_size,
            right_size=self.query.right_tuple_size,
            layout=self.layout,
        )
        topology.joiner_names = [f"joiner-{i}" for i in range(self.machines)]
        topology.reshuffler_names = [f"reshuffler-{i}" for i in range(self.machines)]
        topology.controller_name = topology.reshuffler_names[0]
        return topology

    def _build_tasks(self, topology: Topology, expected_inputs: int) -> list:
        tasks = []
        reshuffler_class = self._reshuffler_class()
        for machine_id in range(self.machines):
            is_controller = machine_id == 0
            controller = None
            if is_controller:
                controller = MigrationController(
                    machines=self.machines,
                    epsilon=self.epsilon,
                    r_size=self.query.left_tuple_size,
                    s_size=self.query.right_tuple_size,
                    warmup_tuples=self.warmup_tuples,
                    # The controller works off 1/J-sampled statistics (Alg. 1);
                    # a small improvement margin prevents migration thrashing
                    # on sampling noise around near-tie mappings.
                    min_improvement=0.02,
                )
            tasks.append(
                reshuffler_class(
                    name=topology.reshuffler_names[machine_id],
                    machine_id=machine_id,
                    topology=topology,
                    initial_mapping=self.initial_mapping,
                    controller=controller,
                    adaptive=self.adaptive,
                    blocking=self.blocking,
                    sample_every=self.sample_every,
                    expected_inputs=expected_inputs,
                    batch_size=self.batch_size,
                )
            )
            tasks.append(
                JoinerTask(
                    name=topology.joiner_names[machine_id],
                    machine_id=machine_id,
                    topology=topology,
                    batch_size=self.batch_size,
                    probe_engine=self.probe_engine,
                )
            )
        return tasks

    # ------------------------------------------------------------------- run

    def prepare_tuples(
        self, rng: random.Random
    ) -> tuple[list[StreamTuple], list[StreamTuple]]:
        """Wrap the query's records into salted stream tuples."""
        left = make_tuples(
            self.query.left_relation, self.query.left_records, rng, self.query.left_tuple_size
        )
        right = make_tuples(
            self.query.right_relation,
            self.query.right_records,
            rng,
            self.query.right_tuple_size,
        )
        return left, right

    def build_execution(
        self, collect_outputs: bool = False, expected_inputs: int = 0
    ) -> tuple[Simulator, Topology]:
        """A fresh execution substrate with the topology registered, no input fed.

        The substrate comes from the configured executor backend
        (``config.executor``): the virtual-time :class:`Simulator` for
        ``"simulated"``, a worker-thread-backed subclass for ``"threads"`` —
        everything registered on it (topology, batching plane, merged wire,
        fault plane) is executor-agnostic.  This is the half of :meth:`run`
        the streaming session facade reuses:
        :meth:`repro.api.session.JoinSession.push` feeds arrivals into the
        returned substrate incrementally and finally calls
        :meth:`collect_result` on it.
        """
        simulator = self._executor.build_simulator(
            num_machines=self.machines,
            cost_model=self.cost_model,
            seed=self.seed,
            collect_outputs=collect_outputs,
        )
        if self._drains:
            controller_class = self._batch_controller_class
            kwargs = {} if self.batch_max is None else {"batch_max": self.batch_max}
            simulator.install_batching(
                [controller_class(**kwargs) for _ in range(self.machines)]
            )
        if self.delivery_merging:
            simulator.enable_delivery_merging()
        topology = self._build_topology()
        tasks = self._build_tasks(topology, expected_inputs)
        simulator.register_all(tasks)
        if self._fault_plane:
            manager = RecoveryManager(
                simulator=simulator,
                topology=topology,
                store=CheckpointStore(),
                schedule=self.config.fault_schedule,
                checkpoint_interval=self.config.checkpoint_interval,
                ack_timeout=self.config.ack_timeout,
                max_retries=self.config.max_retries,
                initial_mapping=self.initial_mapping,
            )
            manager.attach_journals(simulator)
            simulator.install_faults(manager)
        if self.config.network_faults:
            simulator.install_network_faults(
                ReliableWire(
                    faults=self.config.network_faults,
                    retry_base=self.config.retry_base,
                    retry_max_attempts=self.config.retry_max_attempts,
                )
            )
        return simulator, topology

    #: Pre-executor-plane name of :meth:`build_execution`, kept as an alias
    #: for external callers ("simulation" stopped being accurate the moment
    #: a backend could run real worker threads).
    build_simulation = build_execution

    def run(
        self,
        arrival_pattern: str | None = None,
        inter_arrival: float | None = None,
        arrival_order: Sequence[StreamTuple] | None = None,
        collect_outputs: bool = False,
        max_events: int | None = None,
    ) -> RunResult:
        """Execute the operator on the workload inside a fresh simulation.

        Args:
            arrival_pattern: interleaving of the two input streams ("uniform",
                "alternate", "r_first", "s_first"); defaults to the config's
                pacing; ignored when an explicit ``arrival_order`` is supplied.
            inter_arrival: virtual-time gap between consecutive arrivals;
                defaults to the config's pacing.
            arrival_order: explicit arrival sequence (used by the fluctuation
                experiment of §5.4); must contain exactly the query's tuples.
            collect_outputs: retain every output pair for verification.
            max_events: optional safety bound on simulation events.

        Returns:
            A :class:`RunResult` with every measured quantity.
        """
        if arrival_pattern is None:
            arrival_pattern = self.config.arrival_pattern
        if inter_arrival is None:
            inter_arrival = self.config.inter_arrival
        rng = random.Random(self.seed)
        if arrival_order is None:
            left, right = self.prepare_tuples(rng)
            order = interleave_streams(left, right, rng, pattern=arrival_pattern)
        else:
            order = list(arrival_order)
        expected_inputs = len(order)

        simulator, topology = self.build_execution(
            collect_outputs=collect_outputs, expected_inputs=expected_inputs
        )

        reshuffler_names = topology.reshuffler_names
        schedule = ArrivalSchedule(items=order, inter_arrival=inter_arrival)
        simulator.feed_schedule(
            schedule,
            destination_picker=lambda _item: rng.choice(reshuffler_names),
            batch_size=self.batch_size,
        )
        simulator.run(max_events=max_events)
        return self.collect_result(simulator, topology, expected_inputs)

    # --------------------------------------------------------------- results

    def collect_result(
        self, simulator: Simulator, topology: Topology, expected_inputs: int
    ) -> RunResult:
        metrics = simulator.metrics
        controller_task = simulator.tasks[topology.controller_name]
        final_mapping = controller_task.mapping
        recovery = getattr(simulator, "_recovery", None)
        faults_injected = 0
        recovery_time = 0.0
        tuples_replayed = 0
        checkpoint_overhead = 0.0
        if recovery is not None:
            faults_injected = recovery.faults_injected
            recovery_time = recovery.recovery_time
            tuples_replayed = recovery.tuples_replayed
            checkpoint_overhead = float(recovery.store.bytes_written)
            recovery.store.close()
        wire = getattr(simulator, "_wire", None)
        return RunResult(
            operator=self.operator_name,
            query=self.query.name,
            machines=self.machines,
            execution_time=simulator.execution_time(),
            throughput=metrics.throughput(),
            output_count=metrics.output_count,
            output_throughput=metrics.output_throughput(),
            average_latency=metrics.average_latency(),
            max_ilf=simulator.max_machine_storage(),
            final_max_storage=max(machine.stored_size for machine in simulator.machines),
            total_storage=simulator.total_storage(),
            routing_volume=simulator.network.routing_volume(),
            migration_volume=simulator.network.migration_volume(),
            total_network_volume=simulator.network.total_volume(),
            migrations=metrics.migration_count(),
            spilled=simulator.any_spilled(),
            max_competitive_ratio=metrics.max_competitive_ratio(),
            final_mapping=final_mapping,
            events_processed=simulator.events_processed,
            batch_size=self.batch_size,
            batching=self.batching,
            batch_histogram=dict(metrics.drain_histogram) if self._drains else None,
            delivery_merging=self.delivery_merging,
            heap_events=simulator.heap_events,
            wire_histogram=(
                dict(metrics.wire_histogram) if self.delivery_merging else None
            ),
            migration_events=[
                (
                    event.epoch,
                    event.old_mapping,
                    event.new_mapping,
                    event.decided_at,
                    event.completed_at,
                )
                for event in metrics.migrations
            ],
            machine_busy=[
                (machine.busy_until, machine.busy_time)
                for machine in simulator.machines
            ],
            probe_work=metrics.probe_work,
            ilf_series=metrics.ilf_fraction_series(expected_inputs),
            ratio_series=list(metrics.ratio_series),
            cardinality_series=list(metrics.competitive_series),
            progress_series=metrics.progress_fraction_series(expected_inputs),
            outputs=list(metrics.outputs) if metrics.collect_outputs else None,
            executor=self.executor_name,
            wall_time=simulator.wall_time,
            worker_wall=(
                list(simulator.worker_wall)
                if hasattr(simulator, "worker_wall")
                else None
            ),
            worker_events=(
                list(simulator.worker_events)
                if hasattr(simulator, "worker_events")
                else None
            ),
            effective_workers=getattr(simulator, "num_workers", None),
            overlap_dispatches=getattr(simulator, "overlap_dispatches", 0),
            peak_inflight=getattr(simulator, "peak_inflight", 0),
            faults_injected=faults_injected,
            recovery_time=recovery_time,
            tuples_replayed=tuples_replayed,
            checkpoint_overhead=checkpoint_overhead,
            messages_dropped=wire.frames_dropped if wire is not None else 0,
            messages_duplicated=wire.frames_duplicated if wire is not None else 0,
            messages_retransmitted=(
                wire.frames_retransmitted if wire is not None else 0
            ),
            messages_reordered=wire.frames_reordered if wire is not None else 0,
            retransmit_histogram=(
                dict(wire.retransmit_histogram) if wire is not None else None
            ),
            wire_counters=wire.counters() if wire is not None else None,
        )


class AdaptiveJoinOperator(GridJoinOperator):
    """The paper's adaptive operator ("Dynamic" in the evaluation)."""

    operator_name = "Dynamic"

    def __init__(self, query: JoinQuery, machines: int | None = None, **kwargs) -> None:
        kwargs.setdefault("adaptive", True)
        super().__init__(query, machines, **kwargs)


def theoretical_optimal_mapping(query: JoinQuery, machines: int) -> Mapping:
    """The optimal mapping given oracle knowledge of the final stream sizes."""
    left_count, right_count = query.cardinalities
    return optimal_mapping(
        machines,
        max(left_count, 1),
        max(right_count, 1),
        query.left_tuple_size,
        query.right_tuple_size,
    )


register_operator("Grid", GridJoinOperator)
register_operator("Dynamic", AdaptiveJoinOperator)
