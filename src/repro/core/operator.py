"""The parallel online theta-join operators.

:class:`AdaptiveJoinOperator` is the paper's contribution ("Dynamic" in §5):
a content-insensitive, skew-resilient dataflow operator that continuously
re-optimises its (n, m)-mapping using decentralised statistics (Alg. 1), the
1.25-competitive migration decision rule (Alg. 2) and the non-blocking
eventually-consistent relocation protocol (Alg. 3).

:class:`GridJoinOperator` is the shared machinery: it assembles the Fig. 1c
topology (one reshuffler + one joiner per machine, one reshuffler doubling as
the controller) inside the simulated cluster, feeds the input streams and
harvests a :class:`~repro.core.results.RunResult`.  The static baselines and
the SHJ comparator of §5 are thin subclasses (see
:mod:`repro.core.baselines`).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.decision import MigrationController
from repro.core.mapping import Mapping, is_power_of_two, optimal_mapping, square_mapping
from repro.core.results import RunResult
from repro.core.tasks import HashReshufflerTask, JoinerTask, ReshufflerTask, Topology
from repro.data.queries import JoinQuery
from repro.engine.machine import CostModel
from repro.engine.simulator import Simulator
from repro.engine.stream import ArrivalSchedule, StreamTuple, interleave_streams, make_tuples

#: Default micro-batch size of the batched data plane.  Chosen so that scale-up
#: runs are dominated by operator logic rather than per-event simulator
#: overhead, while batches stay small relative to the per-joiner input share.
#: ``batch_size=1`` selects the legacy per-tuple message path.
DEFAULT_BATCH_SIZE = 64


class GridJoinOperator:
    """Base class: a parallel join operator over a grid-partitioned cluster.

    Args:
        query: the workload (two materialised input streams + predicate).
        machines: number of joiners J; must be a power of two (the paper's
            experiments use 16–128; arbitrary J is handled analytically by
            :mod:`repro.core.groups`).
        cost_model: CPU/network/storage cost model; defaults to
            :class:`~repro.engine.machine.CostModel`'s defaults.
        seed: seed controlling tuple salts, arrival interleaving and routing.
        initial_mapping: mapping in force at start-up; defaults to the square
            ``(√J, √J)`` scheme.
        adaptive: whether the controller may trigger migrations.
        epsilon: the ε of Theorem 4.2 (1.0 = Algorithm 2 as published).
        warmup_tuples: minimum (estimated global) tuple count before the first
            migration may be considered.
        layout: machine-to-cell layout, ``"dyadic"`` (locality-aware, default)
            or ``"row_major"`` (naive ablation).
        blocking: model the blocking actuation protocol instead of Alg. 3.
        memory_capacity: per-machine storage budget; ``None`` = unbounded.
        sample_every: controller sampling period for ILF/ratio time series.
        batch_size: micro-batch size of the data plane.  ``None`` selects
            :data:`DEFAULT_BATCH_SIZE`; ``1`` reproduces the per-tuple
            message-per-event behaviour event-for-event.
        probe_engine: joiner probe engine — ``"vectorized"`` (default,
            batch-aware probes with the exact-key fast path) or ``"scalar"``
            (per-member reference path; used for differential testing and as
            the probe-engine benchmark baseline).  Both charge identical
            simulated work; the knob only changes wall-clock behaviour.
    """

    operator_name = "Grid"

    def __init__(
        self,
        query: JoinQuery,
        machines: int,
        cost_model: CostModel | None = None,
        seed: int = 0,
        initial_mapping: Mapping | None = None,
        adaptive: bool = False,
        epsilon: float = 1.0,
        warmup_tuples: float | None = None,
        layout: str = "dyadic",
        blocking: bool = False,
        memory_capacity: float | None = None,
        sample_every: int = 200,
        batch_size: int | None = None,
        probe_engine: str = "vectorized",
    ) -> None:
        if not is_power_of_two(machines):
            raise ValueError(
                f"this operator implementation requires a power-of-two number of joiners, "
                f"got {machines}; see repro.core.groups for the general-J decomposition"
            )
        self.query = query
        self.machines = machines
        self.cost_model = (cost_model or CostModel()).with_memory(memory_capacity)
        self.seed = seed
        self.initial_mapping = initial_mapping or square_mapping(machines)
        self.adaptive = adaptive
        self.epsilon = epsilon
        self.warmup_tuples = warmup_tuples if warmup_tuples is not None else 4.0 * machines
        self.layout = layout
        self.blocking = blocking
        self.sample_every = sample_every
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        self.probe_engine = probe_engine

    # ------------------------------------------------------------------ build

    def _reshuffler_class(self) -> type[ReshufflerTask]:
        return ReshufflerTask

    def _build_topology(self) -> Topology:
        topology = Topology(
            machines=self.machines,
            left_relation=self.query.left_relation,
            right_relation=self.query.right_relation,
            predicate=self.query.predicate,
            left_size=self.query.left_tuple_size,
            right_size=self.query.right_tuple_size,
            layout=self.layout,
        )
        topology.joiner_names = [f"joiner-{i}" for i in range(self.machines)]
        topology.reshuffler_names = [f"reshuffler-{i}" for i in range(self.machines)]
        topology.controller_name = topology.reshuffler_names[0]
        return topology

    def _build_tasks(self, topology: Topology, expected_inputs: int) -> list:
        tasks = []
        reshuffler_class = self._reshuffler_class()
        for machine_id in range(self.machines):
            is_controller = machine_id == 0
            controller = None
            if is_controller:
                controller = MigrationController(
                    machines=self.machines,
                    epsilon=self.epsilon,
                    r_size=self.query.left_tuple_size,
                    s_size=self.query.right_tuple_size,
                    warmup_tuples=self.warmup_tuples,
                    # The controller works off 1/J-sampled statistics (Alg. 1);
                    # a small improvement margin prevents migration thrashing
                    # on sampling noise around near-tie mappings.
                    min_improvement=0.02,
                )
            tasks.append(
                reshuffler_class(
                    name=topology.reshuffler_names[machine_id],
                    machine_id=machine_id,
                    topology=topology,
                    initial_mapping=self.initial_mapping,
                    controller=controller,
                    adaptive=self.adaptive,
                    blocking=self.blocking,
                    sample_every=self.sample_every,
                    expected_inputs=expected_inputs,
                    batch_size=self.batch_size,
                )
            )
            tasks.append(
                JoinerTask(
                    name=topology.joiner_names[machine_id],
                    machine_id=machine_id,
                    topology=topology,
                    batch_size=self.batch_size,
                    probe_engine=self.probe_engine,
                )
            )
        return tasks

    # ------------------------------------------------------------------- run

    def prepare_tuples(
        self, rng: random.Random
    ) -> tuple[list[StreamTuple], list[StreamTuple]]:
        """Wrap the query's records into salted stream tuples."""
        left = make_tuples(
            self.query.left_relation, self.query.left_records, rng, self.query.left_tuple_size
        )
        right = make_tuples(
            self.query.right_relation,
            self.query.right_records,
            rng,
            self.query.right_tuple_size,
        )
        return left, right

    def run(
        self,
        arrival_pattern: str = "uniform",
        inter_arrival: float = 0.0,
        arrival_order: Sequence[StreamTuple] | None = None,
        collect_outputs: bool = False,
        max_events: int | None = None,
    ) -> RunResult:
        """Execute the operator on the workload inside a fresh simulation.

        Args:
            arrival_pattern: interleaving of the two input streams ("uniform",
                "alternate", "r_first", "s_first"); ignored when an explicit
                ``arrival_order`` is supplied.
            inter_arrival: virtual-time gap between consecutive arrivals.
            arrival_order: explicit arrival sequence (used by the fluctuation
                experiment of §5.4); must contain exactly the query's tuples.
            collect_outputs: retain every output pair for verification.
            max_events: optional safety bound on simulation events.

        Returns:
            A :class:`RunResult` with every measured quantity.
        """
        rng = random.Random(self.seed)
        simulator = Simulator(
            num_machines=self.machines,
            cost_model=self.cost_model,
            seed=self.seed,
            collect_outputs=collect_outputs,
        )
        if arrival_order is None:
            left, right = self.prepare_tuples(rng)
            order = interleave_streams(left, right, rng, pattern=arrival_pattern)
        else:
            order = list(arrival_order)
        expected_inputs = len(order)

        topology = self._build_topology()
        tasks = self._build_tasks(topology, expected_inputs)
        simulator.register_all(tasks)

        reshuffler_names = topology.reshuffler_names
        schedule = ArrivalSchedule(items=order, inter_arrival=inter_arrival)
        simulator.feed_schedule(
            schedule,
            destination_picker=lambda _item: rng.choice(reshuffler_names),
            batch_size=self.batch_size,
        )
        simulator.run(max_events=max_events)
        return self._collect_result(simulator, topology, expected_inputs)

    # --------------------------------------------------------------- results

    def _collect_result(
        self, simulator: Simulator, topology: Topology, expected_inputs: int
    ) -> RunResult:
        metrics = simulator.metrics
        controller_task = simulator.tasks[topology.controller_name]
        final_mapping = controller_task.mapping
        return RunResult(
            operator=self.operator_name,
            query=self.query.name,
            machines=self.machines,
            execution_time=simulator.execution_time(),
            throughput=metrics.throughput(),
            output_count=metrics.output_count,
            output_throughput=metrics.output_throughput(),
            average_latency=metrics.average_latency(),
            max_ilf=simulator.max_machine_storage(),
            final_max_storage=max(machine.stored_size for machine in simulator.machines),
            total_storage=simulator.total_storage(),
            routing_volume=simulator.network.routing_volume(),
            migration_volume=simulator.network.migration_volume(),
            total_network_volume=simulator.network.total_volume(),
            migrations=metrics.migration_count(),
            spilled=simulator.any_spilled(),
            max_competitive_ratio=metrics.max_competitive_ratio(),
            final_mapping=final_mapping,
            events_processed=simulator.events_processed,
            batch_size=self.batch_size,
            probe_work=metrics.probe_work,
            ilf_series=metrics.ilf_fraction_series(expected_inputs),
            ratio_series=list(metrics.ratio_series),
            cardinality_series=list(metrics.competitive_series),
            progress_series=metrics.progress_fraction_series(expected_inputs),
            outputs=list(metrics.outputs) if metrics.collect_outputs else None,
        )


class AdaptiveJoinOperator(GridJoinOperator):
    """The paper's adaptive operator ("Dynamic" in the evaluation)."""

    operator_name = "Dynamic"

    def __init__(self, query: JoinQuery, machines: int, **kwargs) -> None:
        kwargs.setdefault("adaptive", True)
        super().__init__(query, machines, **kwargs)


def theoretical_optimal_mapping(query: JoinQuery, machines: int) -> Mapping:
    """The optimal mapping given oracle knowledge of the final stream sizes."""
    left_count, right_count = query.cardinalities
    return optimal_mapping(
        machines,
        max(left_count, 1),
        max(right_count, 1),
        query.left_tuple_size,
        query.right_tuple_size,
    )
