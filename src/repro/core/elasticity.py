"""Elastic expansion of the operator (§4.2.2, Fig. 5, Theorem 4.3).

The query planner may not know in advance how many machines a join needs.
The elasticity scheme starts the operator on few joiners and, at migration
checkpoints, checks whether the per-joiner state exceeds half of a designated
maximum ``M``; if so, every joiner is split into four joiners (both ``n`` and
``m`` double), each original joiner shipping the appropriate quarters of its
state to its three children.  The expansion costs at most twice the state a
joiner held before expanding, keeping the amortised communication bound of
``O(1/ε)`` per input tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import GridPlacement, Mapping
from repro.core.migration import MigrationPlan, plan_migration


@dataclass(frozen=True)
class ExpansionPolicy:
    """When and how far the operator may expand.

    Attributes:
        max_tuples_per_joiner: the designated maximum ``M`` of §4.2.2; an
            expansion is triggered when per-joiner state exceeds ``M / 2`` at
            a migration checkpoint.
        max_machines: hard ceiling on the number of joiners (the size of the
            physical cluster the simulation pre-allocates).
        factor: expansion factor per step; the paper splits every joiner into
            4 (doubling both n and m).
    """

    max_tuples_per_joiner: float
    max_machines: int
    factor: int = 4

    def should_expand(self, per_joiner_state: float, current_machines: int) -> bool:
        """Whether an expansion is warranted and possible."""
        if current_machines * self.factor > self.max_machines:
            return False
        return per_joiner_state > self.max_tuples_per_joiner / 2.0


@dataclass(frozen=True)
class ExpansionStep:
    """One planned expansion: the new placement and the state-relocation plan."""

    old_placement: GridPlacement
    new_placement: GridPlacement
    plan: MigrationPlan
    parent_of: dict[int, int]


def expansion_mapping(mapping: Mapping, factor: int = 4) -> Mapping:
    """The mapping after one expansion step (both dimensions double for factor 4)."""
    if factor == 4:
        return Mapping(mapping.n * 2, mapping.m * 2)
    if factor == 2:
        # Double the dimension that currently has fewer partitions.
        if mapping.n <= mapping.m:
            return Mapping(mapping.n * 2, mapping.m)
        return Mapping(mapping.n, mapping.m * 2)
    raise ValueError("expansion factor must be 2 or 4")


def plan_expansion(
    old_placement: GridPlacement,
    new_machine_ids: list[int],
    factor: int = 4,
) -> ExpansionStep:
    """Plan the expansion of ``old_placement`` onto ``factor×`` as many machines.

    Args:
        old_placement: the placement currently in force.
        new_machine_ids: ids of the machines available after the expansion;
            must contain every old machine plus ``(factor - 1) · J`` new ones.
        factor: expansion factor (4 reproduces Fig. 5).

    Returns:
        An :class:`ExpansionStep` with the new placement, the locality-aware
        relocation plan and the parent relationship used to route each new
        joiner's state from the joiner it split off from.
    """
    old_ids = list(old_placement.machine_ids)
    missing = [machine for machine in old_ids if machine not in set(new_machine_ids)]
    if missing:
        raise ValueError(f"expansion must keep all old machines; missing {missing}")
    expected = len(old_ids) * factor
    if len(new_machine_ids) != expected:
        raise ValueError(
            f"expansion by {factor} needs {expected} machines, got {len(new_machine_ids)}"
        )

    new_mapping = expansion_mapping(old_placement.mapping, factor)
    fresh = [machine for machine in new_machine_ids if machine not in set(old_ids)]

    # Build the new placement so that each old machine keeps a cell whose
    # row/column ranges refine its old cell (it becomes one of its own
    # children), and assign the remaining child cells to fresh machines.
    ordered_ids: list[int | None] = [None] * (new_mapping.machines)
    new_placement_tmp = GridPlacement(mapping=new_mapping, machine_ids=tuple(range(new_mapping.machines)))
    parent_of: dict[int, int] = {}
    fresh_iter = iter(fresh)

    # Children cells of an old cell (row, col) under the doubled mapping.
    def children(row: int, col: int) -> list[tuple[int, int]]:
        rows = [row] if new_mapping.n == old_placement.mapping.n else [2 * row, 2 * row + 1]
        cols = [col] if new_mapping.m == old_placement.mapping.m else [2 * col, 2 * col + 1]
        return [(r, c) for r in rows for c in cols]

    for old_machine, (row, col) in old_placement.cells():
        child_cells = children(row, col)
        # The old machine keeps the first child cell; fresh machines take the rest.
        for index, (child_row, child_col) in enumerate(child_cells):
            local = new_placement_tmp.local_at(child_row, child_col)
            if index == 0:
                ordered_ids[local] = old_machine
            else:
                fresh_machine = next(fresh_iter)
                ordered_ids[local] = fresh_machine
                parent_of[fresh_machine] = old_machine

    if any(machine is None for machine in ordered_ids):
        raise RuntimeError("expansion placement left unassigned cells")
    new_placement = GridPlacement(mapping=new_mapping, machine_ids=tuple(ordered_ids))
    plan = plan_migration(old_placement, new_placement, parent_of=parent_of)
    return ExpansionStep(
        old_placement=old_placement,
        new_placement=new_placement,
        plan=plan,
        parent_of=parent_of,
    )


def expansion_cost_bound(stored_per_joiner: float) -> float:
    """Theorem 4.3's bound: expansion ships at most twice a joiner's stored state."""
    return 2.0 * stored_per_joiner
