"""The migration-decision algorithm (§4.2.1, Algorithm 2) and its ε variant.

The controller tracks the committed cardinalities ``|R|, |S|`` as of the last
migration decision and the deltas ``|ΔR|, |ΔS|`` received since.  Whenever a
delta reaches ``ε`` times its committed counterpart, the controller recomputes
the optimal ``(n, m)``-mapping for the new totals, commits the deltas and —
if the optimum changed — triggers a migration.

Theorem 4.1 (ε = 1): the resulting ILF is at most 1.25× the optimal ILF at
any point in time, and the amortised communication cost per input tuple
(including migrations) is O(1).  Theorem 4.2 generalises the ratio to
``(3 + 2ε) / (3 + ε)`` and the amortised cost to ``8/ε``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import Mapping, optimal_mapping


def competitive_ratio_bound(epsilon: float = 1.0) -> float:
    """ILF competitive-ratio bound of the ε-parameterised algorithm (Thm 4.2)."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    return (3.0 + 2.0 * epsilon) / (3.0 + epsilon)


def amortized_cost_bound(epsilon: float = 1.0) -> float:
    """Amortised per-tuple communication bound of the ε algorithm (Thm 4.2)."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    return 8.0 / epsilon


def generalized_ratio_bound(epsilon: float = 1.0, machines: int = 2) -> float:
    """Competitive ratio including the dummy-padding and grouping relaxations.

    §4.2.2: padding the smaller relation multiplies the ratio by at most
    ``1 + 1/J`` and the power-of-two group decomposition by at most another
    factor of two, giving the paper's headline 3.75 for ε = 1.
    """
    padding_factor = 1.0 + 1.0 / max(machines, 2)
    grouping_factor = 2.0
    return competitive_ratio_bound(epsilon) * padding_factor * grouping_factor


@dataclass
class MigrationDecision:
    """Outcome of one controller check."""

    migrate: bool
    new_mapping: Mapping
    old_mapping: Mapping
    committed_r: float
    committed_s: float


@dataclass
class MigrationController:
    """Algorithm 2 bookkeeping (with the ε generalisation of Theorem 4.2).

    Args:
        machines: number of joiners J (must be a power of two here; general J
            is handled one group at a time, see :mod:`repro.core.groups`).
        epsilon: adaptation aggressiveness; 1.0 reproduces Algorithm 2.
        r_size: size units of one left-relation tuple.
        s_size: size units of one right-relation tuple.
        warmup_tuples: number of (scaled) tuples to observe before the first
            migration may be considered — the paper's "initiate adaptivity"
            threshold used in §5.4.
        min_improvement: relative ILF improvement a new mapping must offer
            before a migration is actually triggered.  Algorithm 2 migrates on
            any strict improvement; with the 1/J-sampled statistics of Alg. 1 a
            near-tie can flip back and forth on noise alone, so a small margin
            avoids thrashing without affecting the competitive analysis (a
            mapping within ``min_improvement`` of the optimum trivially keeps
            the ratio within the bound times ``1 + min_improvement``).
    """

    machines: int
    epsilon: float = 1.0
    r_size: float = 1.0
    s_size: float = 1.0
    warmup_tuples: float = 0.0
    min_improvement: float = 0.0

    committed_r: float = 0.0
    committed_s: float = 0.0
    delta_r: float = 0.0
    delta_s: float = 0.0
    decisions: int = 0
    migrations_triggered: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.epsilon <= 1:
            raise ValueError("epsilon must be in (0, 1]")

    # ------------------------------------------------------------ observation

    def observe(self, is_left: bool, increment: float = 1.0) -> None:
        """Account ``increment`` newly arrived (estimated global) tuples.

        A reshuffler that sees a 1/J random sample of the input passes
        ``increment=J`` (the scaled increment of Alg. 1); an exact/centralised
        counter passes 1.
        """
        if is_left:
            self.delta_r += increment
        else:
            self.delta_s += increment

    @property
    def total_r(self) -> float:
        """Current estimate of |R| (committed + delta)."""
        return self.committed_r + self.delta_r

    @property
    def total_s(self) -> float:
        """Current estimate of |S| (committed + delta)."""
        return self.committed_s + self.delta_s

    @property
    def total(self) -> float:
        """Total tuples observed."""
        return self.total_r + self.total_s

    # --------------------------------------------------------------- decision

    def threshold_reached(self) -> bool:
        """Whether ``|ΔR| ≥ ε|R|`` or ``|ΔS| ≥ ε|S|`` (Alg. 2 line 2)."""
        if self.total < self.warmup_tuples:
            return False
        trigger_r = self.delta_r >= self.epsilon * self.committed_r and self.delta_r > 0
        trigger_s = self.delta_s >= self.epsilon * self.committed_s and self.delta_s > 0
        return trigger_r or trigger_s

    def optimal_for_totals(self) -> Mapping:
        """Optimal mapping for the current totals (Alg. 2 line 3)."""
        return optimal_mapping(
            self.machines, max(self.total_r, 1.0), max(self.total_s, 1.0), self.r_size, self.s_size
        )

    def check(self, current_mapping: Mapping) -> MigrationDecision | None:
        """Run the migration decision (Alg. 2).

        Returns ``None`` when the threshold has not been reached.  When it has,
        the deltas are committed and a :class:`MigrationDecision` is returned;
        ``decision.migrate`` tells whether the optimal mapping actually changed.
        """
        if not self.threshold_reached():
            return None
        new_mapping = self.optimal_for_totals()
        current_ilf = self.current_ilf(current_mapping)
        optimal_ilf = self.current_ilf(new_mapping)
        self.committed_r = self.total_r
        self.committed_s = self.total_s
        self.delta_r = 0.0
        self.delta_s = 0.0
        self.decisions += 1
        migrate = (
            new_mapping != current_mapping
            and optimal_ilf < current_ilf * (1.0 - self.min_improvement)
        )
        if migrate:
            self.migrations_triggered += 1
        return MigrationDecision(
            migrate=migrate,
            new_mapping=new_mapping,
            old_mapping=current_mapping,
            committed_r=self.committed_r,
            committed_s=self.committed_s,
        )

    # -------------------------------------------------------------- reporting

    def current_ilf(self, mapping: Mapping) -> float:
        """ILF of ``mapping`` under the current totals."""
        return mapping.ilf(self.total_r, self.total_s, self.r_size, self.s_size)

    def optimal_ilf(self) -> float:
        """ILF of the instantaneous optimal mapping under the current totals."""
        return self.optimal_for_totals().ilf(
            self.total_r, self.total_s, self.r_size, self.s_size
        )

    def competitive_ratio(self, mapping: Mapping) -> float:
        """Observed ILF / ILF* ratio for ``mapping`` right now (Fig. 8c)."""
        optimal = self.optimal_ilf()
        if optimal <= 0:
            return 1.0
        return self.current_ilf(mapping) / optimal
