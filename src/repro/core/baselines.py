"""The baseline operators of the evaluation (§5, "Operators").

* **StaticMid** — a static operator with the fixed ``(√J, √J)`` mapping: the
  best guess when nothing is known about the stream sizes.
* **StaticOpt** — a static operator with the optimal mapping, which requires
  oracle knowledge of the final stream sizes (unattainable online); Dynamic
  is expected to track it closely.
* **SHJ** — the parallel symmetric hash join: content-sensitive partitioning
  on the join key, applicable to equi-joins only, efficient without skew but
  crippled by skewed key distributions.
"""

from __future__ import annotations

from repro.core.mapping import square_mapping
from repro.core.operator import GridJoinOperator, theoretical_optimal_mapping
from repro.core.tasks import HashReshufflerTask, ReshufflerTask
from repro.data.queries import JoinQuery


class StaticMidOperator(GridJoinOperator):
    """Static operator with the fixed ``(√J, √J)`` mapping."""

    operator_name = "StaticMid"

    def __init__(self, query: JoinQuery, machines: int, **kwargs) -> None:
        kwargs.setdefault("adaptive", False)
        kwargs.setdefault("initial_mapping", square_mapping(machines))
        super().__init__(query, machines, **kwargs)


class StaticOptOperator(GridJoinOperator):
    """Static operator with the omniscient optimal mapping (oracle baseline)."""

    operator_name = "StaticOpt"

    def __init__(self, query: JoinQuery, machines: int, **kwargs) -> None:
        kwargs.setdefault("adaptive", False)
        kwargs.setdefault("initial_mapping", theoretical_optimal_mapping(query, machines))
        super().__init__(query, machines, **kwargs)


class SymmetricHashOperator(GridJoinOperator):
    """Parallel symmetric hash join (content-sensitive, equi-joins only)."""

    operator_name = "SHJ"

    def __init__(self, query: JoinQuery, machines: int, **kwargs) -> None:
        if query.predicate.kind != "equi":
            raise ValueError(
                f"the SHJ operator supports only equi-join predicates; "
                f"{query.name} uses {query.predicate.describe()}"
            )
        kwargs.setdefault("adaptive", False)
        super().__init__(query, machines, **kwargs)

    def _reshuffler_class(self) -> type[ReshufflerTask]:
        return HashReshufflerTask


OPERATOR_CLASSES = {
    "StaticMid": StaticMidOperator,
    "StaticOpt": StaticOptOperator,
    "SHJ": SymmetricHashOperator,
}


def make_operator(kind: str, query: JoinQuery, machines: int, **kwargs):
    """Factory over every operator used by the evaluation, including Dynamic."""
    from repro.core.operator import AdaptiveJoinOperator

    registry = dict(OPERATOR_CLASSES)
    registry["Dynamic"] = AdaptiveJoinOperator
    try:
        operator_class = registry[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown operator {kind!r}; available: {', '.join(sorted(registry))}"
        ) from exc
    return operator_class(query, machines, **kwargs)
