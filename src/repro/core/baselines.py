"""The baseline operators of the evaluation (§5, "Operators").

* **StaticMid** — a static operator with the fixed ``(√J, √J)`` mapping: the
  best guess when nothing is known about the stream sizes.
* **StaticOpt** — a static operator with the optimal mapping, which requires
  oracle knowledge of the final stream sizes (unattainable online); Dynamic
  is expected to track it closely.
* **SHJ** — the parallel symmetric hash join: content-sensitive partitioning
  on the join key, applicable to equi-joins only, efficient without skew but
  crippled by skewed key distributions.

Every operator class registers itself in the
:data:`repro.api.registry.operators` registry (``Dynamic`` and ``Grid``
register in :mod:`repro.core.operator`); the public way to construct by kind
name is :func:`repro.api.build_operator`.  :func:`make_operator` survives as
a registry front door that routes every knob through a validated
:class:`~repro.api.config.RunConfig` (the loose-kwargs constructor shim it
used to feed was removed after its deprecation release).
"""

from __future__ import annotations

from repro.api.registry import register_operator
from repro.core.mapping import square_mapping
from repro.core.operator import GridJoinOperator, theoretical_optimal_mapping
from repro.core.tasks import HashReshufflerTask, ReshufflerTask
from repro.data.queries import JoinQuery


class StaticMidOperator(GridJoinOperator):
    """Static operator with the fixed ``(√J, √J)`` mapping."""

    operator_name = "StaticMid"

    def __init__(self, query: JoinQuery, machines: int | None = None, **kwargs) -> None:
        kwargs.setdefault("adaptive", False)
        # The square mapping is the base default; nothing extra to derive.
        super().__init__(query, machines, **kwargs)


class StaticOptOperator(GridJoinOperator):
    """Static operator with the omniscient optimal mapping (oracle baseline)."""

    operator_name = "StaticOpt"

    def __init__(self, query: JoinQuery, machines: int | None = None, **kwargs) -> None:
        kwargs.setdefault("adaptive", False)
        explicit_mapping = kwargs.pop("initial_mapping", None)
        super().__init__(query, machines, initial_mapping=explicit_mapping, **kwargs)
        if explicit_mapping is None:
            # Derived after super() resolved the machine count from the config.
            self.initial_mapping = theoretical_optimal_mapping(query, self.machines)


class SymmetricHashOperator(GridJoinOperator):
    """Parallel symmetric hash join (content-sensitive, equi-joins only)."""

    operator_name = "SHJ"

    def __init__(self, query: JoinQuery, machines: int | None = None, **kwargs) -> None:
        if query.predicate.kind != "equi":
            raise ValueError(
                f"the SHJ operator supports only equi-join predicates; "
                f"{query.name} uses {query.predicate.describe()}"
            )
        kwargs.setdefault("adaptive", False)
        super().__init__(query, machines, **kwargs)

    def _reshuffler_class(self) -> type[ReshufflerTask]:
        return HashReshufflerTask


register_operator("StaticMid", StaticMidOperator)
register_operator("StaticOpt", StaticOptOperator)
register_operator("SHJ", SymmetricHashOperator)


def make_operator(kind: str, query: JoinQuery, machines: int | None = None, **kwargs):
    """Registry front door mirroring :func:`repro.api.build_operator`.

    The historical loose-kwargs *constructor* shim was removed after its
    deprecation release; this helper now routes every knob through a
    validated :class:`~repro.api.config.RunConfig` (``machines`` and keyword
    overrides are config overrides; ``config=`` may be passed explicitly).
    """
    from repro.api.session import build_operator

    if machines is not None:
        kwargs["machines"] = machines
    return build_operator(kind, query, kwargs.pop("config", None), **kwargs)
