"""Crash recovery for the join plane: journaling, checkpoints and restore.

The fault-tolerant plane has three moving parts:

* **Journals** — thin per-task wrappers (:class:`JoinerJournal`,
  :class:`ReshufflerJournal`) that tasks call at every state mutation.  Each
  entry is one replayable delta in the run's
  :class:`~repro.storage.checkpoint_store.CheckpointStore`; at epoch-aligned
  safe points (joiners: NORMAL phase; reshufflers: between tuples) a full
  snapshot truncates the delta log.
* **Crash handling** — the simulator calls :meth:`RecoveryManager.on_crash`
  when a scheduled fault fires: the delta buffers are force-flushed (the
  on-disk journal is complete before recovery reads it) and the machine's
  volatile storage accounting is zeroed.
* **Restore** — :meth:`RecoveryManager.on_restart` rebuilds the machine's
  joiner and reshuffler from snapshot + delta replay, *through the real
  protocol handlers*.  Replayed handlers return output/migration actions that
  are discarded: every output the dead machine emitted before the crash is
  already in the global metrics collector, and every migration it sent is
  durably on the wire (fail-stop at handler boundaries, see
  :mod:`repro.engine.faults`) — so replay restores state without duplicating
  effects, giving exactly-once output semantics.

Recovery is framed as an **involuntary migration**: the crash log records the
dead machine's :class:`~repro.core.migration.StateAssignment` under the
mapping in force — precisely the state intervals a voluntary migration plan
would have relocated — and the restore replays the relocation from the
durable journal instead of from peer machines.

What recovery pins, and what it does not: a fault-free run with journaling
enabled is bit-identical to the reference plane (journaling touches no heap,
rng, charge or metric).  A crashed run pins the *output multiset* against its
fault-free twin (Theorem 4.5 holds under any migration sequence, including
the involuntary one), while timings and the migration sequence may diverge;
replaying the same crashed run twice is bit-identical.

The whole plane is executor-agnostic: on the threaded backend handlers
journal from worker threads (the checkpoint store hands each thread its own
SQLite connection behind one store-wide lock), faults are barriers on the
dispatch frontier, and a crashed threaded run is bit-identical to the
crashed oracle (``tests/test_threads_recovery.py``).

Composition with the unreliable wire (``RunConfig.network_faults``): the
reliable-delivery sublayer dedups *below* the task layer — a message is
released to a task at most once, however many times the wire duplicated or
retransmitted it — and its per-link sequencer state is durable across the
receiver's crashes (it is simulator state, not machine state).  A
retransmitted-then-crashed message is therefore either discarded by wire
dedup (an earlier copy was already released) or redelivered exactly once
from the outage buffer; journal replay then restores the applied state
without re-running the wire, so the exactly-once argument above composes
unchanged.
"""

from __future__ import annotations

from repro.core.epochs import EpochJoinerState, JoinerPhase
from repro.core.mapping import Mapping
from repro.core.migration import assignments_for


class JoinerJournal:
    """Delta journal + snapshot policy for one joiner task."""

    def __init__(self, manager: "RecoveryManager", task_name: str) -> None:
        self.manager = manager
        self.task_name = task_name

    def log(self, entry: tuple) -> None:
        self.manager.store.log(self.task_name, entry)

    def maybe_snapshot(self, task) -> None:
        """Snapshot at an epoch-aligned safe point once enough deltas piled up.

        Only the NORMAL phase is a safe point: mid-migration state (the four
        tag partitions, the signal set, the plan) is transient and fully
        reproducible from the preceding NORMAL snapshot plus the signal/data
        deltas, so snapshots simply wait for the migration to finalize.
        """
        interval = self.manager.checkpoint_interval
        if interval is None:
            return
        store = self.manager.store
        if store.delta_count(self.task_name) < interval:
            return
        state = task.state
        if state.phase is not JoinerPhase.NORMAL:
            return
        left = state.left_relation
        right = state.store.opposite(left)
        store.snapshot(
            self.task_name,
            {
                "epoch": state.current_epoch,
                "relations": {
                    left: list(state.store.stored(left)),
                    right: list(state.store.stored(right)),
                },
                "ends": set(state._received_ends),
                "early": list(state._early_messages),
                "ends_sent_for": task._ends_sent_for,
            },
        )


class ReshufflerJournal:
    """Delta journal + snapshot policy for one reshuffler task.

    Protocol-exact, statistics-stale: the protocol-critical fields (epoch,
    mapping, in-flight flag, ack count) are journaled as deltas and restored
    exactly, while the controller statistics and the ``_seen`` counter come
    from the last periodic snapshot and may be stale after a crash.  Stale
    statistics are safe — the output multiset is correct under any migration
    sequence (Theorem 4.5) and the restored run stays deterministic — and
    because the mapping itself is exact, a stale controller can never trigger
    a migration to the mapping already in force.
    """

    def __init__(self, manager: "RecoveryManager", task_name: str) -> None:
        self.manager = manager
        self.task_name = task_name
        self._last_snap_seen = 0

    def log(self, entry: tuple) -> None:
        self.manager.store.log(self.task_name, entry)

    def maybe_snapshot(self, task) -> None:
        interval = self.manager.checkpoint_interval
        if interval is None:
            return
        if task._seen - self._last_snap_seen < interval:
            return
        self._last_snap_seen = task._seen
        controller = task.controller
        self.manager.store.snapshot(
            self.task_name,
            {
                "epoch": task.epoch,
                "mapping": (task.mapping.n, task.mapping.m),
                "in_flight": task.migration_in_flight,
                "acks": task.acks_received,
                "seen": task._seen,
                "buffering": task.buffering,
                "buffer": list(task._buffer),
                "controller": None
                if controller is None
                else {
                    "committed_r": controller.committed_r,
                    "committed_s": controller.committed_s,
                    "delta_r": controller.delta_r,
                    "delta_s": controller.delta_s,
                    "decisions": controller.decisions,
                    "migrations_triggered": controller.migrations_triggered,
                },
            },
        )


class RecoveryManager:
    """Per-run crash/restore coordinator attached to the simulator.

    Args:
        simulator: the run's simulator (tasks, machines, cost model).
        topology: the operator topology (task names, plan/placement caches).
        store: the run's durable checkpoint store.
        schedule: the normalized fault schedule to inject.
        checkpoint_interval: deltas between snapshots (None = journal only).
        ack_timeout / max_retries: link-layer failure-detection knobs.
        initial_mapping: the (n, m) scheme in force at start-up — the restore
            baseline for a reshuffler that never reached a snapshot.
    """

    def __init__(
        self,
        simulator,
        topology,
        store,
        schedule,
        checkpoint_interval,
        ack_timeout,
        max_retries,
        initial_mapping,
    ) -> None:
        self.simulator = simulator
        self.topology = topology
        self.store = store
        self.schedule = tuple(schedule)
        self.checkpoint_interval = checkpoint_interval
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.initial_mapping = (initial_mapping.n, initial_mapping.m)

        self.faults_injected = 0
        self.recovery_time = 0.0
        self.tuples_replayed = 0
        self._crash_times: dict[int, float] = {}
        #: One entry per crash, framing the recovery as an involuntary
        #: migration: the dead machine's state assignment under the mapping
        #: in force is exactly what a voluntary plan would have relocated.
        self.fault_log: list[dict] = []

    # -------------------------------------------------------------- journals

    def attach_journals(self, simulator) -> None:
        """Give every joiner and reshuffler its journal wrapper."""
        for name in self.topology.joiner_names:
            simulator.tasks[name]._journal = JoinerJournal(self, name)
        for name in self.topology.reshuffler_names:
            simulator.tasks[name]._journal = ReshufflerJournal(self, name)

    # ----------------------------------------------------------------- crash

    def on_crash(self, machine_id: int, time: float) -> None:
        """Fail-stop bookkeeping: flush the journal, zero volatile storage."""
        self.faults_injected += 1
        self._crash_times[machine_id] = time
        # The write-behind delta buffers must be durable before restore reads
        # them (group commit at crash time).
        self.store.flush()
        controller = self.simulator.tasks[self.topology.controller_name]
        mapping = controller.mapping
        assignment = assignments_for(self.topology.placement(mapping)).get(machine_id)
        self.fault_log.append(
            {
                "machine": machine_id,
                "time": time,
                "mapping": (mapping.n, mapping.m),
                "r_interval": None if assignment is None else assignment.r_interval,
                "s_interval": None if assignment is None else assignment.s_interval,
            }
        )
        machine = self.simulator.machines[machine_id]
        machine.stored_size = 0.0
        machine.clear_drain_window()

    # --------------------------------------------------------------- restore

    def on_restart(self, machine_id: int, time: float) -> tuple[float, int]:
        """Rebuild the machine's tasks from the journal.

        Returns ``(restore_cost, tuples_replayed)``: the virtual-time cost of
        re-materialising the snapshot and replaying the deltas (charged to the
        reborn machine like migration work), and the number of data/µ tuples
        replayed through the real handlers.
        """
        joiner = self.simulator.tasks[self.topology.joiner(machine_id)]
        reshuffler = self.simulator.tasks[self.topology.reshuffler_names[machine_id]]
        snapshot_tuples, replayed = self._restore_joiner(joiner)
        self._restore_reshuffler(reshuffler)
        cost_model = self.simulator.cost_model
        restore_cost = (
            cost_model.store_cost * snapshot_tuples
            + cost_model.migration_cost * replayed
        )
        machine = self.simulator.machines[machine_id]
        restored = joiner.state.store.stored_size()
        if joiner.state._parts is not None:
            restored += sum(
                part.stored_size() for part in joiner.state._parts.values()
            )
        machine.stored_size = restored
        if restored > machine.peak_stored_size:
            machine.peak_stored_size = restored
        crash_time = self._crash_times.pop(machine_id, time)
        self.recovery_time += (time - crash_time) + restore_cost
        self.tuples_replayed += replayed
        return restore_cost, replayed

    def _restore_joiner(self, task) -> tuple[int, int]:
        """Snapshot + delta replay through the real protocol handlers."""
        snapshot, deltas = self.store.load(task.name)
        old_state = task.state
        state = EpochJoinerState(
            machine_id=task.machine_id,
            store=old_state.store.fresh(),
            num_reshufflers=old_state.num_reshufflers,
            left_relation=old_state.left_relation,
        )
        snapshot_tuples = 0
        task._ends_sent_for = None
        if snapshot is not None:
            state.current_epoch = snapshot["epoch"]
            for relation, items in snapshot["relations"].items():
                state.store.bulk_insert(relation, items)
                snapshot_tuples += len(items)
            state._received_ends = set(snapshot["ends"])
            state._early_messages = list(snapshot["early"])
            task._ends_sent_for = snapshot["ends_sent_for"]
        topology = self.topology
        replayed = 0
        for entry in deltas:
            kind = entry[0]
            if kind == "data":
                state.handle_data(entry[1])
                replayed += 1
            elif kind == "mu":
                state.handle_migrated(entry[1])
                replayed += 1
            elif kind == "signal":
                _, epoch, old_mapping, new_mapping, sender = entry
                plan = topology.plan(Mapping(*old_mapping), Mapping(*new_mapping))
                state.handle_signal(epoch, plan, reshuffler=sender)
            elif kind == "end":
                state.register_migration_end(entry[1])
            elif kind == "ends_sent":
                task._ends_sent_for = entry[1]
            elif kind == "final":
                state.finalize()
            else:  # pragma: no cover - the journal only holds the kinds above
                raise RuntimeError(f"unknown joiner journal entry: {entry!r}")
        task.state = state
        return snapshot_tuples, replayed

    def _restore_reshuffler(self, task) -> None:
        snapshot, deltas = self.store.load(task.name)
        controller = task.controller
        if snapshot is not None:
            task.epoch = snapshot["epoch"]
            task.mapping = Mapping(*snapshot["mapping"])
            task.migration_in_flight = snapshot["in_flight"]
            task.acks_received = snapshot["acks"]
            task._seen = snapshot["seen"]
            task.buffering = snapshot["buffering"]
            task._buffer = list(snapshot["buffer"])
            stats = snapshot["controller"]
            if controller is not None and stats is not None:
                controller.committed_r = stats["committed_r"]
                controller.committed_s = stats["committed_s"]
                controller.delta_r = stats["delta_r"]
                controller.delta_s = stats["delta_s"]
                controller.decisions = stats["decisions"]
                controller.migrations_triggered = stats["migrations_triggered"]
        else:
            task.epoch = 0
            task.mapping = Mapping(*self.initial_mapping)
            task.migration_in_flight = False
            task.acks_received = 0
            task._seen = 0
            task.buffering = False
            task._buffer = []
            if controller is not None:
                controller.committed_r = 0.0
                controller.committed_s = 0.0
                controller.delta_r = 0.0
                controller.delta_s = 0.0
                controller.decisions = 0
                controller.migrations_triggered = 0
        machines = self.topology.machines
        for entry in deltas:
            kind = entry[0]
            if kind == "rmap":
                task.epoch = entry[1]
                task.mapping = Mapping(*entry[2])
            elif kind == "rack":
                task.acks_received += 1
                if task.acks_received >= machines:
                    task.migration_in_flight = False
            elif kind == "rtrig":
                task.migration_in_flight = True
                task.acks_received = 0
            else:  # pragma: no cover - the journal only holds the kinds above
                raise RuntimeError(f"unknown reshuffler journal entry: {entry!r}")
