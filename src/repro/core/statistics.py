"""Decentralised cardinality statistics (§4.1, Algorithm 1).

Reshufflers receive data that was randomly shuffled by the previous stage, so
each reshuffler's local sample, scaled by the number of machines ``J``, is an
unbiased estimate of the global cardinality.  No central statistics service
and no peer exchange is needed; any reshuffler (in particular the controller)
can reconstruct global estimates from what it has seen locally.

:class:`CardinalityEstimator` implements exactly that: per-relation local
counts with scaled global estimates and simple binomial confidence intervals
(the "statistical estimation theory tools" the paper alludes to).  An *exact*
mode is provided for experiments that want to isolate the effect of sampling
error (used by the statistics ablation tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class CardinalityEstimate:
    """A point estimate with a symmetric confidence interval."""

    estimate: float
    half_width: float

    @property
    def low(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def high(self) -> float:
        return self.estimate + self.half_width


@dataclass
class CardinalityEstimator:
    """Per-reshuffler statistics manager.

    Args:
        scale: the factor by which local observations are scaled to global
            estimates — ``J`` for a reshuffler that sees ``1/J`` of the input
            (Alg. 1 lines 3 and 5), or ``1`` for exact/centralised counting.
    """

    scale: int = 1
    local_r: int = 0
    local_s: int = 0
    weighted_r: float = 0.0
    weighted_s: float = 0.0

    def observe(self, is_left: bool, size: float = 1.0) -> None:
        """Record one locally observed tuple of the left (R) or right (S) stream."""
        if is_left:
            self.local_r += 1
            self.weighted_r += size
        else:
            self.local_s += 1
            self.weighted_s += size

    # -------------------------------------------------------------- estimates

    @property
    def r_estimate(self) -> float:
        """Scaled estimate of the global ``|R|`` (in tuples)."""
        return float(self.local_r * self.scale)

    @property
    def s_estimate(self) -> float:
        """Scaled estimate of the global ``|S|`` (in tuples)."""
        return float(self.local_s * self.scale)

    @property
    def r_weighted_estimate(self) -> float:
        """Scaled estimate of the global R volume (in size units)."""
        return self.weighted_r * self.scale

    @property
    def s_weighted_estimate(self) -> float:
        """Scaled estimate of the global S volume (in size units)."""
        return self.weighted_s * self.scale

    def ratio(self) -> float:
        """Estimated cardinality ratio ``|R| / |S|`` (∞-safe)."""
        if self.local_s == 0:
            return math.inf if self.local_r else 1.0
        return self.local_r / self.local_s

    def confidence(self, is_left: bool, confidence_level: float = 0.95) -> CardinalityEstimate:
        """Confidence interval on the global cardinality estimate.

        The local sample of size ``k`` out of a global population ``N ≈ k·J``
        behaves like a binomial sample with success probability ``1/J``; the
        normal-approximation interval on ``N`` follows.
        """
        z_value = {0.9: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence_level, 1.96)
        local = self.local_r if is_left else self.local_s
        estimate = float(local * self.scale)
        if local == 0 or self.scale <= 1:
            return CardinalityEstimate(estimate=estimate, half_width=0.0)
        # Var[N_hat] = J^2 * Var[k] with k ~ Binomial(N, 1/J)  ->  approx N * (J - 1).
        variance = estimate * (self.scale - 1)
        return CardinalityEstimate(estimate=estimate, half_width=z_value * math.sqrt(variance))

    def merge(self, other: "CardinalityEstimator") -> "CardinalityEstimator":
        """Combine two local estimators (used when a controller fails over, §4.1)."""
        merged = CardinalityEstimator(scale=self.scale)
        merged.local_r = self.local_r + other.local_r
        merged.local_s = self.local_s + other.local_s
        merged.weighted_r = self.weighted_r + other.weighted_r
        merged.weighted_s = self.weighted_s + other.weighted_s
        return merged

    def reset(self) -> None:
        """Clear all counters (used by tests)."""
        self.local_r = 0
        self.local_s = 0
        self.weighted_r = 0.0
        self.weighted_s = 0.0
