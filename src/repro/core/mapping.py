"""(n, m)-mapping schemes, input-load factor and the grid placement.

Under the grid-layout partitioning scheme of §3.1/§3.4 the join matrix is
divided into ``n × m = J`` congruent rectangular regions: the left relation is
split into ``n`` partitions and the right one into ``m`` partitions, and the
machine at grid cell ``(i, j)`` stores partitions ``R_i`` and ``S_j`` and
evaluates ``R_i ⋈ S_j``.

The **input-load factor** (ILF) of a mapping is the per-machine input/storage
size ``size_R·|R|/n + size_S·|S|/m`` — the only performance metric that
depends on the chosen mapping (§3.3).  The optimal mapping minimises it.

:class:`GridPlacement` assigns physical machines to grid cells with a *dyadic*
layout: machine ``k``'s row is given by the high bits of ``k`` and its column
by the bit-reversed low bits.  This makes row indexes coarsen (``row >> 1``)
and column indexes refine (``2·col + bit``) when the mapping moves from
``(n, m)`` to ``(n/2, 2m)``, which is exactly the structure that the
locality-aware migration of §4.2.1 (Fig. 3) exploits: the non-exchanged
relation is a pure local discard and the exchanged relation moves only between
sibling pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

# The accepted machine-to-cell layouts live in the dependency-free registry
# leaf so RunConfig validation and GridPlacement share one authority;
# re-exported here because layouts are conceptually a mapping-layer concern.
from repro.api.registry import LAYOUTS  # noqa: F401


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value >= 1 and (value & (value - 1)) == 0


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the lowest ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@dataclass(frozen=True, order=True)
class Mapping:
    """An ``(n, m)``-mapping scheme: ``n`` row partitions × ``m`` column partitions."""

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1:
            raise ValueError("mapping dimensions must be positive")

    @property
    def machines(self) -> int:
        """Number of machines the mapping uses (``J = n·m``)."""
        return self.n * self.m

    def ilf(
        self,
        r_count: float,
        s_count: float,
        r_size: float = 1.0,
        s_size: float = 1.0,
    ) -> float:
        """Input-load factor of this mapping for the given cardinalities."""
        return r_size * r_count / self.n + s_size * s_count / self.m

    def region_area(self, r_count: float, s_count: float) -> float:
        """Join-matrix cells evaluated per machine (independent of n, m)."""
        return r_count * s_count / self.machines

    def neighbours(self) -> list["Mapping"]:
        """The two mappings reachable by a single dyadic step (Lemma 4.2)."""
        result = []
        if self.n % 2 == 0:
            result.append(Mapping(self.n // 2, self.m * 2))
        if self.m % 2 == 0:
            result.append(Mapping(self.n * 2, self.m // 2))
        return result

    def __str__(self) -> str:
        return f"({self.n},{self.m})"


def power_of_two_mappings(machines: int) -> list[Mapping]:
    """All ``(n, m)`` mappings with ``n·m = machines`` and both powers of two."""
    if not is_power_of_two(machines):
        raise ValueError(
            f"J={machines} is not a power of two; decompose it into groups "
            "(repro.core.groups) before choosing mappings"
        )
    bits = machines.bit_length() - 1
    return [Mapping(1 << a, 1 << (bits - a)) for a in range(bits + 1)]


def square_mapping(machines: int) -> Mapping:
    """The ``(√J, √J)`` mapping used to initialise operators (StaticMid's scheme).

    For non-square powers of two the row count gets the extra factor of two,
    e.g. J=32 -> (8, 4)... rounded toward a balanced split: (4, 8).
    """
    if not is_power_of_two(machines):
        raise ValueError("square_mapping requires a power-of-two machine count")
    bits = machines.bit_length() - 1
    n = 1 << (bits // 2)
    return Mapping(n, machines // n)


def optimal_mapping(
    machines: int,
    r_count: float,
    s_count: float,
    r_size: float = 1.0,
    s_size: float = 1.0,
) -> Mapping:
    """The power-of-two mapping minimising the ILF for the given cardinalities.

    Ties are broken toward the more balanced (smaller ``|n - m|``) mapping so
    the choice is deterministic.
    """
    candidates = power_of_two_mappings(machines)
    return min(
        candidates,
        key=lambda mapping: (
            mapping.ilf(r_count, s_count, r_size, s_size),
            abs(mapping.n - mapping.m),
            mapping.n,
        ),
    )


def ilf_lower_bound(
    machines: int, r_count: float, s_count: float, r_size: float = 1.0, s_size: float = 1.0
) -> float:
    """Continuous lower bound ``2·√(size_R·|R|·size_S·|S|/J)`` on the semi-perimeter.

    This is the bound the competitive ratios of §3.4 and §4.2 are stated
    against; the actual optimal power-of-two mapping can be up to ~1.07× above
    it (Theorem 3.2).
    """
    if machines < 1:
        raise ValueError("machines must be positive")
    return 2.0 * math.sqrt(r_size * r_count * s_size * s_count / machines)


@dataclass(frozen=True)
class GridPlacement:
    """Assignment of machines to the cells of an ``(n, m)`` grid.

    Args:
        mapping: the grid shape.
        machine_ids: the physical machine ids used, in local-index order; by
            default machines ``0..J-1``.  Groups (non-power-of-two clusters)
            and elastic expansions pass explicit id lists.
        layout: ``"dyadic"`` (default) uses the bit-reversal layout that makes
            one-step migrations pairwise-local (Fig. 3); ``"row_major"`` is a
            naive layout used as the non-locality-aware ablation baseline.
    """

    mapping: Mapping
    machine_ids: tuple[int, ...] = ()
    layout: str = "dyadic"
    # Memoised per-row/per-column fan-out lists (placement is immutable).
    _row_fanout: dict = field(default_factory=dict, compare=False, repr=False)
    _col_fanout: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.mapping.n) or not is_power_of_two(self.mapping.m):
            raise ValueError("GridPlacement requires power-of-two mapping dimensions")
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {', '.join(map(repr, LAYOUTS))}")
        ids = self.machine_ids or tuple(range(self.mapping.machines))
        if len(ids) != self.mapping.machines:
            raise ValueError(
                f"placement needs exactly {self.mapping.machines} machines, got {len(ids)}"
            )
        object.__setattr__(self, "machine_ids", tuple(ids))

    # ----------------------------------------------------------- cell lookup

    @property
    def _col_bits(self) -> int:
        return self.mapping.m.bit_length() - 1

    def cell_of_local(self, local_index: int) -> tuple[int, int]:
        """Grid cell of the machine with local index ``local_index``."""
        if self.layout == "row_major":
            return local_index // self.mapping.m, local_index % self.mapping.m
        bits = self._col_bits
        row = local_index >> bits
        col = bit_reverse(local_index & (self.mapping.m - 1), bits)
        return row, col

    def local_at(self, row: int, col: int) -> int:
        """Local machine index assigned to cell ``(row, col)``."""
        if not (0 <= row < self.mapping.n and 0 <= col < self.mapping.m):
            raise IndexError(f"cell ({row}, {col}) outside {self.mapping}")
        if self.layout == "row_major":
            return row * self.mapping.m + col
        bits = self._col_bits
        return (row << bits) | bit_reverse(col, bits)

    def cell_of(self, machine_id: int) -> tuple[int, int]:
        """Grid cell of a physical machine id."""
        return self.cell_of_local(self.machine_ids.index(machine_id))

    def machine_at(self, row: int, col: int) -> int:
        """Physical machine id assigned to cell ``(row, col)``."""
        return self.machine_ids[self.local_at(row, col)]

    # ------------------------------------------------------------- fan-out

    def machines_for_row(self, row: int) -> tuple[int, ...]:
        """Machines storing left-relation partition ``row`` (one per column).

        Memoised: the reshufflers call this once per routed tuple.
        """
        cached = self._row_fanout.get(row)
        if cached is None:
            cached = tuple(self.machine_at(row, col) for col in range(self.mapping.m))
            self._row_fanout[row] = cached
        return cached

    def machines_for_col(self, col: int) -> tuple[int, ...]:
        """Machines storing right-relation partition ``col`` (one per row)."""
        cached = self._col_fanout.get(col)
        if cached is None:
            cached = tuple(self.machine_at(row, col) for row in range(self.mapping.n))
            self._col_fanout[col] = cached
        return cached

    def cells(self) -> Iterator[tuple[int, tuple[int, int]]]:
        """Iterate over ``(machine_id, (row, col))`` for every cell."""
        for local_index, machine_id in enumerate(self.machine_ids):
            yield machine_id, self.cell_of_local(local_index)

    # ----------------------------------------------------------- assignments

    def r_interval(self, machine_id: int) -> tuple[float, float]:
        """Salt interval of the left relation assigned to ``machine_id``."""
        row, _ = self.cell_of(machine_id)
        return row / self.mapping.n, (row + 1) / self.mapping.n

    def s_interval(self, machine_id: int) -> tuple[float, float]:
        """Salt interval of the right relation assigned to ``machine_id``."""
        _, col = self.cell_of(machine_id)
        return col / self.mapping.m, (col + 1) / self.mapping.m
