"""The join-matrix model and the geometry results of §3.

A join between streams ``R`` and ``S`` is modelled as a matrix ``M`` whose
cell ``M(i, j)`` is true iff ``r_i`` and ``s_j`` satisfy the join predicate;
any join condition is a subset of the cross product, so the model is fully
general.  A partitioning scheme covers the matrix with regions, one per
machine; the per-machine input size is the (weighted) semi-perimeter of its
region and the per-machine join work is its area.

This module provides the geometric quantities and the two schemes compared in
§3.4: the paper's grid-layout scheme (Theorem 3.2: semi-perimeter within
1.07× of optimal, area exactly optimal) and the square-region scheme of Okcan
& Riedewald (Theorem 3.1: within 2× / 4× respectively).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.mapping import Mapping, ilf_lower_bound, optimal_mapping, power_of_two_mappings
from repro.joins.predicates import JoinPredicate


@dataclass(frozen=True)
class JoinMatrix:
    """Dimensions (and optionally tuple sizes) of a join matrix."""

    r_count: float
    s_count: float
    r_size: float = 1.0
    s_size: float = 1.0

    def area(self) -> float:
        """Total number of candidate cells ``|R|·|S|``."""
        return self.r_count * self.s_count

    def region_area(self, mapping: Mapping) -> float:
        """Cells evaluated by one machine under ``mapping`` (mapping independent)."""
        return self.area() / mapping.machines

    def region_semi_perimeter(self, mapping: Mapping) -> float:
        """Weighted semi-perimeter of one region: the mapping's ILF."""
        return mapping.ilf(self.r_count, self.s_count, self.r_size, self.s_size)

    def semi_perimeter_lower_bound(self, machines: int) -> float:
        """Optimal continuous lower bound ``2·√(|R||S|/J)`` (weighted)."""
        return ilf_lower_bound(machines, self.r_count, self.s_count, self.r_size, self.s_size)

    def area_lower_bound(self, machines: int) -> float:
        """Optimal per-machine area ``|R||S|/J``."""
        return self.area() / machines

    def optimal_grid_mapping(self, machines: int) -> Mapping:
        """Best power-of-two grid mapping for these dimensions."""
        return optimal_mapping(machines, self.r_count, self.s_count, self.r_size, self.s_size)

    def grid_competitive_ratio(self, machines: int) -> float:
        """Semi-perimeter of the best grid mapping over the continuous lower bound.

        Theorem 3.2 proves this never exceeds ``(1/√2 + √2)/2 ≈ 1.0607``
        (reported as 1.07 in the paper) whenever the cardinality ratio is
        within a factor ``J``; the ratio is exactly 1 beyond that.
        """
        best = self.optimal_grid_mapping(machines)
        return self.region_semi_perimeter(best) / self.semi_perimeter_lower_bound(machines)

    def count_true_cells(
        self, left_records: list[dict], right_records: list[dict], predicate: JoinPredicate
    ) -> int:
        """Materialise the join matrix for small inputs (used by tests/examples)."""
        return sum(
            1
            for left in left_records
            for right in right_records
            if predicate.matches(left, right)
        )


GRID_SEMI_PERIMETER_BOUND = (1.0 / math.sqrt(2.0) + math.sqrt(2.0)) / 2.0
"""Tight constant of Theorem 3.2 (≈ 1.0607, quoted as 1.07 in the paper)."""


@dataclass(frozen=True)
class OkcanSquareScheme:
    """The square-region ("1-Bucket-Theta") scheme of Okcan & Riedewald.

    The join matrix is covered with square regions of equal side; some
    machines may be left unused.  Theorem 3.1 (quoted from [28]) bounds its
    region semi-perimeter by ``4·√(|R||S|/J)`` and its region area by
    ``4·|R||S|/J``.
    """

    matrix: JoinMatrix
    machines: int

    def side(self) -> float:
        """Square side chosen so that at most ``J`` squares cover the matrix."""
        area_per_machine = self.matrix.area() / self.machines
        side = math.sqrt(area_per_machine)
        rows = max(1, math.ceil(self.matrix.r_count / side))
        cols = max(1, math.ceil(self.matrix.s_count / side))
        while rows * cols > self.machines:
            side *= 1.05
            rows = max(1, math.ceil(self.matrix.r_count / side))
            cols = max(1, math.ceil(self.matrix.s_count / side))
        return side

    def regions_used(self) -> int:
        """Number of machines actually assigned a region."""
        side = self.side()
        rows = max(1, math.ceil(self.matrix.r_count / side))
        cols = max(1, math.ceil(self.matrix.s_count / side))
        return rows * cols

    def region_semi_perimeter(self) -> float:
        """Weighted semi-perimeter of one square region."""
        side = self.side()
        r_side = min(side, self.matrix.r_count)
        s_side = min(side, self.matrix.s_count)
        return self.matrix.r_size * r_side + self.matrix.s_size * s_side

    def region_area(self) -> float:
        """Cells evaluated by one used machine."""
        side = self.side()
        return min(side, self.matrix.r_count) * min(side, self.matrix.s_count)

    def satisfies_theorem_3_1(self) -> bool:
        """Check the 4×-semi-perimeter / 4×-area bounds of Theorem 3.1."""
        semi_ok = self.region_semi_perimeter() <= 4.0 * math.sqrt(
            self.matrix.area() / self.machines
        ) + max(self.matrix.r_size, self.matrix.s_size)
        area_ok = self.region_area() <= 4.0 * self.matrix.area() / self.machines + 1.0
        return semi_ok and area_ok


def mapping_spectrum(matrix: JoinMatrix, machines: int) -> list[tuple[Mapping, float]]:
    """Every power-of-two mapping with its ILF, sorted from best to worst.

    Useful for the Fig. 2 style comparison of mapping choices and for the
    Fig. 7c/7d sweep over "how far the optimal mapping is from (√J, √J)".
    """
    pairs = [
        (mapping, matrix.region_semi_perimeter(mapping))
        for mapping in power_of_two_mappings(machines)
    ]
    return sorted(pairs, key=lambda pair: pair[1])
