"""Core: the adaptive online theta-join operator and its building blocks.

The sub-modules map one-to-one onto the paper's sections:

* :mod:`repro.core.join_matrix` / :mod:`repro.core.mapping` — §3 (join-matrix
  model, grid-layout partitioning, input-load factor).
* :mod:`repro.core.statistics` — §4.1 (decentralised statistics, Alg. 1).
* :mod:`repro.core.decision` — §4.2.1 (migration decision, Alg. 2, Thm 4.1/4.2).
* :mod:`repro.core.migration` — §4.2.1 (locality-aware migration, Fig. 3).
* :mod:`repro.core.groups` / :mod:`repro.core.elasticity` — §4.2.2
  (general J, elasticity, Fig. 4/5).
* :mod:`repro.core.epochs` — §4.3.1 (eventually-consistent protocol, Alg. 3).
* :mod:`repro.core.operator` / :mod:`repro.core.baselines` — §5's Dynamic,
  StaticMid, StaticOpt and SHJ operators.
"""

from repro.core.baselines import (
    StaticMidOperator,
    StaticOptOperator,
    SymmetricHashOperator,
    make_operator,
)
from repro.core.decision import (
    MigrationController,
    amortized_cost_bound,
    competitive_ratio_bound,
    generalized_ratio_bound,
)
from repro.core.elasticity import ExpansionPolicy, plan_expansion
from repro.core.epochs import EpochJoinerState, JoinerPhase, ProtocolError
from repro.core.groups import GroupedCluster, power_of_two_decomposition
from repro.core.join_matrix import JoinMatrix, OkcanSquareScheme, mapping_spectrum
from repro.core.mapping import (
    GridPlacement,
    Mapping,
    ilf_lower_bound,
    optimal_mapping,
    power_of_two_mappings,
    square_mapping,
)
from repro.core.migration import MigrationPlan, plan_migration, plan_naive_migration
from repro.core.operator import (
    AdaptiveJoinOperator,
    GridJoinOperator,
    theoretical_optimal_mapping,
)
from repro.core.results import RunResult
from repro.core.statistics import CardinalityEstimator

__all__ = [
    "AdaptiveJoinOperator",
    "CardinalityEstimator",
    "EpochJoinerState",
    "ExpansionPolicy",
    "GridJoinOperator",
    "GridPlacement",
    "GroupedCluster",
    "JoinMatrix",
    "JoinerPhase",
    "Mapping",
    "MigrationController",
    "MigrationPlan",
    "OkcanSquareScheme",
    "ProtocolError",
    "RunResult",
    "StaticMidOperator",
    "StaticOptOperator",
    "SymmetricHashOperator",
    "amortized_cost_bound",
    "competitive_ratio_bound",
    "generalized_ratio_bound",
    "ilf_lower_bound",
    "make_operator",
    "mapping_spectrum",
    "optimal_mapping",
    "plan_expansion",
    "plan_migration",
    "plan_naive_migration",
    "power_of_two_decomposition",
    "power_of_two_mappings",
    "square_mapping",
    "theoretical_optimal_mapping",
]
