"""The eventually-consistent, non-blocking migration protocol (§4.3.1, Alg. 3).

System operation is divided into *epochs*: every mapping change opens a new
epoch, reshufflers tag routed tuples with the latest epoch they know, and
joiners keep processing tuples throughout the state relocation while
reasoning about four tuple sets:

* ``τ``  — tuples received before the migration decision (committed state),
* ``Δ``  — tuples tagged with the old epoch that arrive during the migration,
* ``Δ'`` — tuples tagged with the new epoch,
* ``µ``  — tuples received from other joiners due to the migration.

:class:`EpochJoinerState` implements the joiner side of Algorithm 3
(HandleTuple1 / HandleTuple2 / FinalizeMigration) as an engine-independent
state machine so that the protocol's correctness — the output after the
migration equals ``(τ ∪ Δ ∪ Δ') ⋈ (τ ∪ Δ ∪ Δ')`` with no duplicates
(Definition 4.4, Theorem 4.5) — can be tested in isolation and reused by the
simulated joiner task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.migration import MigrationPlan
from repro.engine.stream import StreamTuple
from repro.joins.local import LocalJoiner


class ProtocolError(RuntimeError):
    """Raised when a message violates the epoch protocol's guarantees."""


class JoinerPhase(enum.Enum):
    """Phase of a joiner with respect to the current migration."""

    NORMAL = "normal"        # no migration in progress; HandleTuple1 degenerate path
    MIGRATING = "migrating"  # some (not all) reshuffler signals received; HandleTuple1
    DRAINED = "drained"      # all reshuffler signals received; HandleTuple2


@dataclass(slots=True)
class TupleActions:
    """Everything a joiner task must do after the state machine handled a tuple.

    Attributes:
        matches: output pairs, already oriented ``(left_tuple, right_tuple)``.
        probe_work: number of index candidates inspected (for CPU accounting).
        stored: whether the incoming tuple was added to local state.
        migrate_to: ``(destination_machine, tuple)`` relocations this joiner
            must send because it is the designated sender.
    """

    matches: list[tuple[StreamTuple, StreamTuple]] = field(default_factory=list)
    probe_work: float = 0.0
    stored: bool = False
    migrate_to: list[tuple[int, StreamTuple]] = field(default_factory=list)


@dataclass
class FinalizeResult:
    """Result of FinalizeMigration: what was discarded, and the closed epoch."""

    discarded: list[StreamTuple]
    epoch: int


# Tags for the tuple sets of Algorithm 3.
_TAU = "tau"
_DELTA = "delta"
_DELTA_PRIME = "delta_prime"
_MU = "mu"
_OLD_TAGS = (_TAU, _DELTA)
_ALL_TAGS = (_TAU, _DELTA, _DELTA_PRIME, _MU)


class EpochJoinerState:
    """Algorithm 3 state machine for one joiner.

    Args:
        machine_id: id of the hosting machine (used to look itself up in
            migration plans).
        store: the local non-blocking join algorithm holding this joiner's
            state for both relations.
        num_reshufflers: number of reshuffler tasks; a migration's old epoch
            is closed once signals from all of them arrived.
        left_relation: relation treated as the "R" (row) side.
    """

    def __init__(
        self,
        machine_id: int,
        store: LocalJoiner,
        num_reshufflers: int,
        left_relation: str,
    ) -> None:
        self.machine_id = machine_id
        self.store = store
        self.num_reshufflers = num_reshufflers
        self.left_relation = left_relation

        self.current_epoch = 0
        self.phase = JoinerPhase.NORMAL
        self.plan: MigrationPlan | None = None
        self.pending_epoch: int | None = None

        self._tags: dict[int, str] = {}
        self._keep: dict[int, bool] = {}
        self._signals: set[str] = set()
        self._expected_senders: set[int] = set()
        self._received_ends: set[int] = set()
        self._early_messages: list[tuple[str, StreamTuple]] = []

    # ------------------------------------------------------------------ util

    def _side(self, item: StreamTuple) -> str:
        return "R" if item.relation == self.left_relation else "S"

    def _oriented(self, new_item: StreamTuple, stored_item: StreamTuple):
        if new_item.relation == self.left_relation:
            return new_item, stored_item
        return stored_item, new_item

    def _restrict(self, tags: tuple[str, ...], require_keep: bool = False):
        def accept(stored_item: StreamTuple) -> bool:
            tag = self._tags.get(stored_item.tuple_id)
            if tag not in tags:
                return False
            if require_keep:
                return self._keep.get(stored_item.tuple_id, True)
            return True

        return accept

    def _join(
        self,
        item: StreamTuple,
        actions: TupleActions,
        tags: tuple[str, ...],
        require_keep: bool = False,
    ) -> None:
        # Every stored tuple carries one of the four tags, so the all-tags
        # filter is a tautology — skip it on the hot NORMAL path.
        if tags is _ALL_TAGS and not require_keep:
            restrict = None
        else:
            restrict = self._restrict(tags, require_keep)
        matches, work = self.store.probe(item, restrict)
        actions.probe_work += work
        if matches:
            actions.matches.extend(self._oriented(item, match) for match in matches)

    def _store(self, item: StreamTuple, tag: str, keep: bool | None = None) -> None:
        self.store.insert(item)
        self._tags[item.tuple_id] = tag
        if keep is not None:
            self._keep[item.tuple_id] = keep

    # -------------------------------------------------------------- counters

    def stored_count(self) -> int:
        """Number of tuples currently stored (including not-yet-discarded ones)."""
        return len(self._tags)

    def migration_in_progress(self) -> bool:
        """Whether a migration is currently being executed."""
        return self.phase is not JoinerPhase.NORMAL

    # ------------------------------------------------------------ data tuples

    def handle_data(self, item: StreamTuple) -> TupleActions:
        """Handle a data tuple routed by a reshuffler (HandleTuple1/2 data paths)."""
        actions = TupleActions()
        if item.epoch > self.current_epoch and self.phase is JoinerPhase.NORMAL:
            # The reshuffler learned about the new epoch before we received any
            # signal; buffer until the first signal brings the migration plan.
            self._early_messages.append(("data", item))
            return actions

        if self.phase is JoinerPhase.NORMAL:
            if item.epoch != self.current_epoch:
                raise ProtocolError(
                    f"joiner {self.machine_id} in epoch {self.current_epoch} received a "
                    f"tuple tagged with past epoch {item.epoch}"
                )
            # Normal operation: join with everything stored, then store as τ.
            self._join(item, actions, _ALL_TAGS)
            self._store(item, _TAU)
            actions.stored = True
            return actions

        if item.epoch == self.current_epoch:
            if self.phase is JoinerPhase.DRAINED:
                raise ProtocolError(
                    f"joiner {self.machine_id} received an old-epoch tuple after all "
                    "reshufflers signalled the epoch change"
                )
            return self._handle_delta(item, actions)
        if item.epoch == self.pending_epoch:
            return self._handle_delta_prime(item, actions)
        raise ProtocolError(
            f"joiner {self.machine_id} received epoch {item.epoch} while migrating "
            f"from {self.current_epoch} to {self.pending_epoch}"
        )

    def _handle_delta(self, item: StreamTuple, actions: TupleActions) -> TupleActions:
        """Old-epoch tuple during migration (Alg. 3 lines 15-20)."""
        assert self.plan is not None
        self._join(item, actions, _OLD_TAGS)
        keep = self.plan.keeps(self.machine_id, self._side(item), item.salt)
        self._store(item, _DELTA, keep=keep)
        actions.stored = True
        if keep:
            self._join(item, actions, (_DELTA_PRIME,))
        destinations = self.plan.destinations_for(self.machine_id, self._side(item), item.salt)
        actions.migrate_to.extend((destination, item) for destination in destinations)
        return actions

    def _handle_delta_prime(self, item: StreamTuple, actions: TupleActions) -> TupleActions:
        """New-epoch tuple during migration (Alg. 3 lines 12-14 and 24-26)."""
        self._join(item, actions, (_MU, _DELTA_PRIME))
        self._join(item, actions, _OLD_TAGS, require_keep=True)
        self._store(item, _DELTA_PRIME)
        actions.stored = True
        return actions

    # ------------------------------------------------------- migration tuples

    def handle_migrated(self, item: StreamTuple) -> TupleActions:
        """Handle a µ tuple relocated from another joiner (Alg. 3 lines 10-11, 22-23)."""
        actions = TupleActions()
        if self.phase is JoinerPhase.NORMAL:
            self._early_messages.append(("migrated", item))
            return actions
        self._join(item, actions, (_DELTA_PRIME,))
        self._store(item, _MU)
        actions.stored = True
        return actions

    # ----------------------------------------------------------------- signals

    def handle_signal(
        self, epoch: int, plan: MigrationPlan, reshuffler: str
    ) -> tuple[list[tuple[int, StreamTuple]], list[tuple[StreamTuple, TupleActions]]]:
        """Handle an epoch-change signal from ``reshuffler``.

        Returns ``(migrations, replayed)`` where ``migrations`` are the
        ``(destination, tuple)`` relocations triggered by this signal (the τ
        batch on the first signal) and ``replayed`` pairs each buffered early
        message that can now be processed with its resulting actions.
        """
        if epoch == self.current_epoch:
            return [], []
        if self.pending_epoch is not None and epoch != self.pending_epoch:
            raise ProtocolError(
                f"joiner {self.machine_id} saw a signal for epoch {epoch} while still "
                f"migrating to epoch {self.pending_epoch}; machines must be at most one "
                "epoch behind the controller"
            )

        migrations: list[tuple[int, StreamTuple]] = []
        replayed: list[tuple[StreamTuple, TupleActions]] = []
        if self.pending_epoch is None:
            # First signal: adopt the plan and ship the committed state τ.
            # _signals and _received_ends are NOT cleared here: an end-of-
            # migration marker from a fast sender may legitimately arrive
            # before our first signal and must not be lost.
            self.pending_epoch = epoch
            self.plan = plan
            self.phase = JoinerPhase.MIGRATING
            self._expected_senders = plan.senders_to(self.machine_id)
            migrations.extend(self._ship_tau())
            replayed.extend(self._drain_early_messages())

        self._signals.add(reshuffler)
        if len(self._signals) >= self.num_reshufflers:
            self.phase = JoinerPhase.DRAINED
        return migrations, replayed

    def _ship_tau(self) -> list[tuple[int, StreamTuple]]:
        """Send τ for migration (Alg. 3 line 3) and pre-compute keep flags."""
        assert self.plan is not None
        migrations: list[tuple[int, StreamTuple]] = []
        for item in list(self.store.stored(self.left_relation)) + list(
            self.store.stored(self.store.opposite(self.left_relation))
        ):
            tag = self._tags.get(item.tuple_id)
            if tag not in _OLD_TAGS:
                continue
            side = self._side(item)
            self._keep[item.tuple_id] = self.plan.keeps(self.machine_id, side, item.salt)
            for destination in self.plan.destinations_for(self.machine_id, side, item.salt):
                migrations.append((destination, item))
        return migrations

    def _drain_early_messages(self) -> list[tuple[StreamTuple, TupleActions]]:
        replayed = []
        pending, self._early_messages = self._early_messages, []
        for kind, item in pending:
            if kind == "data":
                replayed.append((item, self.handle_data(item)))
            else:
                replayed.append((item, self.handle_migrated(item)))
        return replayed

    # --------------------------------------------------------------- finalize

    def register_migration_end(self, sender_machine: int) -> None:
        """Record an end-of-migration marker from a designated sender."""
        self._received_ends.add(sender_machine)

    def can_finalize(self) -> bool:
        """Whether the migration can be finalised (Alg. 3 "Migration Ended")."""
        if self.phase is not JoinerPhase.DRAINED:
            return False
        return self._expected_senders.issubset(self._received_ends)

    def finalize(self) -> FinalizeResult:
        """FinalizeMigration (Alg. 3 lines 27-30): discard, merge sets, reset."""
        if not self.can_finalize():
            raise ProtocolError("finalize() called before the migration completed")
        assert self.pending_epoch is not None
        discarded = []
        for relation in (self.left_relation, self.store.opposite(self.left_relation)):
            for item in list(self.store.stored(relation)):
                tag = self._tags.get(item.tuple_id)
                if tag in _OLD_TAGS and not self._keep.get(item.tuple_id, True):
                    self.store.remove(item)
                    self._tags.pop(item.tuple_id, None)
                    discarded.append(item)
        # τ <- Keep(τ ∪ Δ) ∪ µ ∪ Δ'
        for tuple_id in list(self._tags):
            self._tags[tuple_id] = _TAU
        closed_epoch = self.pending_epoch
        self.current_epoch = closed_epoch
        self.pending_epoch = None
        self.plan = None
        self.phase = JoinerPhase.NORMAL
        self._keep.clear()
        self._signals.clear()
        self._expected_senders.clear()
        self._received_ends.clear()
        return FinalizeResult(discarded=discarded, epoch=closed_epoch)
