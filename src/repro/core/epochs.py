"""The eventually-consistent, non-blocking migration protocol (§4.3.1, Alg. 3).

System operation is divided into *epochs*: every mapping change opens a new
epoch, reshufflers tag routed tuples with the latest epoch they know, and
joiners keep processing tuples throughout the state relocation while
reasoning about four tuple sets:

* ``τ``  — tuples received before the migration decision (committed state),
* ``Δ``  — tuples tagged with the old epoch that arrive during the migration,
* ``Δ'`` — tuples tagged with the new epoch,
* ``µ``  — tuples received from other joiners due to the migration.

:class:`EpochJoinerState` implements the joiner side of Algorithm 3
(HandleTuple1 / HandleTuple2 / FinalizeMigration) as an engine-independent
state machine so that the protocol's correctness — the output after the
migration equals ``(τ ∪ Δ ∪ Δ') ⋈ (τ ∪ Δ ∪ Δ')`` with no duplicates
(Definition 4.4, Theorem 4.5) — can be tested in isolation and reused by the
simulated joiner task.

Tag-partitioned stores: during a migration the joiner's state is held in four
sub-stores — ``Keep(τ ∪ Δ)``, ``Drop(τ ∪ Δ)``, ``Δ'`` and ``µ`` — instead of
one store plus a per-candidate tag filter.  A protocol probe selects the
partitions of its tuple set and probes only those; the unselected partitions
contribute their candidate *counts* so that the charged work (candidates a
single union index would have inspected) is bit-identical to the unpartitioned
protocol.  FinalizeMigration becomes a wholesale drop of the Drop partition
plus a bulk merge of the survivors — no per-tuple tag rewriting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.migration import MigrationPlan
from repro.engine.stream import StreamTuple
from repro.joins.local import LocalJoiner


class ProtocolError(RuntimeError):
    """Raised when a message violates the epoch protocol's guarantees."""


class JoinerPhase(enum.Enum):
    """Phase of a joiner with respect to the current migration."""

    NORMAL = "normal"        # no migration in progress; HandleTuple1 degenerate path
    MIGRATING = "migrating"  # some (not all) reshuffler signals received; HandleTuple1
    DRAINED = "drained"      # all reshuffler signals received; HandleTuple2


@dataclass(slots=True)
class TupleActions:
    """Everything a joiner task must do after the state machine handled a tuple.

    Attributes:
        matches: output pairs, already oriented ``(left_tuple, right_tuple)``.
        probe_work: number of index candidates inspected (for CPU accounting).
        stored: whether the incoming tuple was added to local state.
        migrate_to: ``(destination_machine, tuple)`` relocations this joiner
            must send because it is the designated sender.
    """

    matches: list[tuple[StreamTuple, StreamTuple]] = field(default_factory=list)
    probe_work: float = 0.0
    stored: bool = False
    migrate_to: list[tuple[int, StreamTuple]] = field(default_factory=list)


@dataclass
class FinalizeResult:
    """Result of FinalizeMigration: what was discarded, and the closed epoch."""

    discarded: list[StreamTuple]
    epoch: int


# The tag partitions of Algorithm 3's tuple sets, as sub-store names.
_OLD_KEEP = "old_keep"      # Keep(τ ∪ Δ): old-epoch tuples this joiner retains
_OLD_DROP = "old_drop"      # Drop(τ ∪ Δ): old-epoch tuples discarded at finalize
_NEW = "new"                # Δ': tuples tagged with the pending epoch
_MU = "mu"                  # µ: tuples relocated from other joiners
_PARTITIONS = (_OLD_KEEP, _OLD_DROP, _NEW, _MU)

# Partition selections of the protocol's probes.
_SEL_OLD = (_OLD_KEEP, _OLD_DROP)        # τ ∪ Δ
_SEL_OLD_KEEP = (_OLD_KEEP,)             # Keep(τ ∪ Δ)
_SEL_NEW = (_NEW,)                       # Δ'
_SEL_NEW_MU = (_NEW, _MU)                # µ ∪ Δ'


class EpochJoinerState:
    """Algorithm 3 state machine for one joiner.

    Args:
        machine_id: id of the hosting machine (used to look itself up in
            migration plans).
        store: the local non-blocking join algorithm holding this joiner's
            state for both relations.
        num_reshufflers: number of reshuffler tasks; a migration's old epoch
            is closed once signals from all of them arrived.
        left_relation: relation treated as the "R" (row) side.
    """

    def __init__(
        self,
        machine_id: int,
        store: LocalJoiner,
        num_reshufflers: int,
        left_relation: str,
    ) -> None:
        self.machine_id = machine_id
        self.store = store
        self.num_reshufflers = num_reshufflers
        self.left_relation = left_relation

        self.current_epoch = 0
        self.phase = JoinerPhase.NORMAL
        self.plan: MigrationPlan | None = None
        self.pending_epoch: int | None = None

        # Tag-partitioned sub-stores; built at migration start, merged back
        # into ``store`` at finalize.  None while NORMAL (everything is τ).
        self._parts: dict[str, LocalJoiner] | None = None
        self._signals: set[str] = set()
        self._expected_senders: set[int] = set()
        self._received_ends: set[int] = set()
        self._early_messages: list[tuple[str, StreamTuple]] = []

    # ------------------------------------------------------------------ util

    def _side(self, item: StreamTuple) -> str:
        return "R" if item.relation == self.left_relation else "S"

    def _oriented(self, new_item: StreamTuple, stored_item: StreamTuple):
        if new_item.relation == self.left_relation:
            return new_item, stored_item
        return stored_item, new_item

    def _join_store(self, item: StreamTuple, actions: TupleActions) -> None:
        """Normal-operation probe: everything stored is τ, probe it all."""
        matches, work = self.store.probe(item)
        actions.probe_work += work
        if matches:
            actions.matches.extend(self._oriented(item, match) for match in matches)

    def _join_parts(
        self, item: StreamTuple, actions: TupleActions, select: tuple[str, ...]
    ) -> None:
        """Probe the partitions holding the tuple sets in ``select``.

        The unselected partitions contribute their candidate counts so the
        charged work equals what a single union-store probe would have
        inspected (the partitions tile the joiner's state), keeping CPU
        accounting bit-identical to the unpartitioned protocol.
        """
        parts = self._parts
        assert parts is not None
        matches: list[StreamTuple] = []
        inspected = 0
        # The partitions share one predicate: resolve the probe side/key once
        # and use the keyed index entry points for all four.
        is_left, key = parts[_OLD_KEEP].probe_plan(item)
        record = item.record
        for name in _PARTITIONS:
            part = parts[name]
            if name in select:
                part_matches, part_inspected = part.keyed_raw_probe(is_left, key, record)
                inspected += part_inspected
                if part_matches:
                    matches.extend(part_matches)
            else:
                inspected += part.keyed_candidate_count(is_left, key)
        actions.probe_work += float(max(inspected, 1))
        if matches:
            actions.matches.extend(self._oriented(item, match) for match in matches)

    # -------------------------------------------------------------- counters

    def stored_count(self) -> int:
        """Number of tuples currently stored (including not-yet-discarded ones)."""
        total = self.store.total_count()
        if self._parts is not None:
            total += sum(part.total_count() for part in self._parts.values())
        return total

    def migration_in_progress(self) -> bool:
        """Whether a migration is currently being executed."""
        return self.phase is not JoinerPhase.NORMAL

    # ------------------------------------------------------------ data tuples

    def handle_data(self, item: StreamTuple) -> TupleActions:
        """Handle a data tuple routed by a reshuffler (HandleTuple1/2 data paths)."""
        actions = TupleActions()
        if item.epoch > self.current_epoch and self.phase is JoinerPhase.NORMAL:
            # The reshuffler learned about the new epoch before we received any
            # signal; buffer until the first signal brings the migration plan.
            self._early_messages.append(("data", item))
            return actions

        if self.phase is JoinerPhase.NORMAL:
            if item.epoch != self.current_epoch:
                raise ProtocolError(
                    f"joiner {self.machine_id} in epoch {self.current_epoch} received a "
                    f"tuple tagged with past epoch {item.epoch}"
                )
            # Normal operation: join with everything stored, then store as τ.
            self._join_store(item, actions)
            self.store.insert(item)
            actions.stored = True
            return actions

        if item.epoch == self.current_epoch:
            if self.phase is JoinerPhase.DRAINED:
                raise ProtocolError(
                    f"joiner {self.machine_id} received an old-epoch tuple after all "
                    "reshufflers signalled the epoch change"
                )
            return self._handle_delta(item, actions)
        if item.epoch == self.pending_epoch:
            return self._handle_delta_prime(item, actions)
        raise ProtocolError(
            f"joiner {self.machine_id} received epoch {item.epoch} while migrating "
            f"from {self.current_epoch} to {self.pending_epoch}"
        )

    def handle_data_batch(self, items: list[StreamTuple]) -> list[TupleActions]:
        """Batched HandleTuple1 for one single-epoch run of routed data tuples.

        On the hot NORMAL path the whole batch is inserted+probed through
        :meth:`LocalJoiner.probe_batch` — one grouped index pass with correct
        intra-batch self-join semantics and per-member work accounting
        identical to the per-tuple path.  Any other phase (or an epoch
        mismatch, e.g. a batch buffered across a migration edge) falls back
        to the per-tuple handler, which implements the full protocol.
        """
        if self.phase is JoinerPhase.NORMAL:
            current = self.current_epoch
            if all(item.epoch == current for item in items):
                oriented = self._oriented
                results = []
                for item, (matches, work) in zip(items, self.store.probe_batch(items)):
                    actions = TupleActions(probe_work=work, stored=True)
                    if matches:
                        if matches.__class__ is list:
                            actions.matches = [
                                oriented(item, match) for match in matches
                            ]
                        else:
                            # Columnar MatchBlock: already carries the probing
                            # item and its orientation — no per-pair tuples.
                            actions.matches = matches
                    results.append(actions)
                return results
        else:
            pending = self.pending_epoch
            if pending is not None and all(item.epoch == pending for item in items):
                return self._delta_prime_batch(items)
        return [self.handle_data(item) for item in items]

    def _delta_prime_batch(self, items: list[StreamTuple]) -> list[TupleActions]:
        """Batched Δ' handling: one loop, per-member semantics of
        :meth:`_handle_delta_prime`.

        Each member runs the exact two protocol probes — ``µ ∪ Δ'`` then
        ``Keep(τ ∪ Δ)``, each with the unselected partitions' candidate
        counts folded in and floored at one work unit — and is inserted into
        ``Δ'`` before the next member probes (intra-batch self-join
        semantics), so matches, work and storage are bit-identical to the
        per-tuple path.  Hoisted out of the member loop: the partition
        lookups, the probe-side/key resolution (once per member instead of
        once per partition visit) and the method dispatch.
        """
        parts = self._parts
        assert parts is not None
        keep_part = parts[_OLD_KEEP]
        drop_part = parts[_OLD_DROP]
        new_part = parts[_NEW]
        mu_part = parts[_MU]
        oriented = self._oriented
        new_insert = new_part.insert
        results: list[TupleActions] = []
        append = results.append
        for item in items:
            is_left, key = new_part.probe_plan(item)
            record = item.record
            # Probe 1 — µ ∪ Δ' (Alg. 3 lines 12-14): counts of old_keep and
            # old_drop, probes of new and mu, in _PARTITIONS order.
            inspected = keep_part.keyed_candidate_count(is_left, key)
            inspected += drop_part.keyed_candidate_count(is_left, key)
            matches, new_inspected = new_part.keyed_raw_probe(is_left, key, record)
            mu_matches, mu_inspected = mu_part.keyed_raw_probe(is_left, key, record)
            inspected += new_inspected + mu_inspected
            if mu_matches:
                matches.extend(mu_matches)
            work = float(inspected) if inspected > 0 else 1.0
            # Probe 2 — Keep(τ ∪ Δ) (Alg. 3 lines 24-26).
            keep_matches, keep_inspected = keep_part.keyed_raw_probe(is_left, key, record)
            inspected2 = keep_inspected + drop_part.keyed_candidate_count(is_left, key)
            inspected2 += new_part.keyed_candidate_count(is_left, key)
            inspected2 += mu_part.keyed_candidate_count(is_left, key)
            actions = TupleActions(
                probe_work=work + (float(inspected2) if inspected2 > 0 else 1.0),
                stored=True,
            )
            if matches or keep_matches:
                actions.matches = [oriented(item, match) for match in matches]
                actions.matches.extend(oriented(item, match) for match in keep_matches)
            new_insert(item)
            append(actions)
        return results

    def _handle_delta(self, item: StreamTuple, actions: TupleActions) -> TupleActions:
        """Old-epoch tuple during migration (Alg. 3 lines 15-20)."""
        assert self.plan is not None and self._parts is not None
        self._join_parts(item, actions, _SEL_OLD)
        keep = self.plan.keeps(self.machine_id, self._side(item), item.salt)
        self._parts[_OLD_KEEP if keep else _OLD_DROP].insert(item)
        actions.stored = True
        if keep:
            self._join_parts(item, actions, _SEL_NEW)
        destinations = self.plan.destinations_for(self.machine_id, self._side(item), item.salt)
        actions.migrate_to.extend((destination, item) for destination in destinations)
        return actions

    def _handle_delta_prime(self, item: StreamTuple, actions: TupleActions) -> TupleActions:
        """New-epoch tuple during migration (Alg. 3 lines 12-14 and 24-26)."""
        assert self._parts is not None
        self._join_parts(item, actions, _SEL_NEW_MU)
        self._join_parts(item, actions, _SEL_OLD_KEEP)
        self._parts[_NEW].insert(item)
        actions.stored = True
        return actions

    # ------------------------------------------------------- migration tuples

    def handle_migrated(self, item: StreamTuple) -> TupleActions:
        """Handle a µ tuple relocated from another joiner (Alg. 3 lines 10-11, 22-23)."""
        actions = TupleActions()
        if self.phase is JoinerPhase.NORMAL:
            self._early_messages.append(("migrated", item))
            return actions
        assert self._parts is not None
        self._join_parts(item, actions, _SEL_NEW)
        self._parts[_MU].insert(item)
        actions.stored = True
        return actions

    # ----------------------------------------------------------------- signals

    def handle_signal(
        self, epoch: int, plan: MigrationPlan, reshuffler: str
    ) -> tuple[list[tuple[int, StreamTuple]], list[tuple[StreamTuple, TupleActions]]]:
        """Handle an epoch-change signal from ``reshuffler``.

        Returns ``(migrations, replayed)`` where ``migrations`` are the
        ``(destination, tuple)`` relocations triggered by this signal (the τ
        batch on the first signal) and ``replayed`` pairs each buffered early
        message that can now be processed with its resulting actions.
        """
        if epoch == self.current_epoch:
            return [], []
        if self.pending_epoch is not None and epoch != self.pending_epoch:
            raise ProtocolError(
                f"joiner {self.machine_id} saw a signal for epoch {epoch} while still "
                f"migrating to epoch {self.pending_epoch}; machines must be at most one "
                "epoch behind the controller"
            )

        migrations: list[tuple[int, StreamTuple]] = []
        replayed: list[tuple[StreamTuple, TupleActions]] = []
        if self.pending_epoch is None:
            # First signal: adopt the plan and ship the committed state τ.
            # _signals and _received_ends are NOT cleared here: an end-of-
            # migration marker from a fast sender may legitimately arrive
            # before our first signal and must not be lost.
            self.pending_epoch = epoch
            self.plan = plan
            self.phase = JoinerPhase.MIGRATING
            self._expected_senders = plan.senders_to(self.machine_id)
            migrations.extend(self._ship_tau())
            replayed.extend(self._drain_early_messages())

        self._signals.add(reshuffler)
        if len(self._signals) >= self.num_reshufflers:
            self.phase = JoinerPhase.DRAINED
        return migrations, replayed

    def _ship_tau(self) -> list[tuple[int, StreamTuple]]:
        """Send τ for migration (Alg. 3 line 3) and build the tag partitions.

        At migration start everything stored is τ; each tuple's keep flag
        decides its partition (``Keep(τ ∪ Δ)`` vs ``Drop(τ ∪ Δ)``), replacing
        the per-tuple keep map with wholesale partition membership.
        """
        assert self.plan is not None
        plan = self.plan
        machine_id = self.machine_id
        parts = {name: self.store.fresh() for name in _PARTITIONS}
        migrations: list[tuple[int, StreamTuple]] = []
        for relation in (self.left_relation, self.store.opposite(self.left_relation)):
            side = "R" if relation == self.left_relation else "S"
            keep_items: list[StreamTuple] = []
            drop_items: list[StreamTuple] = []
            for item in self.store.stored(relation):
                if plan.keeps(machine_id, side, item.salt):
                    keep_items.append(item)
                else:
                    drop_items.append(item)
                for destination in plan.destinations_for(machine_id, side, item.salt):
                    migrations.append((destination, item))
            parts[_OLD_KEEP].bulk_insert(relation, keep_items)
            parts[_OLD_DROP].bulk_insert(relation, drop_items)
        self._parts = parts
        self.store = self.store.fresh()
        return migrations

    def _drain_early_messages(self) -> list[tuple[StreamTuple, TupleActions]]:
        replayed = []
        pending, self._early_messages = self._early_messages, []
        for kind, item in pending:
            if kind == "data":
                replayed.append((item, self.handle_data(item)))
            else:
                replayed.append((item, self.handle_migrated(item)))
        return replayed

    # --------------------------------------------------------------- finalize

    def register_migration_end(self, sender_machine: int) -> None:
        """Record an end-of-migration marker from a designated sender."""
        self._received_ends.add(sender_machine)

    def can_finalize(self) -> bool:
        """Whether the migration can be finalised (Alg. 3 "Migration Ended")."""
        if self.phase is not JoinerPhase.DRAINED:
            return False
        return self._expected_senders.issubset(self._received_ends)

    def finalize(self) -> FinalizeResult:
        """FinalizeMigration (Alg. 3 lines 27-30): discard, merge sets, reset.

        With tag partitions this is wholesale: drop the ``Drop(τ ∪ Δ)``
        partition and bulk-merge ``Keep(τ ∪ Δ) ∪ Δ' ∪ µ`` into the new τ
        store — no per-tuple tag checks or index removals.
        """
        if not self.can_finalize():
            raise ProtocolError("finalize() called before the migration completed")
        assert self.pending_epoch is not None and self._parts is not None
        parts = self._parts
        discarded: list[StreamTuple] = []
        for relation in (self.left_relation, self.store.opposite(self.left_relation)):
            discarded.extend(parts[_OLD_DROP].stored(relation))
        # τ <- Keep(τ ∪ Δ) ∪ µ ∪ Δ'
        merged = parts[_OLD_KEEP]
        merged.absorb(parts[_NEW])
        merged.absorb(parts[_MU])
        self.store = merged
        self._parts = None
        closed_epoch = self.pending_epoch
        self.current_epoch = closed_epoch
        self.pending_epoch = None
        self.plan = None
        self.phase = JoinerPhase.NORMAL
        self._signals.clear()
        self._expected_senders.clear()
        self._received_ends.clear()
        return FinalizeResult(discarded=discarded, epoch=closed_epoch)
